//! Log-bucketed latency histograms (HDR-histogram flavored, zero-dep).
//!
//! A [`Histogram`] buckets positive samples geometrically:
//! [`SUB_BUCKETS`] sub-buckets per octave (power of two), so every
//! bucket spans a fixed *relative* width of `2^(1/16) − 1 ≈ 4.4 %`.
//! That is the standard trade for latency data — per-rep kernel times
//! and per-iteration solver latencies span four-plus decades between a
//! cache-hot 128² smoke matrix and a paper-scale run, and a relative
//! error bound holds across all of them where linear buckets cannot.
//!
//! Buckets are kept in a `BTreeMap` keyed by sub-bucket index, so the
//! range is unbounded and merging two histograms is index-wise count
//! addition. Exact `min`/`max`/`sum` are tracked on the side; quantile
//! queries answer with the geometric midpoint of the hit bucket,
//! clamped into `[min, max]`, which keeps the relative-error guarantee
//! ([`Histogram::REL_ERROR`]) the unit tests assert against a sorted
//! scalar reference.
//!
//! Always compiled (like [`crate::json`]): histograms summarize
//! *recorded* data at report time, they are not hot-path
//! instrumentation.

use crate::json::Json;
use std::collections::BTreeMap;

/// Sub-buckets per octave (relative bucket width `2^(1/16) − 1`).
pub const SUB_BUCKETS: f64 = 16.0;

/// A mergeable log-bucketed histogram of positive `f64` samples.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    buckets: BTreeMap<i32, u64>,
    count: u64,
    /// Samples that were not positive finite numbers (dropped).
    rejected: u64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Histogram {
    /// Worst-case relative error of a quantile query: one bucket's
    /// half-width on either side of the geometric midpoint.
    pub const REL_ERROR: f64 = 0.045; // 2^(1/16) − 1 = 0.0443…

    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Build from a slice of samples.
    pub fn from_samples(samples: &[f64]) -> Histogram {
        let mut h = Histogram::new();
        for &s in samples {
            h.record(s);
        }
        h
    }

    fn index(v: f64) -> i32 {
        // log2 is monotone and exact enough: the bucket edge cases a ULP
        // off only move a sample to an adjacent 4.4%-wide bucket.
        (v.log2() * SUB_BUCKETS).floor() as i32
    }

    /// Geometric midpoint of bucket `idx` — the value reported for any
    /// sample that landed in it.
    fn midpoint(idx: i32) -> f64 {
        ((idx as f64 + 0.5) / SUB_BUCKETS).exp2()
    }

    /// Record one sample. Non-finite or non-positive values are counted
    /// as rejected and otherwise ignored.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() || v <= 0.0 {
            self.rejected += 1;
            return;
        }
        *self.buckets.entry(Self::index(v)).or_insert(0) += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Number of recorded (accepted) samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of rejected (non-positive / non-finite) samples.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Exact minimum recorded sample (`0.0` when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded sample (`0.0` when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Exact mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Nearest-rank quantile, `p` in percent (`50.0` = median). Answers
    /// the geometric midpoint of the bucket holding the rank, clamped
    /// into `[min, max]`; `0.0` when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        if rank == self.count {
            // The top rank is the exact (tracked) maximum.
            return self.max;
        }
        let mut cum = 0u64;
        for (&idx, &n) in &self.buckets {
            cum += n;
            if cum >= rank {
                return Self::midpoint(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fold `other` into `self` (index-wise count addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.count += other.count;
        self.rejected += other.rejected;
        self.sum += other.sum;
    }

    /// Occupied buckets as `(lower edge, upper edge, count)`, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        self.buckets.iter().map(|(&idx, &n)| {
            (
                (idx as f64 / SUB_BUCKETS).exp2(),
                ((idx + 1) as f64 / SUB_BUCKETS).exp2(),
                n,
            )
        })
    }

    /// Serialize (compact: only occupied buckets).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::from(self.count)),
            ("rejected", Json::from(self.rejected)),
            ("min", Json::Num(self.min())),
            ("max", Json::Num(self.max())),
            ("sum", Json::Num(self.sum)),
            (
                "buckets",
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|(&i, &n)| Json::Arr(vec![Json::Num(i as f64), Json::from(n)]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse a histogram serialized by [`Histogram::to_json`].
    pub fn from_json(v: &Json) -> Result<Histogram, String> {
        let num = |k: &str| {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("histogram: missing numeric field {k:?}"))
        };
        let mut buckets = BTreeMap::new();
        for pair in v
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or_else(|| "histogram: missing buckets array".to_string())?
        {
            let p = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| "histogram: bucket is not a pair".to_string())?;
            let idx = p[0]
                .as_f64()
                .ok_or_else(|| "histogram: bucket index".to_string())? as i32;
            let n = p[1]
                .as_f64()
                .ok_or_else(|| "histogram: bucket count".to_string())? as u64;
            buckets.insert(idx, n);
        }
        Ok(Histogram {
            buckets,
            count: num("count")? as u64,
            rejected: num("rejected")? as u64,
            min: num("min")?,
            max: num("max")?,
            sum: num("sum")?,
        })
    }
}

/// Nearest-rank percentile of an *exact* sample set — the scalar
/// reference the histogram is tested against, and the summary path for
/// small sample counts (bench reps) where exactness is free.
pub fn exact_percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input sorted");
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_answers_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50.0), 0.0);
    }

    #[test]
    fn rejects_nonpositive_and_nonfinite() {
        let mut h = Histogram::new();
        for v in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            h.record(v);
        }
        assert_eq!(h.count(), 0);
        assert_eq!(h.rejected(), 5);
        h.record(1.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile(99.0), 1.0);
    }

    #[test]
    fn percentiles_match_scalar_reference_within_bucket_error() {
        // Deterministic log-uniform-ish samples over ~5 decades.
        let mut state = 0x243f6a8885a308d3u64;
        let mut samples: Vec<f64> = (0..5000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let u = (state % 1_000_000) as f64 / 1_000_000.0;
                10f64.powf(-6.0 + 5.0 * u)
            })
            .collect();
        let h = Histogram::from_samples(&samples);
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let exact = exact_percentile(&samples, p);
            let approx = h.percentile(p);
            let rel = (approx - exact).abs() / exact;
            assert!(
                rel <= Histogram::REL_ERROR,
                "p{p}: approx {approx} vs exact {exact} (rel {rel})"
            );
        }
        // Extremes are exact, not bucket midpoints.
        assert_eq!(h.min(), samples[0]);
        assert_eq!(h.max(), *samples.last().unwrap());
        assert_eq!(h.percentile(100.0), h.max());
        let exact_mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((h.mean() - exact_mean).abs() / exact_mean < 1e-12);
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let a: Vec<f64> = (1..200).map(|i| i as f64 * 0.37e-3).collect();
        let b: Vec<f64> = (1..300).map(|i| i as f64 * 1.91e-6).collect();
        let mut ha = Histogram::from_samples(&a);
        let hb = Histogram::from_samples(&b);
        ha.merge(&hb);
        let mut all = a.clone();
        all.extend(&b);
        let href = Histogram::from_samples(&all);
        assert_eq!(ha.count(), href.count());
        assert_eq!(ha.min(), href.min());
        assert_eq!(ha.max(), href.max());
        // Sum differs only by float addition order.
        assert!((ha.mean() - href.mean()).abs() / href.mean() < 1e-12);
        for p in [10.0, 50.0, 90.0, 99.0] {
            assert_eq!(ha.percentile(p), href.percentile(p), "p{p}");
        }
        assert_eq!(
            ha.buckets().collect::<Vec<_>>(),
            href.buckets().collect::<Vec<_>>()
        );
        assert_eq!(ha.count(), (a.len() + b.len()) as u64);
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let h = Histogram::from_samples(&[1e-6, 3e-4, 3.1e-4, 0.02, 7.0, -1.0]);
        let j = h.to_json();
        let back = Histogram::from_json(&Json::parse(&j.to_string()).unwrap()).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.rejected(), 1);
        for p in [25.0, 50.0, 95.0] {
            assert_eq!(back.percentile(p), h.percentile(p));
        }
        // Malformed inputs are rejected, not panicked on.
        assert!(Histogram::from_json(&Json::parse("{}").unwrap()).is_err());
        assert!(Histogram::from_json(&Json::parse(r#"{"count":1}"#).unwrap()).is_err());
    }

    #[test]
    fn bucket_edges_are_geometric_and_cover_samples() {
        let h = Histogram::from_samples(&[1.0, 1.5, 4.0, 1000.0]);
        let mut covered = 0u64;
        for (lo, hi, n) in h.buckets() {
            assert!(lo < hi);
            assert!((hi / lo - (1.0f64 / SUB_BUCKETS).exp2()).abs() < 1e-12);
            covered += n;
        }
        assert_eq!(covered, h.count());
    }

    #[test]
    fn exact_percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(exact_percentile(&v, 0.0), 1.0);
        assert_eq!(exact_percentile(&v, 25.0), 1.0);
        assert_eq!(exact_percentile(&v, 50.0), 2.0);
        assert_eq!(exact_percentile(&v, 75.0), 3.0);
        assert_eq!(exact_percentile(&v, 100.0), 4.0);
        assert_eq!(exact_percentile(&[], 50.0), 0.0);
    }
}
