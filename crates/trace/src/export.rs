//! Trace exporters for external analysis tooling.
//!
//! Two formats, both fed from the same event stream:
//!
//! * **Chrome trace-event JSON** ([`chrome_trace`]) — the
//!   `{"traceEvents":[…]}` document understood by Perfetto
//!   (<https://ui.perfetto.dev>) and `chrome://tracing`. Spans become
//!   complete (`"ph":"X"`) events, point events become instants
//!   (`"ph":"i"`), and per-thread metadata (`"ph":"M"`) names the
//!   timeline rows, so a traced run opens as one lane per pool thread
//!   with the solver/iteration markers overlaid.
//! * **Collapsed stacks** ([`collapsed_stacks`]) — the
//!   `frame;frame;frame count` text format consumed by flamegraph
//!   tooling (`flamegraph.pl`, inferno, speedscope). Stacks are
//!   reconstructed from span nesting (interval containment per thread)
//!   and weighted by *self* time, so a flamegraph shows where
//!   wall-clock actually went rather than double-counting parents.
//!
//! Both work from [`ExportEvent`] — an owned mirror of
//! [`crate::span::Event`] — sourced either from the live registry
//! ([`snapshot`]) or re-parsed from a previously written NDJSON trace
//! file ([`from_ndjson`]), which is how `cscv-xtask perf-report
//! --export-dir` converts archived traces offline.
//!
//! Always compiled: exporting operates on recorded data, not the hot
//! path. In untraced builds [`snapshot`] is simply empty.

use crate::json::Json;
use crate::span;

/// One owned span or point event, tagged with its thread.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportEvent {
    pub thread: String,
    pub name: String,
    /// Span-nesting depth at record time (0 = top level).
    pub depth: u16,
    /// Start time, monotonic nanoseconds since the trace epoch.
    pub t_ns: u64,
    /// Duration in nanoseconds; `0` for point events.
    pub dur_ns: u64,
    pub is_span: bool,
    /// Process-unique span id (`0` = unassigned).
    pub span_id: u64,
    /// Id of the causal parent span in another process (`0` = none).
    pub parent: u64,
    pub fields: Vec<(String, f64)>,
}

/// Snapshot the live registry's buffered events (sorted by start time).
pub fn snapshot() -> Vec<ExportEvent> {
    span::events()
        .into_iter()
        .map(|(thread, e)| ExportEvent {
            thread,
            name: e.name.to_string(),
            depth: e.depth,
            t_ns: e.t_ns,
            dur_ns: e.dur_ns,
            is_span: e.is_span,
            span_id: e.span_id,
            parent: e.parent,
            fields: e.fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        })
        .collect()
}

/// Keys on span/event NDJSON lines that are structure, not payload.
const STRUCTURAL_KEYS: [&str; 8] = [
    "type", "name", "thread", "depth", "t_ns", "dur_ns", "span_id", "parent",
];

/// Re-parse the span/event lines of an NDJSON trace (as written by
/// [`crate::emit::ndjson`]); other line types are skipped. Events come
/// back sorted by start time.
pub fn from_ndjson(text: &str) -> Result<Vec<ExportEvent>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let ty = v.get("type").and_then(Json::as_str).unwrap_or("");
        let is_span = match ty {
            "span" => true,
            "event" => false,
            _ => continue,
        };
        let str_field = |k: &str| {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("line {}: missing {k:?}", lineno + 1))
        };
        let num_field = |k: &str, required: bool| match v.get(k).and_then(Json::as_f64) {
            Some(n) => Ok(n),
            None if !required => Ok(0.0),
            None => Err(format!("line {}: missing {k:?}", lineno + 1)),
        };
        let fields = v
            .as_obj()
            .unwrap_or(&[])
            .iter()
            .filter(|(k, _)| !STRUCTURAL_KEYS.contains(&k.as_str()))
            .filter_map(|(k, val)| val.as_f64().map(|n| (k.clone(), n)))
            .collect();
        out.push(ExportEvent {
            thread: str_field("thread")?,
            name: str_field("name")?,
            depth: num_field("depth", true)? as u16,
            t_ns: num_field("t_ns", true)? as u64,
            dur_ns: num_field("dur_ns", is_span)? as u64,
            is_span,
            span_id: num_field("span_id", false)? as u64,
            parent: num_field("parent", false)? as u64,
            fields,
        });
    }
    out.sort_by_key(|e| e.t_ns);
    Ok(out)
}

/// Thread names in order of first appearance; tids are `index + 1`
/// (tid 0 is reserved for the process-name metadata row).
fn thread_order(events: &[ExportEvent]) -> Vec<&str> {
    let mut order: Vec<&str> = Vec::new();
    for e in events {
        if !order.contains(&e.thread.as_str()) {
            order.push(&e.thread);
        }
    }
    order
}

/// One process's lane set in a merged multi-process trace.
#[derive(Debug, Clone)]
pub struct ProcessTrace {
    /// Chrome `pid` for this process's lanes (must be unique per lane
    /// set; real OS pids work, as do synthetic ones for in-process
    /// workers that share an OS pid).
    pub pid: u64,
    /// Human label for the process row, e.g. `"cscv-worker-2"`.
    pub label: String,
    /// Clock mapping from this process's trace epoch onto the
    /// coordinator timeline (identity for the coordinator itself).
    pub offset: crate::clock::OffsetEstimate,
    /// This process's recorded events (its own epoch clock).
    pub events: Vec<ExportEvent>,
}

/// Build a Chrome trace-event JSON document from `events`.
///
/// Timestamps are microseconds (`f64`, the format's native unit); span
/// durations keep nanosecond resolution as fractional µs. Numeric
/// payload fields ride in `args`, so Perfetto surfaces `iter`,
/// `residual`, `iter_ms`, … in the selection panel.
pub fn chrome_trace(events: &[ExportEvent]) -> Json {
    chrome_trace_merged(&[ProcessTrace {
        pid: 0,
        label: "cscv-trace".to_string(),
        offset: crate::clock::OffsetEstimate::default(),
        events: events.to_vec(),
    }])
}

/// Build one Chrome trace-event document spanning several processes:
/// a `process_name` metadata row and a lane per thread for each entry,
/// timestamps mapped onto the coordinator timeline through each
/// process's clock offset. Spans carrying trace-context ids additionally
/// emit flow events (`ph:"s"` at a span that owns an id, `ph:"f"` at a
/// span parented to one), so Perfetto draws arrows from coordinator
/// dispatch spans to the worker spans they caused; the ids also ride in
/// `args` (`span_id` / `parent_span`) for text-level assertions.
pub fn chrome_trace_merged(procs: &[ProcessTrace]) -> Json {
    let mut trace_events: Vec<Json> = Vec::new();
    for p in procs {
        let threads = thread_order(&p.events);
        let tid_of = |name: &str| threads.iter().position(|t| *t == name).unwrap_or(0) + 1;
        trace_events.push(Json::obj(vec![
            ("name", Json::from("process_name")),
            ("ph", Json::from("M")),
            ("pid", Json::from(p.pid)),
            ("tid", Json::from(0u64)),
            (
                "args",
                Json::obj(vec![("name", Json::from(p.label.as_str()))]),
            ),
        ]));
        for t in &threads {
            trace_events.push(Json::obj(vec![
                ("name", Json::from("thread_name")),
                ("ph", Json::from("M")),
                ("pid", Json::from(p.pid)),
                ("tid", Json::from(tid_of(t))),
                ("args", Json::obj(vec![("name", Json::from(*t))])),
            ]));
        }
        for e in &p.events {
            let ts_us = p.offset.to_coordinator_ns(e.t_ns) as f64 / 1e3;
            let tid = tid_of(&e.thread);
            let mut obj = vec![
                ("name", Json::from(e.name.as_str())),
                ("ph", Json::from(if e.is_span { "X" } else { "i" })),
                ("ts", Json::Num(ts_us)),
                ("pid", Json::from(p.pid)),
                ("tid", Json::from(tid)),
            ];
            if e.is_span {
                obj.push(("dur", Json::Num(e.dur_ns as f64 / 1e3)));
            } else {
                // Thread-scoped instant: renders as a marker on its lane.
                obj.push(("s", Json::from("t")));
            }
            let mut args: Vec<(String, Json)> = e
                .fields
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                .collect();
            if e.span_id != 0 {
                args.push(("span_id".to_string(), Json::from(e.span_id)));
            }
            if e.parent != 0 {
                args.push(("parent_span".to_string(), Json::from(e.parent)));
            }
            if !args.is_empty() {
                obj.push(("args", Json::Obj(args)));
            }
            trace_events.push(Json::obj(obj));
            // Flow arrows: matched by (cat, id); the start binds to the
            // slice enclosing its ts, the finish (`bp:"e"`) likewise.
            if e.is_span && e.span_id != 0 {
                trace_events.push(Json::obj(vec![
                    ("name", Json::from("shard.flow")),
                    ("cat", Json::from("shard")),
                    ("ph", Json::from("s")),
                    ("id", Json::from(e.span_id)),
                    ("ts", Json::Num(ts_us)),
                    ("pid", Json::from(p.pid)),
                    ("tid", Json::from(tid)),
                ]));
            }
            if e.is_span && e.parent != 0 {
                trace_events.push(Json::obj(vec![
                    ("name", Json::from("shard.flow")),
                    ("cat", Json::from("shard")),
                    ("ph", Json::from("f")),
                    ("bp", Json::from("e")),
                    ("id", Json::from(e.parent)),
                    ("ts", Json::Num(ts_us)),
                    ("pid", Json::from(p.pid)),
                    ("tid", Json::from(tid)),
                ]));
            }
        }
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(trace_events)),
        ("displayTimeUnit", Json::from("ms")),
    ])
}

/// Write [`chrome_trace`] over the live snapshot to `path` (parent
/// directories created).
pub fn write_chrome_trace(path: &std::path::Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, chrome_trace(&snapshot()).to_string())
}

/// Render collapsed flamegraph stacks: one `thread;outer;…;leaf N`
/// line per distinct stack, `N` = self-time in nanoseconds, sorted for
/// stable diffs. Point events carry no duration and are ignored.
pub fn collapsed_stacks(events: &[ExportEvent]) -> String {
    use std::collections::BTreeMap;
    let mut weights: BTreeMap<String, u64> = BTreeMap::new();

    struct Frame {
        name: String,
        end_ns: u64,
        self_ns: u64,
    }

    for thread in thread_order(events) {
        // Sorted by start time; ties open the longer (outer) span first.
        let mut spans: Vec<&ExportEvent> = events
            .iter()
            .filter(|e| e.is_span && e.thread == thread)
            .collect();
        spans.sort_by(|a, b| a.t_ns.cmp(&b.t_ns).then(b.dur_ns.cmp(&a.dur_ns)));

        let mut stack: Vec<Frame> = Vec::new();
        let pop = |stack: &mut Vec<Frame>, weights: &mut BTreeMap<String, u64>| {
            let frame = stack.pop().expect("pop on non-empty stack");
            let mut key = String::from(thread);
            for f in stack.iter() {
                key.push(';');
                key.push_str(&f.name);
            }
            key.push(';');
            key.push_str(&frame.name);
            *weights.entry(key).or_insert(0) += frame.self_ns;
        };
        for s in spans {
            while stack.last().is_some_and(|f| f.end_ns <= s.t_ns) {
                pop(&mut stack, &mut weights);
            }
            if let Some(parent) = stack.last_mut() {
                parent.self_ns = parent.self_ns.saturating_sub(s.dur_ns);
            }
            stack.push(Frame {
                name: s.name.clone(),
                end_ns: s.t_ns.saturating_add(s.dur_ns),
                self_ns: s.dur_ns,
            });
        }
        while !stack.is_empty() {
            pop(&mut stack, &mut weights);
        }
    }

    let mut out = String::new();
    for (stack, ns) in &weights {
        if *ns > 0 {
            out.push_str(&format!("{stack} {ns}\n"));
        }
    }
    out
}

/// Write [`collapsed_stacks`] over the live snapshot to `path`.
pub fn write_collapsed_stacks(path: &std::path::Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, collapsed_stacks(&snapshot()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(thread: &str, name: &str, depth: u16, t_ns: u64, dur_ns: u64) -> ExportEvent {
        ExportEvent {
            thread: thread.into(),
            name: name.into(),
            depth,
            t_ns,
            dur_ns,
            is_span: true,
            span_id: 0,
            parent: 0,
            fields: Vec::new(),
        }
    }

    fn sample_events() -> Vec<ExportEvent> {
        vec![
            span("main", "outer", 0, 100, 1000),
            span("main", "inner", 1, 200, 300),
            span("worker-0", "task", 0, 150, 400),
            ExportEvent {
                thread: "main".into(),
                name: "mark".into(),
                depth: 2,
                t_ns: 250,
                dur_ns: 0,
                is_span: false,
                span_id: 0,
                parent: 0,
                fields: vec![("iter".into(), 3.0), ("residual".into(), 0.5)],
            },
        ]
    }

    #[test]
    fn chrome_trace_schema_and_units() {
        let doc = chrome_trace(&sample_events());
        let back = Json::parse(&doc.to_string()).unwrap();
        let evs = back.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 process + 2 thread metadata + 4 events.
        assert_eq!(evs.len(), 7);
        for e in evs {
            for key in ["name", "ph", "pid", "tid"] {
                assert!(e.get(key).is_some(), "every event has {key}");
            }
        }
        let outer = evs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("outer"))
            .unwrap();
        assert_eq!(outer.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(outer.get("ts").and_then(Json::as_f64), Some(0.1)); // 100 ns = 0.1 µs
        assert_eq!(outer.get("dur").and_then(Json::as_f64), Some(1.0));
        let mark = evs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("mark"))
            .unwrap();
        assert_eq!(mark.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(mark.get("s").and_then(Json::as_str), Some("t"));
        assert_eq!(
            mark.get("args").unwrap().get("iter").and_then(Json::as_f64),
            Some(3.0)
        );
        // main and worker-0 sit on distinct named lanes.
        let tids: Vec<f64> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
            .map(|e| e.get("tid").and_then(Json::as_f64).unwrap())
            .collect();
        assert_eq!(tids.len(), 2);
        assert_ne!(tids[0], tids[1]);
    }

    #[test]
    fn collapsed_stacks_self_time() {
        let out = collapsed_stacks(&sample_events());
        let mut lines: std::collections::BTreeMap<&str, u64> = out
            .lines()
            .map(|l| {
                let (stack, ns) = l.rsplit_once(' ').unwrap();
                (stack, ns.parse().unwrap())
            })
            .collect();
        // outer's self time excludes the nested inner span.
        assert_eq!(lines.remove("main;outer"), Some(700));
        assert_eq!(lines.remove("main;outer;inner"), Some(300));
        assert_eq!(lines.remove("worker-0;task"), Some(400));
        assert!(lines.is_empty(), "unexpected stacks: {lines:?}");
        // Total weight equals total wall time per thread (no double count).
    }

    #[test]
    fn collapsed_stacks_sequential_siblings_share_one_line() {
        let evs = vec![
            span("t", "parent", 0, 0, 1000),
            span("t", "child", 1, 100, 200),
            span("t", "child", 1, 400, 300),
        ];
        let out = collapsed_stacks(&evs);
        assert!(out.contains("t;parent;child 500\n"), "{out}");
        assert!(out.contains("t;parent 500\n"), "{out}");
    }

    #[test]
    fn ndjson_round_trip() {
        let ndjson = "\
{\"type\":\"meta\",\"enabled\":true,\"threads\":1}\n\
{\"type\":\"counters\",\"fma_lanes\":12}\n\
{\"type\":\"span\",\"name\":\"outer\",\"thread\":\"main\",\"depth\":0,\"t_ns\":100,\"dur_ns\":1000}\n\
{\"type\":\"event\",\"name\":\"mark\",\"thread\":\"main\",\"depth\":1,\"t_ns\":250,\"iter\":3,\"residual\":0.5}\n";
        let evs = from_ndjson(ndjson).unwrap();
        assert_eq!(evs.len(), 2, "meta/counters lines are skipped");
        assert_eq!(evs[0].name, "outer");
        assert!(evs[0].is_span);
        assert_eq!(evs[0].dur_ns, 1000);
        assert_eq!(evs[1].name, "mark");
        assert!(!evs[1].is_span);
        assert_eq!(
            evs[1].fields,
            vec![("iter".to_string(), 3.0), ("residual".to_string(), 0.5)]
        );
        // And the parsed events drive both exporters.
        let doc = chrome_trace(&evs);
        assert!(doc.to_string().contains("\"traceEvents\""));
        assert!(collapsed_stacks(&evs).contains("main;outer 1000\n"));
        // Malformed JSON is an error, not a panic.
        assert!(from_ndjson("{\"type\":\"span\",").is_err());
        // A span line missing dur_ns is an error; events don't need it.
        assert!(from_ndjson(
            "{\"type\":\"span\",\"name\":\"x\",\"thread\":\"t\",\"depth\":0,\"t_ns\":1}"
        )
        .is_err());
    }

    #[test]
    fn merged_trace_lanes_offsets_and_flows() {
        use crate::clock::OffsetEstimate;
        // Coordinator dispatch span owns id 7; the worker span in a
        // second process is parented to it, on a clock 1 µs ahead.
        let mut dispatch = span("main", "shard.dispatch.spmv", 0, 2_000, 5_000);
        dispatch.span_id = 7;
        let mut compute = span("shard-worker", "shard.worker.spmv", 0, 3_500, 2_000);
        compute.parent = 7;
        let doc = chrome_trace_merged(&[
            ProcessTrace {
                pid: 1,
                label: "cscv-coordinator".into(),
                offset: OffsetEstimate::default(),
                events: vec![dispatch],
            },
            ProcessTrace {
                pid: 2,
                label: "cscv-worker-0".into(),
                offset: OffsetEstimate {
                    offset_ns: 1_000,
                    rtt_ns: 50,
                    samples: 3,
                },
                events: vec![compute],
            },
        ]);
        let back = Json::parse(&doc.to_string()).unwrap();
        let evs = back.get("traceEvents").unwrap().as_arr().unwrap();
        // Chrome schema: every row has name/ph/pid/tid (the PR 4 gate).
        for e in evs {
            for key in ["name", "ph", "pid", "tid"] {
                assert!(e.get(key).is_some(), "every event has {key}");
            }
        }
        // One process_name row per lane set, with distinct pids.
        let procs: Vec<(f64, String)> = evs
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
            .map(|e| {
                (
                    e.get("pid").and_then(Json::as_f64).unwrap(),
                    e.get("args")
                        .unwrap()
                        .get("name")
                        .and_then(Json::as_str)
                        .unwrap()
                        .to_string(),
                )
            })
            .collect();
        assert_eq!(procs.len(), 2);
        assert_ne!(procs[0].0, procs[1].0);
        assert!(procs.iter().any(|(_, n)| n == "cscv-worker-0"));
        // The worker span's timestamp is mapped onto the coordinator
        // clock: 3500 ns on a +1000 ns clock → 2500 ns = 2.5 µs.
        let worker = evs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("shard.worker.spmv"))
            .unwrap();
        assert_eq!(worker.get("ts").and_then(Json::as_f64), Some(2.5));
        assert_eq!(
            worker
                .get("args")
                .unwrap()
                .get("parent_span")
                .and_then(Json::as_f64),
            Some(7.0)
        );
        // Flow arrow: an `s` on the dispatch lane and an `f` on the
        // worker lane, joined by id 7.
        let flow_s = evs
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("s"))
            .unwrap();
        let flow_f = evs
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("f"))
            .unwrap();
        assert_eq!(flow_s.get("id").and_then(Json::as_f64), Some(7.0));
        assert_eq!(flow_f.get("id").and_then(Json::as_f64), Some(7.0));
        assert_eq!(flow_s.get("pid").and_then(Json::as_f64), Some(1.0));
        assert_eq!(flow_f.get("pid").and_then(Json::as_f64), Some(2.0));
        assert_eq!(flow_f.get("bp").and_then(Json::as_str), Some("e"));
    }

    #[test]
    fn trace_context_ids_survive_ndjson() {
        let ndjson = "\
{\"type\":\"span\",\"name\":\"d\",\"thread\":\"main\",\"depth\":0,\"t_ns\":10,\"dur_ns\":50,\"span_id\":9}\n\
{\"type\":\"span\",\"name\":\"w\",\"thread\":\"s0\",\"depth\":0,\"t_ns\":20,\"dur_ns\":10,\"parent\":9}\n";
        let evs = from_ndjson(ndjson).unwrap();
        assert_eq!(evs[0].span_id, 9);
        assert_eq!(evs[0].parent, 0);
        assert_eq!(evs[1].span_id, 0);
        assert_eq!(evs[1].parent, 9);
        // Ids are structural, not payload fields.
        assert!(evs[0].fields.is_empty());
        assert!(evs[1].fields.is_empty());
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn untraced_snapshot_is_empty() {
        assert!(snapshot().is_empty());
        let doc = chrome_trace(&snapshot());
        // Still a valid document with just the process metadata row.
        assert_eq!(doc.get("traceEvents").unwrap().as_arr().unwrap().len(), 1);
    }
}
