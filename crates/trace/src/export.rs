//! Trace exporters for external analysis tooling.
//!
//! Two formats, both fed from the same event stream:
//!
//! * **Chrome trace-event JSON** ([`chrome_trace`]) — the
//!   `{"traceEvents":[…]}` document understood by Perfetto
//!   (<https://ui.perfetto.dev>) and `chrome://tracing`. Spans become
//!   complete (`"ph":"X"`) events, point events become instants
//!   (`"ph":"i"`), and per-thread metadata (`"ph":"M"`) names the
//!   timeline rows, so a traced run opens as one lane per pool thread
//!   with the solver/iteration markers overlaid.
//! * **Collapsed stacks** ([`collapsed_stacks`]) — the
//!   `frame;frame;frame count` text format consumed by flamegraph
//!   tooling (`flamegraph.pl`, inferno, speedscope). Stacks are
//!   reconstructed from span nesting (interval containment per thread)
//!   and weighted by *self* time, so a flamegraph shows where
//!   wall-clock actually went rather than double-counting parents.
//!
//! Both work from [`ExportEvent`] — an owned mirror of
//! [`crate::span::Event`] — sourced either from the live registry
//! ([`snapshot`]) or re-parsed from a previously written NDJSON trace
//! file ([`from_ndjson`]), which is how `cscv-xtask perf-report
//! --export-dir` converts archived traces offline.
//!
//! Always compiled: exporting operates on recorded data, not the hot
//! path. In untraced builds [`snapshot`] is simply empty.

use crate::json::Json;
use crate::span;

/// One owned span or point event, tagged with its thread.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportEvent {
    pub thread: String,
    pub name: String,
    /// Span-nesting depth at record time (0 = top level).
    pub depth: u16,
    /// Start time, monotonic nanoseconds since the trace epoch.
    pub t_ns: u64,
    /// Duration in nanoseconds; `0` for point events.
    pub dur_ns: u64,
    pub is_span: bool,
    pub fields: Vec<(String, f64)>,
}

/// Snapshot the live registry's buffered events (sorted by start time).
pub fn snapshot() -> Vec<ExportEvent> {
    span::events()
        .into_iter()
        .map(|(thread, e)| ExportEvent {
            thread,
            name: e.name.to_string(),
            depth: e.depth,
            t_ns: e.t_ns,
            dur_ns: e.dur_ns,
            is_span: e.is_span,
            fields: e.fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        })
        .collect()
}

/// Keys on span/event NDJSON lines that are structure, not payload.
const STRUCTURAL_KEYS: [&str; 6] = ["type", "name", "thread", "depth", "t_ns", "dur_ns"];

/// Re-parse the span/event lines of an NDJSON trace (as written by
/// [`crate::emit::ndjson`]); other line types are skipped. Events come
/// back sorted by start time.
pub fn from_ndjson(text: &str) -> Result<Vec<ExportEvent>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let ty = v.get("type").and_then(Json::as_str).unwrap_or("");
        let is_span = match ty {
            "span" => true,
            "event" => false,
            _ => continue,
        };
        let str_field = |k: &str| {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("line {}: missing {k:?}", lineno + 1))
        };
        let num_field = |k: &str, required: bool| match v.get(k).and_then(Json::as_f64) {
            Some(n) => Ok(n),
            None if !required => Ok(0.0),
            None => Err(format!("line {}: missing {k:?}", lineno + 1)),
        };
        let fields = v
            .as_obj()
            .unwrap_or(&[])
            .iter()
            .filter(|(k, _)| !STRUCTURAL_KEYS.contains(&k.as_str()))
            .filter_map(|(k, val)| val.as_f64().map(|n| (k.clone(), n)))
            .collect();
        out.push(ExportEvent {
            thread: str_field("thread")?,
            name: str_field("name")?,
            depth: num_field("depth", true)? as u16,
            t_ns: num_field("t_ns", true)? as u64,
            dur_ns: num_field("dur_ns", is_span)? as u64,
            is_span,
            fields,
        });
    }
    out.sort_by_key(|e| e.t_ns);
    Ok(out)
}

/// Thread names in order of first appearance; tids are `index + 1`
/// (tid 0 is reserved for the process-name metadata row).
fn thread_order(events: &[ExportEvent]) -> Vec<&str> {
    let mut order: Vec<&str> = Vec::new();
    for e in events {
        if !order.contains(&e.thread.as_str()) {
            order.push(&e.thread);
        }
    }
    order
}

/// Build a Chrome trace-event JSON document from `events`.
///
/// Timestamps are microseconds (`f64`, the format's native unit); span
/// durations keep nanosecond resolution as fractional µs. Numeric
/// payload fields ride in `args`, so Perfetto surfaces `iter`,
/// `residual`, `iter_ms`, … in the selection panel.
pub fn chrome_trace(events: &[ExportEvent]) -> Json {
    let threads = thread_order(events);
    let tid_of = |name: &str| threads.iter().position(|t| *t == name).unwrap_or(0) + 1;
    let mut trace_events: Vec<Json> = Vec::with_capacity(events.len() + threads.len() + 1);
    trace_events.push(Json::obj(vec![
        ("name", Json::from("process_name")),
        ("ph", Json::from("M")),
        ("pid", Json::from(0u64)),
        ("tid", Json::from(0u64)),
        ("args", Json::obj(vec![("name", Json::from("cscv-trace"))])),
    ]));
    for t in &threads {
        trace_events.push(Json::obj(vec![
            ("name", Json::from("thread_name")),
            ("ph", Json::from("M")),
            ("pid", Json::from(0u64)),
            ("tid", Json::from(tid_of(t))),
            ("args", Json::obj(vec![("name", Json::from(*t))])),
        ]));
    }
    for e in events {
        let mut obj = vec![
            ("name", Json::from(e.name.as_str())),
            ("ph", Json::from(if e.is_span { "X" } else { "i" })),
            ("ts", Json::Num(e.t_ns as f64 / 1e3)),
            ("pid", Json::from(0u64)),
            ("tid", Json::from(tid_of(&e.thread))),
        ];
        if e.is_span {
            obj.push(("dur", Json::Num(e.dur_ns as f64 / 1e3)));
        } else {
            // Thread-scoped instant: renders as a marker on its lane.
            obj.push(("s", Json::from("t")));
        }
        if !e.fields.is_empty() {
            obj.push((
                "args",
                Json::Obj(
                    e.fields
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ));
        }
        trace_events.push(Json::obj(obj));
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(trace_events)),
        ("displayTimeUnit", Json::from("ms")),
    ])
}

/// Write [`chrome_trace`] over the live snapshot to `path` (parent
/// directories created).
pub fn write_chrome_trace(path: &std::path::Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, chrome_trace(&snapshot()).to_string())
}

/// Render collapsed flamegraph stacks: one `thread;outer;…;leaf N`
/// line per distinct stack, `N` = self-time in nanoseconds, sorted for
/// stable diffs. Point events carry no duration and are ignored.
pub fn collapsed_stacks(events: &[ExportEvent]) -> String {
    use std::collections::BTreeMap;
    let mut weights: BTreeMap<String, u64> = BTreeMap::new();

    struct Frame {
        name: String,
        end_ns: u64,
        self_ns: u64,
    }

    for thread in thread_order(events) {
        // Sorted by start time; ties open the longer (outer) span first.
        let mut spans: Vec<&ExportEvent> = events
            .iter()
            .filter(|e| e.is_span && e.thread == thread)
            .collect();
        spans.sort_by(|a, b| a.t_ns.cmp(&b.t_ns).then(b.dur_ns.cmp(&a.dur_ns)));

        let mut stack: Vec<Frame> = Vec::new();
        let pop = |stack: &mut Vec<Frame>, weights: &mut BTreeMap<String, u64>| {
            let frame = stack.pop().expect("pop on non-empty stack");
            let mut key = String::from(thread);
            for f in stack.iter() {
                key.push(';');
                key.push_str(&f.name);
            }
            key.push(';');
            key.push_str(&frame.name);
            *weights.entry(key).or_insert(0) += frame.self_ns;
        };
        for s in spans {
            while stack.last().is_some_and(|f| f.end_ns <= s.t_ns) {
                pop(&mut stack, &mut weights);
            }
            if let Some(parent) = stack.last_mut() {
                parent.self_ns = parent.self_ns.saturating_sub(s.dur_ns);
            }
            stack.push(Frame {
                name: s.name.clone(),
                end_ns: s.t_ns.saturating_add(s.dur_ns),
                self_ns: s.dur_ns,
            });
        }
        while !stack.is_empty() {
            pop(&mut stack, &mut weights);
        }
    }

    let mut out = String::new();
    for (stack, ns) in &weights {
        if *ns > 0 {
            out.push_str(&format!("{stack} {ns}\n"));
        }
    }
    out
}

/// Write [`collapsed_stacks`] over the live snapshot to `path`.
pub fn write_collapsed_stacks(path: &std::path::Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, collapsed_stacks(&snapshot()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(thread: &str, name: &str, depth: u16, t_ns: u64, dur_ns: u64) -> ExportEvent {
        ExportEvent {
            thread: thread.into(),
            name: name.into(),
            depth,
            t_ns,
            dur_ns,
            is_span: true,
            fields: Vec::new(),
        }
    }

    fn sample_events() -> Vec<ExportEvent> {
        vec![
            span("main", "outer", 0, 100, 1000),
            span("main", "inner", 1, 200, 300),
            span("worker-0", "task", 0, 150, 400),
            ExportEvent {
                thread: "main".into(),
                name: "mark".into(),
                depth: 2,
                t_ns: 250,
                dur_ns: 0,
                is_span: false,
                fields: vec![("iter".into(), 3.0), ("residual".into(), 0.5)],
            },
        ]
    }

    #[test]
    fn chrome_trace_schema_and_units() {
        let doc = chrome_trace(&sample_events());
        let back = Json::parse(&doc.to_string()).unwrap();
        let evs = back.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 process + 2 thread metadata + 4 events.
        assert_eq!(evs.len(), 7);
        for e in evs {
            for key in ["name", "ph", "pid", "tid"] {
                assert!(e.get(key).is_some(), "every event has {key}");
            }
        }
        let outer = evs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("outer"))
            .unwrap();
        assert_eq!(outer.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(outer.get("ts").and_then(Json::as_f64), Some(0.1)); // 100 ns = 0.1 µs
        assert_eq!(outer.get("dur").and_then(Json::as_f64), Some(1.0));
        let mark = evs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("mark"))
            .unwrap();
        assert_eq!(mark.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(mark.get("s").and_then(Json::as_str), Some("t"));
        assert_eq!(
            mark.get("args").unwrap().get("iter").and_then(Json::as_f64),
            Some(3.0)
        );
        // main and worker-0 sit on distinct named lanes.
        let tids: Vec<f64> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
            .map(|e| e.get("tid").and_then(Json::as_f64).unwrap())
            .collect();
        assert_eq!(tids.len(), 2);
        assert_ne!(tids[0], tids[1]);
    }

    #[test]
    fn collapsed_stacks_self_time() {
        let out = collapsed_stacks(&sample_events());
        let mut lines: std::collections::BTreeMap<&str, u64> = out
            .lines()
            .map(|l| {
                let (stack, ns) = l.rsplit_once(' ').unwrap();
                (stack, ns.parse().unwrap())
            })
            .collect();
        // outer's self time excludes the nested inner span.
        assert_eq!(lines.remove("main;outer"), Some(700));
        assert_eq!(lines.remove("main;outer;inner"), Some(300));
        assert_eq!(lines.remove("worker-0;task"), Some(400));
        assert!(lines.is_empty(), "unexpected stacks: {lines:?}");
        // Total weight equals total wall time per thread (no double count).
    }

    #[test]
    fn collapsed_stacks_sequential_siblings_share_one_line() {
        let evs = vec![
            span("t", "parent", 0, 0, 1000),
            span("t", "child", 1, 100, 200),
            span("t", "child", 1, 400, 300),
        ];
        let out = collapsed_stacks(&evs);
        assert!(out.contains("t;parent;child 500\n"), "{out}");
        assert!(out.contains("t;parent 500\n"), "{out}");
    }

    #[test]
    fn ndjson_round_trip() {
        let ndjson = "\
{\"type\":\"meta\",\"enabled\":true,\"threads\":1}\n\
{\"type\":\"counters\",\"fma_lanes\":12}\n\
{\"type\":\"span\",\"name\":\"outer\",\"thread\":\"main\",\"depth\":0,\"t_ns\":100,\"dur_ns\":1000}\n\
{\"type\":\"event\",\"name\":\"mark\",\"thread\":\"main\",\"depth\":1,\"t_ns\":250,\"iter\":3,\"residual\":0.5}\n";
        let evs = from_ndjson(ndjson).unwrap();
        assert_eq!(evs.len(), 2, "meta/counters lines are skipped");
        assert_eq!(evs[0].name, "outer");
        assert!(evs[0].is_span);
        assert_eq!(evs[0].dur_ns, 1000);
        assert_eq!(evs[1].name, "mark");
        assert!(!evs[1].is_span);
        assert_eq!(
            evs[1].fields,
            vec![("iter".to_string(), 3.0), ("residual".to_string(), 0.5)]
        );
        // And the parsed events drive both exporters.
        let doc = chrome_trace(&evs);
        assert!(doc.to_string().contains("\"traceEvents\""));
        assert!(collapsed_stacks(&evs).contains("main;outer 1000\n"));
        // Malformed JSON is an error, not a panic.
        assert!(from_ndjson("{\"type\":\"span\",").is_err());
        // A span line missing dur_ns is an error; events don't need it.
        assert!(from_ndjson(
            "{\"type\":\"span\",\"name\":\"x\",\"thread\":\"t\",\"depth\":0,\"t_ns\":1}"
        )
        .is_err());
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn untraced_snapshot_is_empty() {
        assert!(snapshot().is_empty());
        let doc = chrome_trace(&snapshot());
        // Still a valid document with just the process metadata row.
        assert_eq!(doc.get("traceEvents").unwrap().as_arr().unwrap().len(), 1);
    }
}
