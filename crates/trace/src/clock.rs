//! Cross-process clock-offset estimation (NTP-style, minimum-RTT).
//!
//! Every process stamps spans on its own trace-epoch clock
//! ([`crate::span::now_ns`]), which starts at that process's first
//! instrumented call — worker timelines are therefore shifted against
//! the coordinator's by an unknown per-process offset. The shard
//! coordinator runs a short probe exchange at connect time: it sends
//! its clock reading `t0`, the worker replies with its own reading
//! `tw`, and the coordinator notes the arrival time `t1`. Assuming the
//! request and reply halves of the round trip are symmetric, the worker
//! read its clock at coordinator time `(t0 + t1) / 2`, so
//!
//! ```text
//! offset = tw − (t0 + t1) / 2        (worker clock − coordinator clock)
//! ```
//!
//! Each exchange's error is bounded by its round-trip time, so of the
//! handful of samples taken the one with the smallest RTT wins — the
//! classic NTP filter. Mapping a worker timestamp onto the
//! coordinator's timeline is then `t_coord = tw − offset`
//! ([`OffsetEstimate::to_coordinator_ns`]).
//!
//! Always compiled: the math operates on exchanged numbers, not on live
//! instrumentation, and the exporter needs it to merge archived traces.

/// One probe exchange: coordinator send time, worker clock reading,
/// coordinator receive time (all nanoseconds on the respective epoch
/// clocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockSample {
    /// Coordinator clock when the probe was sent.
    pub t_send_ns: u64,
    /// Worker clock when it answered.
    pub t_worker_ns: u64,
    /// Coordinator clock when the reply arrived.
    pub t_recv_ns: u64,
}

impl ClockSample {
    /// Round-trip time of this exchange (0 if the clock misbehaved).
    pub fn rtt_ns(&self) -> u64 {
        self.t_recv_ns.saturating_sub(self.t_send_ns)
    }

    /// Offset estimate from this single exchange.
    pub fn offset_ns(&self) -> i64 {
        let midpoint = (self.t_send_ns as i128 + self.t_recv_ns as i128) / 2;
        (self.t_worker_ns as i128 - midpoint) as i64
    }
}

/// The selected offset for one worker process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OffsetEstimate {
    /// Worker clock minus coordinator clock, nanoseconds.
    pub offset_ns: i64,
    /// RTT of the winning exchange — an upper bound on the error.
    pub rtt_ns: u64,
    /// Number of exchanges the estimate was selected from.
    pub samples: u32,
}

impl OffsetEstimate {
    /// Map a worker-clock timestamp onto the coordinator timeline,
    /// clamped at zero (a worker event can appear to predate the
    /// coordinator epoch by up to one RTT).
    pub fn to_coordinator_ns(&self, t_worker_ns: u64) -> u64 {
        (t_worker_ns as i128 - self.offset_ns as i128).max(0) as u64
    }
}

/// Select the minimum-RTT estimate from `samples`. Empty input yields
/// the identity estimate (offset 0), which merges traces unshifted.
pub fn estimate(samples: &[ClockSample]) -> OffsetEstimate {
    let best = samples.iter().min_by_key(|s| s.rtt_ns());
    match best {
        Some(s) => OffsetEstimate {
            offset_ns: s.offset_ns(),
            rtt_ns: s.rtt_ns(),
            samples: samples.len() as u32,
        },
        None => OffsetEstimate::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_symmetric_exchange_recovers_offset() {
        // Worker clock runs 500 ns ahead; 100 ns each way on the wire.
        let s = ClockSample {
            t_send_ns: 1_000,
            t_worker_ns: 1_100 + 500,
            t_recv_ns: 1_200,
        };
        assert_eq!(s.rtt_ns(), 200);
        assert_eq!(s.offset_ns(), 500);
        let est = estimate(&[s]);
        assert_eq!(est.offset_ns, 500);
        assert_eq!(est.rtt_ns, 200);
        assert_eq!(est.samples, 1);
        assert_eq!(est.to_coordinator_ns(1_600), 1_100);
    }

    #[test]
    fn minimum_rtt_sample_wins() {
        let noisy = ClockSample {
            t_send_ns: 0,
            t_worker_ns: 9_000, // wildly wrong: queued behind a stall
            t_recv_ns: 10_000,
        };
        let clean = ClockSample {
            t_send_ns: 20_000,
            t_worker_ns: 20_050 + 300,
            t_recv_ns: 20_100,
        };
        let est = estimate(&[noisy, clean, noisy]);
        assert_eq!(est.offset_ns, 300);
        assert_eq!(est.rtt_ns, 100);
        assert_eq!(est.samples, 3);
    }

    #[test]
    fn negative_offset_and_clamping() {
        // Worker epoch started *after* the coordinator's: worker clock
        // reads lower, offset is negative, mapping shifts forward.
        let s = ClockSample {
            t_send_ns: 5_000,
            t_worker_ns: 100,
            t_recv_ns: 5_200,
        };
        let est = estimate(&[s]);
        assert_eq!(est.offset_ns, 100 - 5_100);
        assert_eq!(est.to_coordinator_ns(100), 5_100);
        // Clamp: a mapped time can never go below the epoch.
        let ahead = estimate(&[ClockSample {
            t_send_ns: 0,
            t_worker_ns: 1_000_000,
            t_recv_ns: 100,
        }]);
        assert_eq!(ahead.to_coordinator_ns(0), 0);
    }

    #[test]
    fn empty_samples_are_identity() {
        let est = estimate(&[]);
        assert_eq!(est, OffsetEstimate::default());
        assert_eq!(est.to_coordinator_ns(42), 42);
    }

    #[test]
    fn asymmetric_rtt_error_is_bounded_by_rtt() {
        // True offset 500, but the request leg took 180 ns and the
        // reply leg 20 ns — the midpoint assumption misattributes the
        // asymmetry. The estimate error must stay within the RTT bound.
        let true_offset = 500i64;
        let s = ClockSample {
            t_send_ns: 1_000,
            t_worker_ns: (1_180i64 + true_offset) as u64, // read after the slow leg
            t_recv_ns: 1_200,
        };
        let est = estimate(&[s]);
        let err = (est.offset_ns - true_offset).abs();
        assert!(err > 0, "asymmetry must show up, or this test is vacuous");
        assert!(
            err as u64 <= est.rtt_ns,
            "error {err} exceeds the RTT bound {}",
            est.rtt_ns
        );
    }

    #[test]
    fn min_rtt_selection_among_negative_offsets() {
        // All offsets negative (worker epochs start late); the filter
        // must still pick by RTT, not by offset magnitude.
        let wide = ClockSample {
            t_send_ns: 10_000,
            t_worker_ns: 2_000,
            t_recv_ns: 11_000,
        };
        let tight = ClockSample {
            t_send_ns: 30_000,
            t_worker_ns: 22_040,
            t_recv_ns: 30_080,
        };
        let est = estimate(&[wide, tight]);
        assert_eq!(est.rtt_ns, 80);
        assert_eq!(est.offset_ns, 22_040 - 30_040);
        assert!(est.offset_ns < 0);
        // Mapping a worker stamp forward onto the coordinator timeline.
        assert_eq!(est.to_coordinator_ns(22_040), 30_040);
    }

    #[test]
    fn single_probe_zero_rtt_is_exact() {
        // Degenerate handshake: reply arrives on the same coordinator
        // tick it was sent (loopback, coarse clock). RTT 0 means the
        // error bound is zero and the offset is taken verbatim.
        let s = ClockSample {
            t_send_ns: 7_000,
            t_worker_ns: 7_123,
            t_recv_ns: 7_000,
        };
        let est = estimate(&[s]);
        assert_eq!(est.rtt_ns, 0);
        assert_eq!(est.offset_ns, 123);
        assert_eq!(est.samples, 1);
    }

    #[test]
    fn backwards_clock_sample_saturates_rtt() {
        // t_recv < t_send (the coordinator clock misbehaved): rtt_ns
        // saturates to 0 rather than wrapping, so the sample claims a
        // perfect error bound and wins the filter — callers are expected
        // to feed monotonic readings. This pins the documented behavior.
        let broken = ClockSample {
            t_send_ns: 5_000,
            t_worker_ns: 9_999,
            t_recv_ns: 4_000,
        };
        assert_eq!(broken.rtt_ns(), 0);
        let honest = ClockSample {
            t_send_ns: 6_000,
            t_worker_ns: 6_150,
            t_recv_ns: 6_200,
        };
        let est = estimate(&[honest, broken]);
        assert_eq!(est.rtt_ns, 0);
        assert_eq!(est.samples, 2);
    }
}
