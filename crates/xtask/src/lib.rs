//! `cscv-xtask` — the workspace's correctness- and perf-tooling crate.
//!
//! Several subsystems, free of external dependencies:
//!
//! * [`lint`] (driven by the [`lexer`]) — a project-specific static
//!   analysis pass run as `cargo run -p cscv-xtask -- lint` from `ci.sh`
//!   and CI. See the lint module docs for the four rules; diagnostics
//!   come out as a human table or NDJSON ([`ndjson`]).
//! * [`audit`] — the deeper dataflow-flavored pass (`… -- audit`):
//!   truncating casts on index arithmetic in hot paths, slice indexing
//!   inside/feeding `unsafe` blocks, undeclared cfg features, and
//!   crate-layering violations against the workspace DAG, with
//!   `// AUDIT(<key>): <why>` annotations for vetted sites.
//! * [`analyze`] — the whole-workspace *inter-procedural* engine
//!   (`… -- analyze`): a cross-crate call graph over the lexer's item
//!   model feeds fixpoint dataflow for six rule families
//!   (unsafe-provenance escapes, panic-reachability with witness
//!   chains, atomic-ordering discipline against `// ATOMIC(<role>)`
//!   declarations, inter-procedural cast truncation, index-domain
//!   provenance against the `DOMAIN(<d>)` typestate catalog, and
//!   shard wire-protocol conformance against `SESSION_SPEC`) plus a
//!   stale-annotation check; findings gate through the checked-in
//!   ratchet baseline `crates/xtask/analyze_baseline.json`, with warm
//!   runs replayed byte-identically from `target/analyze-cache.json`.
//! * [`fuzz`] — structure-aware differential fuzzing (`… -- fuzz`):
//!   randomized CT geometries and degenerate matrices round-tripped
//!   through every sparse format with invariant validation after each
//!   conversion and executor-vs-dense differential checks, shrinking
//!   failures to a replayable seed.
//! * [`sched`] — a minimal exhaustive-interleaving model checker (a
//!   vendored loom-flavored scheduler) used by `tests/models.rs` to
//!   verify the thread-pool dispatch/ack barrier and the trace-shard
//!   folding protocols under *every* interleaving.
//! * [`perf`] — the `perf-report` subcommand: aggregates benchmark
//!   manifests into a roofline-attributed report (latency-vs-bandwidth
//!   classification per kernel), exports archived traces to Chrome
//!   trace-event JSON and collapsed flamegraph stacks, and diffs two
//!   result directories with noise-aware min-of-reps comparison.
//! * [`tune_cmd`] — the `tune` subcommand: batch-runs the `cscv-tune`
//!   autotuner over a corpus of case descriptors, re-measures the
//!   chosen configs against the static heuristic on the full matrices,
//!   and reports speedups (exit 1 when a tuned config is slower than
//!   the heuristic beyond the noise band).

pub mod analyze;
pub mod audit;
pub mod fuzz;
pub mod lexer;
pub mod lint;
pub mod ndjson;
pub mod perf;
pub mod sched;
pub mod shard_cmd;
pub mod tune_cmd;
