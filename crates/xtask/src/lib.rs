//! `cscv-xtask` — the workspace's correctness- and perf-tooling crate.
//!
//! Three subsystems, free of external dependencies:
//!
//! * [`lint`] (driven by the [`lexer`]) — a project-specific static
//!   analysis pass run as `cargo run -p cscv-xtask -- lint` from `ci.sh`
//!   and CI. See the lint module docs for the four rules; diagnostics
//!   come out as a human table or NDJSON ([`ndjson`]).
//! * [`sched`] — a minimal exhaustive-interleaving model checker (a
//!   vendored loom-flavored scheduler) used by `tests/models.rs` to
//!   verify the thread-pool dispatch/ack barrier and the trace-shard
//!   folding protocols under *every* interleaving.
//! * [`perf`] — the `perf-report` subcommand: aggregates benchmark
//!   manifests into a roofline-attributed report (latency-vs-bandwidth
//!   classification per kernel), exports archived traces to Chrome
//!   trace-event JSON and collapsed flamegraph stacks, and diffs two
//!   result directories with noise-aware min-of-reps comparison.

pub mod lexer;
pub mod lint;
pub mod ndjson;
pub mod perf;
pub mod sched;
