//! CLI entry point: `cargo run -p cscv-xtask -- lint [--root DIR]
//! [--format table|ndjson]`.
//!
//! Exit codes: 0 = clean, 1 = lint violations, 2 = usage or IO error.

use cscv_xtask::lint::{lint_root, Report};
use cscv_xtask::ndjson;
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(PartialEq)]
enum Format {
    Table,
    Ndjson,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cscv-xtask lint [--root DIR] [--format table|ndjson]\n\n\
         Lints crates/*/src/**.rs (and the umbrella src/) for the project\n\
         rules: SAFETY comments on unsafe, the unsafe-module whitelist,\n\
         panicking constructs in kernel hot paths, and trace-cfg fallbacks."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root = PathBuf::from(".");
    let mut format = Format::Table;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "lint" if cmd.is_none() => cmd = Some("lint"),
            "--root" => match it.next() {
                Some(d) => root = PathBuf::from(d),
                None => return usage(),
            },
            "--format" => match it.next().map(String::as_str) {
                Some("table") => format = Format::Table,
                Some("ndjson") => format = Format::Ndjson,
                _ => return usage(),
            },
            "--ndjson" => format = Format::Ndjson,
            _ => return usage(),
        }
    }
    if cmd != Some("lint") {
        return usage();
    }
    match lint_root(&root) {
        Ok(report) => {
            emit(&report, format);
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("cscv-xtask: {e}");
            ExitCode::from(2)
        }
    }
}

fn emit(report: &Report, format: Format) {
    match format {
        Format::Ndjson => {
            for d in &report.diagnostics {
                println!("{}", ndjson::diagnostic_line(d));
            }
            println!("{}", ndjson::summary_line(report));
        }
        Format::Table => {
            if report.is_clean() {
                println!(
                    "cscv-xtask lint: OK — {} files, {} lines, 0 violations",
                    report.files_scanned, report.lines_scanned
                );
                return;
            }
            let loc_w = report
                .diagnostics
                .iter()
                .map(|d| format!("{}:{}", d.file.display(), d.line).len())
                .max()
                .unwrap_or(0);
            let rule_w = report
                .diagnostics
                .iter()
                .map(|d| d.rule.len())
                .max()
                .unwrap_or(0);
            for d in &report.diagnostics {
                println!(
                    "{:<loc_w$}  {:<rule_w$}  {}",
                    format!("{}:{}", d.file.display(), d.line),
                    d.rule,
                    d.message.split_whitespace().collect::<Vec<_>>().join(" "),
                );
            }
            println!(
                "cscv-xtask lint: FAIL — {} files, {} lines, {} violation(s)",
                report.files_scanned,
                report.lines_scanned,
                report.diagnostics.len()
            );
        }
    }
}
