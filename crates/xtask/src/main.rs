//! CLI entry point.
//!
//! ```text
//! cscv-xtask lint [--root DIR] [--format table|ndjson]
//! cscv-xtask audit [--root DIR] [--format table|ndjson]
//! cscv-xtask analyze [--root DIR] [--format table|ndjson]
//!                    [--baseline FILE] [--write-baseline]
//! cscv-xtask fuzz [--iters N] [--seed S] [--corpus DIR]
//! cscv-xtask perf-report DIR [--format table|ndjson] [--peak-gbs F]
//!                            [--export-dir DIR]
//! cscv-xtask perf-report --diff DIR_A DIR_B [--threshold F]
//!                            [--format table|ndjson]
//! cscv-xtask tune [DIR] [--cache FILE] [--format table|ndjson]
//!                 [--reps N] [--warmup N] [--threads N] [--model]
//! cscv-xtask shard [--case FILE] [--workers LIST] [--solver NAME|all]
//!                  [--iters N] [--method stripe|bisect] [--threads N]
//!                  [--launch process|threads] [--tol F]
//!                  [--trace-export FILE] [--telemetry FILE]
//!                  [--format table|ndjson]
//! cscv-xtask shard-worker --socket PATH   (internal: worker process)
//! ```
//!
//! Exit codes: 0 = clean, 1 = violations / perf regressions / fuzz
//! failures, 2 = usage or IO error. `analyze` refines the convention:
//! 1 = findings not in the ratchet baseline, 2 = stale baseline entries
//! (or usage/IO errors).

use cscv_xtask::audit::audit_root;
use cscv_xtask::lint::{lint_root, Report};
use cscv_xtask::{analyze, fuzz, ndjson, perf, shard_cmd, tune_cmd};
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Table,
    Ndjson,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cscv-xtask lint [--root DIR] [--format table|ndjson]\n\
         \x20      cscv-xtask audit [--root DIR] [--format table|ndjson]\n\
         \x20      cscv-xtask analyze [--root DIR] [--format table|ndjson] [--baseline FILE] [--write-baseline] [--no-cache] [--protocol-dot FILE]\n\
         \x20      cscv-xtask fuzz [--iters N] [--seed S] [--corpus DIR]\n\
         \x20      cscv-xtask perf-report DIR [--format table|ndjson] [--peak-gbs F] [--export-dir DIR]\n\
         \x20      cscv-xtask perf-report --diff DIR_A DIR_B [--threshold F] [--format table|ndjson]\n\
         \x20      cscv-xtask tune [DIR] [--cache FILE] [--format table|ndjson] [--reps N] [--warmup N] [--threads N] [--model]\n\
         \x20      cscv-xtask shard [--case FILE] [--workers LIST] [--solver NAME|all] [--iters N] [--method stripe|bisect] [--threads N] [--launch process|threads] [--tol F] [--trace-export FILE] [--telemetry FILE] [--format table|ndjson]\n\n\
         lint        scans crates/*/src/**.rs (and the umbrella src/) for the\n\
         \x20           project rules: SAFETY comments on unsafe, the unsafe-module\n\
         \x20           whitelist, panicking constructs in kernel hot paths, and\n\
         \x20           trace-cfg fallbacks.\n\
         audit       runs the deeper dataflow pass: truncating casts on index\n\
         \x20           arithmetic in hot paths, slice indexing inside/feeding unsafe\n\
         \x20           blocks, cfg features missing from the owning Cargo.toml, and\n\
         \x20           crate-layering violations; vet sites with // AUDIT(<key>): why.\n\
         analyze     whole-workspace inter-procedural analysis: a cross-crate call\n\
         \x20           graph plus fixpoint dataflow checks unsafe-provenance escapes,\n\
         \x20           panic reachability from the kernel hot paths (with witness\n\
         \x20           call chains), atomic-ordering discipline against\n\
         \x20           // ATOMIC(statistic|handoff|flag) declarations, inter-\n\
         \x20           procedural cast truncation, index-domain provenance against\n\
         \x20           the // DOMAIN(<d>) catalog, wire-protocol session conformance\n\
         \x20           against SESSION_SPEC, and stale AUDIT/ATOMIC/DOMAIN\n\
         \x20           annotations; findings ratchet against --baseline (default\n\
         \x20           <root>/crates/xtask/analyze_baseline.json) — new findings\n\
         \x20           exit 1, stale baseline entries exit 2, clean exits 0;\n\
         \x20           --write-baseline adopts the current findings; warm runs\n\
         \x20           replay target/analyze-cache.json byte-identically\n\
         \x20           (--no-cache forces a cold run); --protocol-dot FILE exports\n\
         \x20           the declared session spec as GraphViz DOT.\n\
         fuzz        structure-aware differential fuzzing: random CT geometries and\n\
         \x20           degenerate matrices round-tripped through every format with\n\
         \x20           invariant validation and executor-vs-dense checks; failures\n\
         \x20           shrink to a replayable seed (also replays --corpus DIR).\n\
         perf-report aggregates a benchmark result directory (manifests/*.ndjson,\n\
         \x20           optional trace/*.ndjson) into a roofline report classifying\n\
         \x20           each kernel as latency- or bandwidth-bound, optionally\n\
         \x20           exporting Chrome traces + flamegraph stacks; with --diff it\n\
         \x20           compares two directories (min-of-reps, relative threshold)\n\
         \x20           and exits 1 on regressions.\n\
         tune        batch-runs the cscv-tune autotuner over a corpus of case\n\
         \x20           descriptors (default crates/tune/tune_corpus), re-measures the\n\
         \x20           chosen configs vs the static heuristic on the full matrices,\n\
         \x20           and reports speedups; --cache persists selections so repeat\n\
         \x20           runs skip the search, --model uses the deterministic cost\n\
         \x20           model; exits 1 if a tuned config is slower than the heuristic\n\
         \x20           beyond the noise band.\n\
         shard       sharded multi-process reconstruction gate: assembles the case's\n\
         \x20           system matrix, partitions it into row shards, launches one\n\
         \x20           worker per shard (processes over Unix sockets by default),\n\
         \x20           runs each solver sharded and single-process, and compares —\n\
         \x20           --workers 1 must match bit for bit, more must stay within\n\
         \x20           --tol (default 1e-10) per residual-trajectory entry; exits 1\n\
         \x20           on any equivalence failure. Under --features trace,\n\
         \x20           --trace-export FILE writes one merged Chrome trace (a lane\n\
         \x20           per process, coordinator dispatch spans parenting worker\n\
         \x20           spans, Perfetto-loadable) and --telemetry FILE writes\n\
         \x20           per-worker health rows (type \"telemetry\" NDJSON) that\n\
         \x20           perf-report joins into its tables."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint_cmd(&args[1..]),
        Some("audit") => audit_cmd(&args[1..]),
        Some("analyze") => analyze_cmd(&args[1..]),
        Some("fuzz") => fuzz_cmd(&args[1..]),
        Some("perf-report") => perf_cmd(&args[1..]),
        Some("tune") => tune_cli(&args[1..]),
        Some("shard") => shard_cli(&args[1..]),
        Some("shard-worker") => shard_worker_cmd(&args[1..]),
        _ => usage(),
    }
}

fn parse_format(v: Option<&str>) -> Option<Format> {
    match v {
        Some("table") => Some(Format::Table),
        Some("ndjson") => Some(Format::Ndjson),
        _ => None,
    }
}

fn lint_cmd(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = Format::Table;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(d) => root = PathBuf::from(d),
                None => return usage(),
            },
            "--format" => match parse_format(it.next().map(String::as_str)) {
                Some(f) => format = f,
                None => return usage(),
            },
            "--ndjson" => format = Format::Ndjson,
            _ => return usage(),
        }
    }
    match lint_root(&root) {
        Ok(report) => {
            emit(&report, format, "lint");
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("cscv-xtask: {e}");
            ExitCode::from(2)
        }
    }
}

fn audit_cmd(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = Format::Table;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(d) => root = PathBuf::from(d),
                None => return usage(),
            },
            "--format" => match parse_format(it.next().map(String::as_str)) {
                Some(f) => format = f,
                None => return usage(),
            },
            "--ndjson" => format = Format::Ndjson,
            _ => return usage(),
        }
    }
    match audit_root(&root) {
        Ok(report) => {
            emit(&report, format, "audit");
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("cscv-xtask: {e}");
            ExitCode::from(2)
        }
    }
}

fn analyze_cmd(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = Format::Table;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut use_cache = true;
    let mut protocol_dot: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(d) => root = PathBuf::from(d),
                None => return usage(),
            },
            "--format" => match parse_format(it.next().map(String::as_str)) {
                Some(f) => format = f,
                None => return usage(),
            },
            "--ndjson" => format = Format::Ndjson,
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--write-baseline" => write_baseline = true,
            "--no-cache" => use_cache = false,
            "--protocol-dot" => match it.next() {
                Some(p) => protocol_dot = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let baseline_path =
        baseline_path.unwrap_or_else(|| root.join("crates/xtask/analyze_baseline.json"));
    if let Some(dot_path) = &protocol_dot {
        match analyze::protocol::dot_from_root(&root) {
            Ok(Some(dot)) => {
                if let Err(e) = std::fs::write(dot_path, dot) {
                    eprintln!("cscv-xtask analyze: write {}: {e}", dot_path.display());
                    return ExitCode::from(2);
                }
                eprintln!(
                    "cscv-xtask analyze: wrote session-spec DOT to {}",
                    dot_path.display()
                );
            }
            Ok(None) => {
                eprintln!("cscv-xtask analyze: no SESSION_SPEC declared — no DOT written");
            }
            Err(e) => {
                eprintln!("cscv-xtask analyze: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let report = match analyze::cache::analyze_root_cached(&root, use_cache) {
        Ok((r, _warm)) => r,
        Err(e) => {
            eprintln!("cscv-xtask analyze: {e}");
            return ExitCode::from(2);
        }
    };
    if write_baseline {
        let text = analyze::Baseline::render(&report);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("cscv-xtask analyze: write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        let distinct: std::collections::BTreeSet<String> =
            report.active().map(|f| f.fingerprint()).collect();
        eprintln!(
            "cscv-xtask analyze: wrote baseline ({} entries) to {}",
            distinct.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }
    let baseline = match analyze::Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cscv-xtask analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let ratchet = analyze::Ratchet::compare(&report, &baseline);
    match format {
        Format::Table => print!("{}", analyze::render_table(&report, &ratchet)),
        Format::Ndjson => print!("{}", analyze::render_ndjson(&report, &ratchet)),
    }
    ExitCode::from(ratchet.exit_code())
}

fn fuzz_cmd(args: &[String]) -> ExitCode {
    let mut cfg = fuzz::FuzzConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--iters" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.iters = n,
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => cfg.seed = s,
                None => return usage(),
            },
            "--corpus" => match it.next() {
                Some(d) => cfg.corpus = Some(PathBuf::from(d)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    match fuzz::run(&cfg) {
        Ok(outcome) => {
            print!("{}", outcome.render());
            if outcome.failures.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("cscv-xtask fuzz: {e}");
            ExitCode::from(2)
        }
    }
}

fn perf_cmd(args: &[String]) -> ExitCode {
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut format = Format::Table;
    let mut peak_gbs: Option<f64> = None;
    let mut export_dir: Option<PathBuf> = None;
    let mut threshold = 0.05;
    let mut diff_mode = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--diff" => diff_mode = true,
            "--format" => match parse_format(it.next().map(String::as_str)) {
                Some(f) => format = f,
                None => return usage(),
            },
            "--peak-gbs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(p) => peak_gbs = Some(p),
                None => return usage(),
            },
            "--threshold" => match it.next().and_then(|v| v.parse().ok()) {
                Some(t) => threshold = t,
                None => return usage(),
            },
            "--export-dir" => match it.next() {
                Some(d) => export_dir = Some(PathBuf::from(d)),
                None => return usage(),
            },
            s if !s.starts_with('-') => dirs.push(PathBuf::from(s)),
            _ => return usage(),
        }
    }
    let result = if diff_mode {
        let [a, b] = dirs.as_slice() else {
            return usage();
        };
        perf_diff(a, b, threshold, format)
    } else {
        let [dir] = dirs.as_slice() else {
            return usage();
        };
        perf_report(dir, peak_gbs, export_dir.as_deref(), format)
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("cscv-xtask perf-report: {e}");
            ExitCode::from(2)
        }
    }
}

fn perf_report(
    dir: &std::path::Path,
    peak_gbs: Option<f64>,
    export_dir: Option<&std::path::Path>,
    format: Format,
) -> Result<ExitCode, String> {
    let loaded = perf::load_dir(dir)?;
    let report = perf::build_report(&loaded, peak_gbs)?;
    match format {
        Format::Table => {
            print!("{}", perf::render_table(&loaded, &report));
            let traces = perf::load_trace_counters(dir)?;
            print!("{}", perf::render_trace_section(&traces));
            let telemetry = perf::load_telemetry(dir)?;
            print!("{}", perf::render_telemetry_section(&telemetry));
        }
        Format::Ndjson => print!("{}", perf::render_ndjson(&loaded, &report)),
    }
    if let Some(out) = export_dir {
        for path in perf::export_traces(dir, out)? {
            eprintln!("wrote {}", path.display());
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn perf_diff(
    a: &std::path::Path,
    b: &std::path::Path,
    threshold: f64,
    format: Format,
) -> Result<ExitCode, String> {
    let la = perf::load_dir(a)?;
    let lb = perf::load_dir(b)?;
    let rows = perf::diff(&la, &lb, threshold);
    match format {
        Format::Table => {
            print!("{}", perf::render_diff_table(&la, &lb, &rows, threshold));
            // Informational trace-counter comparison; never gates the
            // exit code (counter drift is not a latency regression).
            let (ta, tb) = (perf::load_trace_counters(a)?, perf::load_trace_counters(b)?);
            print!("{}", perf::render_trace_diff(&ta, &tb));
        }
        Format::Ndjson => print!("{}", perf::render_diff_ndjson(&rows)),
    }
    Ok(if perf::has_regressions(&rows) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

fn tune_cli(args: &[String]) -> ExitCode {
    let mut cfg = tune_cmd::TuneCmdConfig::default();
    let mut format = Format::Table;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cache" => match it.next() {
                Some(p) => cfg.cache = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--format" => match parse_format(it.next().map(String::as_str)) {
                Some(f) => format = f,
                None => return usage(),
            },
            "--reps" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.reps = n,
                None => return usage(),
            },
            "--warmup" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.warmup = n,
                None => return usage(),
            },
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.threads = n,
                None => return usage(),
            },
            "--model" => cfg.model = true,
            s if !s.starts_with('-') => cfg.corpus = PathBuf::from(s),
            _ => return usage(),
        }
    }
    match tune_cmd::run(&cfg) {
        Ok(outcome) => {
            match format {
                Format::Table => print!("{}", outcome.render_table()),
                Format::Ndjson => print!("{}", outcome.render_ndjson()),
            }
            if outcome.regressions().is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("cscv-xtask tune: {e}");
            ExitCode::from(2)
        }
    }
}

fn shard_cli(args: &[String]) -> ExitCode {
    // Under `--features trace` this dumps the run's counters (including
    // the shard.* set the coordinator publishes at cluster shutdown) to
    // `CSCV_TRACE_OUT` as NDJSON on exit — the CI artifact.
    let _trace = cscv_trace::report_guard();
    let mut cfg = shard_cmd::ShardCmdConfig::default();
    let mut format = Format::Table;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--case" => match it.next() {
                Some(p) => cfg.case = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--workers" => {
                let parsed: Option<Vec<usize>> = it
                    .next()
                    .map(|v| v.split(',').map(|w| w.trim().parse().ok()).collect())
                    .unwrap_or(None);
                match parsed {
                    Some(ws) if !ws.is_empty() && ws.iter().all(|&w| w > 0) => cfg.workers = ws,
                    _ => return usage(),
                }
            }
            "--solver" => match it.next() {
                Some(s) if s == "all" => cfg.solvers = cscv_recon::Solver::ALL.to_vec(),
                Some(s) => match cscv_recon::Solver::parse(s) {
                    Some(solver) => cfg.solvers = vec![solver],
                    None => return usage(),
                },
                None => return usage(),
            },
            "--iters" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => cfg.iters = Some(n),
                _ => return usage(),
            },
            "--method" => match it
                .next()
                .and_then(|m| cscv_shard::PartitionMethod::parse(m))
            {
                Some(m) => cfg.method = m,
                None => return usage(),
            },
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => cfg.threads = n,
                _ => return usage(),
            },
            "--launch" => match it.next().map(String::as_str) {
                Some("process") => cfg.threads_launch = false,
                Some("threads") => cfg.threads_launch = true,
                _ => return usage(),
            },
            "--tol" => match it.next().and_then(|v| v.parse().ok()) {
                Some(t) if t > 0.0 => cfg.tol = t,
                _ => return usage(),
            },
            "--trace-export" => match it.next() {
                Some(p) => cfg.trace_export = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--telemetry" => match it.next() {
                Some(p) => cfg.telemetry_out = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--format" => match parse_format(it.next().map(String::as_str)) {
                Some(f) => format = f,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    match shard_cmd::run(&cfg) {
        Ok(outcome) => {
            match format {
                Format::Table => print!("{}", outcome.render_table()),
                Format::Ndjson => print!("{}", outcome.render_ndjson()),
            }
            if outcome.failures().is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("cscv-xtask shard: {e}");
            ExitCode::from(2)
        }
    }
}

/// Hidden entry point: one worker process of a shard cluster. The
/// coordinator (`shard_cli` with `--launch process`, the default) spawns
/// `cscv-xtask shard-worker --socket PATH` per shard; everything else —
/// shard identity, the matrix, solver traffic — arrives over the socket.
fn shard_worker_cmd(args: &[String]) -> ExitCode {
    // Worker processes dump their own counters too (traced builds). All
    // workers inherit the coordinator's CSCV_TRACE_OUT, so suffix it
    // with the pid — otherwise every worker would race to overwrite the
    // coordinator's file.
    if let Ok(out) = std::env::var("CSCV_TRACE_OUT") {
        if !out.is_empty() {
            std::env::set_var(
                "CSCV_TRACE_OUT",
                format!("{out}.worker-{}", std::process::id()),
            );
        }
    }
    let _trace = cscv_trace::report_guard();
    let mut socket: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => match it.next() {
                Some(p) => socket = Some(p.clone()),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(socket) = socket else {
        return usage();
    };
    match cscv_shard::worker::run_process(&socket) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cscv-xtask shard-worker: {e}");
            ExitCode::from(2)
        }
    }
}

fn emit(report: &Report, format: Format, tool: &str) {
    match format {
        Format::Ndjson => {
            for d in &report.diagnostics {
                println!("{}", ndjson::diagnostic_line(d));
            }
            println!("{}", ndjson::summary_line(report));
        }
        Format::Table => {
            if report.is_clean() {
                println!(
                    "cscv-xtask {tool}: OK — {} files, {} lines, 0 violations",
                    report.files_scanned, report.lines_scanned
                );
                return;
            }
            let loc_w = report
                .diagnostics
                .iter()
                .map(|d| format!("{}:{}", d.file.display(), d.line).len())
                .max()
                .unwrap_or(0);
            let rule_w = report
                .diagnostics
                .iter()
                .map(|d| d.rule.len())
                .max()
                .unwrap_or(0);
            for d in &report.diagnostics {
                println!(
                    "{:<loc_w$}  {:<rule_w$}  {}",
                    format!("{}:{}", d.file.display(), d.line),
                    d.rule,
                    d.message.split_whitespace().collect::<Vec<_>>().join(" "),
                );
            }
            println!(
                "cscv-xtask {tool}: FAIL — {} files, {} lines, {} violation(s)",
                report.files_scanned,
                report.lines_scanned,
                report.diagnostics.len()
            );
        }
    }
}
