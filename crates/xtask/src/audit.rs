//! Static audit pass — the dataflow-flavored companion to `lint.rs`.
//!
//! Where the linter checks *local* textual contracts (SAFETY comments,
//! panicking constructs), the audit pass reasons about *where data
//! flows*: index values that get narrowed, slice accesses that feed
//! `unsafe` code, feature flags that no manifest declares, and crate
//! dependency edges that violate the workspace layering DAG. It shares
//! the lexer, the `Diagnostic`/`Report` contract, the NDJSON writer,
//! and the 0/1/2 exit-code convention with `lint.rs`.
//!
//! Rules:
//!
//! | rule                | scope                | suppression            |
//! |---------------------|----------------------|------------------------|
//! | `cast-truncation`   | hot-path files       | `// AUDIT(cast-ok): …` |
//! | `unsafe-indexing`   | every file           | `// AUDIT(index-ok): …`|
//! | `cfg-undeclared`    | every file           | `// AUDIT(cfg-ok): …`  |
//! | `crate-layering`    | every `Cargo.toml`   | none — fix the edge    |
//! | `audit-bad-annotation` | every comment     | none — fix the syntax  |
//!
//! `cast-truncation` runs a lightweight intra-procedural pass: inside
//! each `fn` body it collects the set of *index-typed* bindings
//! (`usize` parameters, `let`s fed by `.len()` / `as usize` / other
//! index bindings, `for` binders over ranges and `.enumerate()`), then
//! flags any `expr as {u8,u16,u32,i8,i16,i32}` whose operand mentions
//! one of them. Kernel fast paths keep their unchecked casts by vetting
//! each site with an `// AUDIT(cast-ok): <why>` annotation; everything
//! else migrates to `try_from` at construction boundaries.
//!
//! `unsafe-indexing` flags `container[index]` expressions with a
//! non-literal index either *inside* an `unsafe` block or *feeding*
//! one (a `let` whose right-hand side indexes a slice and whose binding
//! is consumed inside a later `unsafe` block of the same function).
//!
//! Test regions (`#[cfg(test)] mod … { … }`) are exempt from
//! `cast-truncation`, `unsafe-indexing`, and `cfg-undeclared`: tests
//! are not hot paths and routinely build fixture strings that would
//! otherwise self-trigger the rules.

use crate::lexer::{self, LineView};
use crate::lint::{collect_rs_files, test_regions, Diagnostic, Report};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

pub const RULE_CAST_TRUNCATION: &str = "cast-truncation";
pub const RULE_UNSAFE_INDEXING: &str = "unsafe-indexing";
pub const RULE_CFG_UNDECLARED: &str = "cfg-undeclared";
pub const RULE_LAYERING: &str = "crate-layering";
pub const RULE_BAD_ANNOTATION: &str = "audit-bad-annotation";

/// Annotation keys accepted by `// AUDIT(<key>): <why>`. The first
/// three suppress audit rules; `panic-ok` / `escape-ok` / `order-ok`
/// suppress the inter-procedural `analyze` rules (see `analyze/`), but
/// share the grammar and the syntax check so one scanner vets all of
/// them.
pub const ANNOTATION_KEYS: &[&str] = &[
    "cast-ok",
    "index-ok",
    "cfg-ok",
    "panic-ok",
    "escape-ok",
    "order-ok",
    "domain-ok",
    "protocol-ok",
];

/// Narrowing integer cast targets on a 64-bit host.
pub(crate) const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Files whose code is reachable from the SpMV kernel hot paths — the
/// lint `HOT_PATH_FILES` set plus the executor layers that call into
/// them and the competing-format executors.
pub(crate) const HOT_PATH_AUDIT_FILES: &[&str] =
    &["kernels.rs", "lanes.rs", "expand.rs", "exec.rs"];

fn basename(rel: &Path) -> &str {
    rel.file_name().and_then(|n| n.to_str()).unwrap_or("")
}

pub(crate) fn hot_path_reachable(rel: &Path) -> bool {
    HOT_PATH_AUDIT_FILES.contains(&basename(rel))
        || rel
            .components()
            .any(|c| c.as_os_str().to_str() == Some("formats"))
}

// ---------------------------------------------------------------------------
// Workspace layering DAG (ROADMAP: trace/simd at the bottom, sparse →
// core → ct/recon → harness → bench on top; xtask is a tooling leaf).
// An edge absent from this table is a layering violation even if cargo
// accepts it. `[dev-dependencies]` are exempt: dev edges cannot create
// build cycles and the workspace uses the self-dev-dep trick for
// feature unification.
// ---------------------------------------------------------------------------

const LAYERING_DAG: &[(&str, &[&str])] = &[
    ("cscv-trace", &[]),
    ("cscv-simd", &["cscv-trace"]),
    ("cscv-sparse", &["cscv-trace", "cscv-simd"]),
    ("cscv-core", &["cscv-trace", "cscv-simd", "cscv-sparse"]),
    (
        "cscv-ct",
        &["cscv-trace", "cscv-simd", "cscv-sparse", "cscv-core"],
    ),
    (
        "cscv-recon",
        &[
            "cscv-trace",
            "cscv-simd",
            "cscv-sparse",
            "cscv-core",
            "cscv-ct",
        ],
    ),
    (
        "cscv-harness",
        &[
            "cscv-trace",
            "cscv-simd",
            "cscv-sparse",
            "cscv-core",
            "cscv-ct",
            "cscv-recon",
        ],
    ),
    (
        "cscv-bench",
        &[
            "cscv-trace",
            "cscv-simd",
            "cscv-sparse",
            "cscv-core",
            "cscv-ct",
            "cscv-recon",
            "cscv-harness",
        ],
    ),
    (
        "cscv-tune",
        &[
            "cscv-trace",
            "cscv-simd",
            "cscv-sparse",
            "cscv-core",
            "cscv-harness",
        ],
    ),
    (
        "cscv-shard",
        &[
            "cscv-trace",
            "cscv-simd",
            "cscv-sparse",
            "cscv-core",
            "cscv-ct",
            "cscv-recon",
            "cscv-harness",
            "cscv-tune",
        ],
    ),
    (
        "cscv-xtask",
        &[
            "cscv-trace",
            "cscv-simd",
            "cscv-sparse",
            "cscv-core",
            "cscv-ct",
            "cscv-recon",
            "cscv-harness",
            "cscv-tune",
            "cscv-shard",
        ],
    ),
    (
        "cscv-repro",
        &[
            "cscv-trace",
            "cscv-simd",
            "cscv-sparse",
            "cscv-core",
            "cscv-ct",
            "cscv-recon",
            "cscv-harness",
            "cscv-tune",
            "cscv-shard",
        ],
    ),
];

fn allowed_deps(name: &str) -> Option<&'static [&'static str]> {
    LAYERING_DAG
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, deps)| *deps)
}

// ---------------------------------------------------------------------------
// Manifest parsing (hand-rolled single-pass TOML subset: we only need
// `[package] name`, `[features]` keys and `[dependencies]` keys).
// ---------------------------------------------------------------------------

/// What the audit needs to know about one crate manifest.
#[derive(Debug, Clone)]
pub struct CrateMeta {
    pub name: String,
    /// Manifest path relative to the audit root (diagnostic target).
    pub manifest_rel: PathBuf,
    /// Declared `[features]` keys.
    pub features: BTreeSet<String>,
    /// Workspace-internal `[dependencies]` edges as `(line, crate)`.
    pub deps: Vec<(usize, String)>,
    pub manifest_lines: usize,
}

/// Parse the subset of a `Cargo.toml` the audit needs.
pub fn parse_manifest(manifest_rel: &Path, src: &str) -> CrateMeta {
    let mut meta = CrateMeta {
        name: String::new(),
        manifest_rel: manifest_rel.to_path_buf(),
        features: BTreeSet::new(),
        deps: Vec::new(),
        manifest_lines: src.lines().count(),
    };
    let mut section = String::new();
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let key = line[..eq].trim();
        match section.as_str() {
            "package" if key == "name" => {
                meta.name = line[eq + 1..].trim().trim_matches('"').to_string();
            }
            "features" => {
                meta.features.insert(key.to_string());
            }
            "dependencies" => {
                // `cscv-trace.workspace = true` and
                // `cscv-core = { path = "…" }` both start with the key.
                let dep = key.split('.').next().unwrap_or(key).trim();
                if dep.starts_with("cscv-") {
                    meta.deps.push((idx + 1, dep.to_string()));
                }
            }
            _ => {}
        }
    }
    meta
}

/// Layering check over all workspace manifests.
pub fn check_layering(metas: &[CrateMeta], out: &mut Vec<Diagnostic>) {
    for meta in metas {
        let Some(allowed) = allowed_deps(&meta.name) else {
            out.push(Diagnostic {
                file: meta.manifest_rel.clone(),
                line: 1,
                rule: RULE_LAYERING,
                message: format!(
                    "crate `{}` is not part of the declared layering DAG; \
                     add it to LAYERING_DAG in xtask/src/audit.rs with its allowed dependencies",
                    meta.name
                ),
            });
            continue;
        };
        for (line, dep) in &meta.deps {
            if !allowed.contains(&dep.as_str()) {
                out.push(Diagnostic {
                    file: meta.manifest_rel.clone(),
                    line: *line,
                    rule: RULE_LAYERING,
                    message: format!(
                        "dependency edge `{}` → `{}` violates the workspace layering DAG \
                         (allowed: {})",
                        meta.name,
                        dep,
                        if allowed.is_empty() {
                            "none".to_string()
                        } else {
                            allowed.join(", ")
                        }
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// AUDIT(<key>): <why> annotations.
// ---------------------------------------------------------------------------

/// Parse all `AUDIT(<key>): <why>` occurrences in one comment string.
/// Returns `(key, why)` pairs; a `None` why means the annotation is
/// malformed (missing `):` or empty reason).
pub(crate) fn annotations_in(comment: &str) -> Vec<(String, Option<String>)> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(p) = comment[from..].find("AUDIT(") {
        let at = from + p;
        let rest = &comment[at + "AUDIT(".len()..];
        from = at + "AUDIT(".len();
        let Some(close) = rest.find(')') else {
            out.push((String::new(), None));
            continue;
        };
        let key = rest[..close].trim().to_string();
        // `AUDIT(<key>)`-style placeholders in prose are documentation,
        // not annotations: a real key is ident chars and dashes only.
        if !key.chars().all(|c| lexer::is_ident_char(c) || c == '-') {
            continue;
        }
        let after = &rest[close + 1..];
        let Some(tail) = after.strip_prefix(':') else {
            out.push((key, None));
            continue;
        };
        let why = tail.split("AUDIT(").next().unwrap_or("").trim().to_string();
        if why.is_empty() {
            out.push((key, None));
        } else {
            out.push((key, Some(why)));
        }
    }
    out
}

/// True when line `idx` is vetted for `key`: a well-formed
/// `AUDIT(<key>): <why>` sits on the same line or in the contiguous
/// comment/attribute block directly above (same walk as the linter's
/// SAFETY-comment rule).
pub(crate) fn annotation_covers(lines: &[LineView], idx: usize, key: &str) -> bool {
    let has = |comment: &str| {
        annotations_in(comment)
            .iter()
            .any(|(k, why)| k == key && why.is_some())
    };
    if has(&lines[idx].comment) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        if l.is_comment_only() || l.is_attribute() {
            if has(&l.comment) {
                return true;
            }
            continue;
        }
        break;
    }
    false
}

fn check_annotation_syntax(rel: &Path, lines: &[LineView], out: &mut Vec<Diagnostic>) {
    for (i, l) in lines.iter().enumerate() {
        for (key, why) in annotations_in(&l.comment) {
            let known = ANNOTATION_KEYS.contains(&key.as_str());
            if !known || why.is_none() {
                out.push(Diagnostic {
                    file: rel.to_path_buf(),
                    line: i + 1,
                    rule: RULE_BAD_ANNOTATION,
                    message: if known {
                        format!("AUDIT({key}) needs a non-empty reason: `// AUDIT({key}): <why>`")
                    } else {
                        format!(
                            "unknown AUDIT key `{key}` (expected one of: {})",
                            ANNOTATION_KEYS.join(", ")
                        )
                    },
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// cfg-undeclared.
// ---------------------------------------------------------------------------

fn check_cfg_features(
    rel: &Path,
    lines: &[LineView],
    in_test: &[bool],
    declared: &BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    for (i, l) in lines.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        // Strings are kept in this view: `feature = "x"` lives inside
        // the cfg attribute's token stream, and word-boundary matching
        // rejects `target_feature`.
        let hay = &l.code_with_strings;
        for pos in lexer::word_positions(hay, "feature") {
            let rest = hay[pos + "feature".len()..].trim_start();
            let Some(rest) = rest.strip_prefix('=') else {
                continue;
            };
            let rest = rest.trim_start();
            let Some(rest) = rest.strip_prefix('"') else {
                continue;
            };
            let Some(end) = rest.find('"') else { continue };
            let name = &rest[..end];
            if !declared.contains(name) && !annotation_covers(lines, i, "cfg-ok") {
                out.push(Diagnostic {
                    file: rel.to_path_buf(),
                    line: i + 1,
                    rule: RULE_CFG_UNDECLARED,
                    message: format!(
                        "feature `{name}` is not declared in the owning Cargo.toml's [features]"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Function spans and index-typed bindings (the intra-procedural part).
// ---------------------------------------------------------------------------

/// Line spans `(first, last)` of every `fn` body, header included.
/// Nested functions yield their own (overlapping) spans.
pub(crate) fn fn_spans(lines: &[LineView]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for i in 0..lines.len() {
        for pos in lexer::word_positions(&lines[i].code, "fn") {
            // Walk forward from the keyword looking for the body's `{`;
            // a `;` first (at paren depth 0) means a trait method
            // declaration or fn-pointer type — no body, no span.
            let mut depth = 0i64;
            let mut li = i;
            let mut ci = pos + 2;
            let (mut open_line, mut found) = (0usize, false);
            'scan: while li < lines.len() {
                let bytes = lines[li].code.as_bytes();
                while ci < bytes.len() {
                    match bytes[ci] {
                        b'(' | b'<' | b'[' => depth += 1,
                        b')' | b'>' | b']' => depth -= 1,
                        b';' if depth <= 0 => break 'scan,
                        b'{' => {
                            open_line = li;
                            found = true;
                            break 'scan;
                        }
                        _ => {}
                    }
                    ci += 1;
                }
                li += 1;
                ci = 0;
            }
            if !found {
                continue;
            }
            // Brace-count from the opening line to the body's close.
            let mut braces = 0i64;
            let mut end = open_line;
            for (j, l) in lines.iter().enumerate().skip(open_line) {
                for b in l.code.bytes() {
                    match b {
                        b'{' => braces += 1,
                        b'}' => braces -= 1,
                        _ => {}
                    }
                }
                end = j;
                if braces <= 0 {
                    break;
                }
            }
            spans.push((i, end));
        }
    }
    spans
}

/// Remove `[...]` segments so identifiers used *as* subscripts don't
/// count as the expression's own operands (`masks[mi]` → `masks`).
pub(crate) fn strip_subscripts(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut depth = 0usize;
    for c in s.chars() {
        match c {
            '[' => depth += 1,
            ']' => depth = depth.saturating_sub(1),
            c if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// Identifiers (not numeric literals, not keywords-we-care-about) in `s`.
pub(crate) fn idents(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in s.chars() {
        if lexer::is_ident_char(c) {
            cur.push(c);
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out.retain(|w| !w.starts_with(|c: char| c.is_ascii_digit()));
    out
}

/// Binder names introduced by a pattern like `x`, `mut x`, `(a, b)`,
/// `&(mut a, b)`.
pub(crate) fn binders(pat: &str) -> Vec<String> {
    idents(pat)
        .into_iter()
        .filter(|w| w != "mut" && w != "ref" && w != "_")
        .collect()
}

/// Collect the index-typed bindings of one `fn` span: `usize`
/// parameters, `for` binders over ranges / `.enumerate()`, and `let`s
/// whose initializer involves `.len()`, `as usize`, a `usize`
/// annotation, or an already-known index binding. Two rounds reach the
/// fixpoint for the chained-`let` depth seen in practice.
pub(crate) fn index_vars(lines: &[LineView], span: (usize, usize)) -> BTreeSet<String> {
    let mut vars: BTreeSet<String> = BTreeSet::new();
    for round in 0..2 {
        for l in &lines[span.0..=span.1] {
            let code = &l.code;
            if round == 0 {
                // `name: usize` / `name: &usize` parameter or binding types.
                let mut from = 0usize;
                while let Some(p) = code[from..].find("usize") {
                    let at = from + p;
                    from = at + "usize".len();
                    let before = code[..at].trim_end().trim_end_matches(['&', ' ']);
                    let Some(before) = before.strip_suffix(':') else {
                        continue;
                    };
                    if let Some(name) = idents(before).last() {
                        vars.insert(name.clone());
                    }
                }
                // `for <pat> in <iter>` over ranges / enumerate().
                for pos in lexer::word_positions(code, "for") {
                    let rest = &code[pos + 3..];
                    let Some(in_at) = lexer::word_positions(rest, "in").first().copied() else {
                        continue;
                    };
                    let pat = &rest[..in_at];
                    let iter = &rest[in_at + 2..];
                    let bs = binders(pat);
                    if iter.contains(".enumerate()") {
                        if let Some(first) = bs.first() {
                            vars.insert(first.clone());
                        }
                    } else if iter.contains("..") && !bs.is_empty() {
                        vars.insert(bs[0].clone());
                    }
                }
            }
            // `let <pat> = <rhs>` fed by index-ish expressions.
            for pos in lexer::word_positions(code, "let") {
                let rest = &code[pos + 3..];
                let Some(eq) = rest.find('=') else { continue };
                if rest.as_bytes().get(eq + 1) == Some(&b'=') {
                    continue;
                }
                let (pat, rhs) = (&rest[..eq], &rest[eq + 1..]);
                let indexy = rhs.contains(".len(")
                    || lexer::word_positions(rhs, "usize")
                        .iter()
                        .any(|&p| rhs[..p].trim_end().ends_with("as"))
                    || pat.contains("usize")
                    || idents(&strip_subscripts(rhs))
                        .iter()
                        .any(|w| vars.contains(w));
                if indexy {
                    for b in binders(pat.split(':').next().unwrap_or(pat)) {
                        vars.insert(b);
                    }
                }
            }
        }
    }
    vars
}

/// The expression text directly preceding an `as` keyword at byte
/// `as_pos` — walks back over one postfix chain, balancing `()`/`[]`.
pub(crate) fn operand_before(code: &str, as_pos: usize) -> String {
    let bytes = code.as_bytes();
    let mut end = as_pos;
    while end > 0 && bytes[end - 1].is_ascii_whitespace() {
        end -= 1;
    }
    let mut j = end;
    loop {
        if j == 0 {
            break;
        }
        let c = bytes[j - 1] as char;
        if c == ')' || c == ']' {
            match balance_back(bytes, j - 1) {
                Some(open) => j = open,
                None => break,
            }
        } else if lexer::is_ident_char(c) || c == '.' || c == ':' {
            j -= 1;
        } else {
            break;
        }
    }
    code[j..end].trim().to_string()
}

pub(crate) fn balance_back(bytes: &[u8], close: usize) -> Option<usize> {
    let (open_c, close_c) = match bytes[close] {
        b')' => (b'(', b')'),
        b']' => (b'[', b']'),
        _ => return None,
    };
    let mut depth = 0i64;
    let mut j = close + 1;
    while j > 0 {
        j -= 1;
        if bytes[j] == close_c {
            depth += 1;
        } else if bytes[j] == open_c {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

fn check_casts(rel: &Path, lines: &[LineView], in_test: &[bool], out: &mut Vec<Diagnostic>) {
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    for span in fn_spans(lines) {
        let vars = index_vars(lines, span);
        for i in span.0..=span.1 {
            if in_test[i] || flagged.contains(&i) {
                continue;
            }
            let code = &lines[i].code;
            for pos in lexer::word_positions(code, "as") {
                let rest = code[pos + 2..].trim_start();
                let ty = rest
                    .chars()
                    .take_while(|&c| lexer::is_ident_char(c))
                    .collect::<String>();
                if !NARROW_TYPES.contains(&ty.as_str()) {
                    continue;
                }
                let operand = operand_before(code, pos);
                // Parenthesized comparisons are bools: `(a == b) as u8`
                // never truncates regardless of what it compares.
                if ["==", "!=", "<=", ">=", "&&", "||"]
                    .iter()
                    .any(|op| operand.contains(op))
                {
                    continue;
                }
                let rooted = strip_subscripts(&operand);
                let index_flow =
                    operand.contains(".len(") || idents(&rooted).iter().any(|w| vars.contains(w));
                if !index_flow || annotation_covers(lines, i, "cast-ok") {
                    continue;
                }
                flagged.insert(i);
                out.push(Diagnostic {
                    file: rel.to_path_buf(),
                    line: i + 1,
                    rule: RULE_CAST_TRUNCATION,
                    message: format!(
                        "truncating cast `{operand} as {ty}` on index arithmetic in a \
                         hot-path file; use try_from at a construction boundary or vet \
                         with `// AUDIT(cast-ok): <why>`"
                    ),
                });
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// unsafe-indexing.
// ---------------------------------------------------------------------------

/// Per-line, per-byte mask of code inside `unsafe { … }` blocks
/// (`unsafe fn`/`unsafe impl`/`unsafe trait` headers do not count).
fn unsafe_masks(lines: &[LineView]) -> Vec<Vec<bool>> {
    let mut mask: Vec<Vec<bool>> = lines.iter().map(|l| vec![false; l.code.len()]).collect();
    for i in 0..lines.len() {
        for pos in lexer::word_positions(&lines[i].code, "unsafe") {
            // Find the next non-whitespace token; skip declarations.
            let (mut li, mut ci) = (i, pos + "unsafe".len());
            let mut opener: Option<(usize, usize)> = None;
            'find: while li < lines.len() {
                let bytes = lines[li].code.as_bytes();
                while ci < bytes.len() {
                    let c = bytes[ci] as char;
                    if c == '{' {
                        opener = Some((li, ci));
                        break 'find;
                    }
                    if !c.is_ascii_whitespace() {
                        break 'find; // `unsafe fn` / `unsafe impl` / …
                    }
                    ci += 1;
                }
                li += 1;
                ci = 0;
            }
            let Some((oli, oci)) = opener else { continue };
            let mut depth = 0i64;
            let (mut li, mut ci) = (oli, oci);
            'mark: while li < lines.len() {
                let len = lines[li].code.len();
                let bytes = lines[li].code.as_bytes();
                while ci < len {
                    match bytes[ci] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                break 'mark;
                            }
                        }
                        _ => {
                            if depth > 0 {
                                mask[li][ci] = true;
                            }
                        }
                    }
                    ci += 1;
                }
                li += 1;
                ci = 0;
            }
        }
    }
    mask
}

/// Byte offsets of `container[index]` subscripts with a non-literal
/// index on one line (array literals, attributes, and types don't
/// match: their `[` is not preceded by an identifier or `)`/`]`).
pub(crate) fn subscript_positions(code: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        let mut k = i;
        while k > 0 && bytes[k - 1].is_ascii_whitespace() {
            k -= 1;
        }
        if k == 0 {
            continue;
        }
        let prev = bytes[k - 1] as char;
        if !(lexer::is_ident_char(prev) || prev == ')' || prev == ']') {
            continue;
        }
        // `*const [T; W]`, `&mut [T]`, `dyn [..]`: the word before the
        // bracket is a keyword, so this is a type or pattern position.
        if lexer::is_ident_char(prev) {
            let mut w = k;
            while w > 0 && lexer::is_ident_char(bytes[w - 1] as char) {
                w -= 1;
            }
            let word = &code[w..k];
            if matches!(
                word,
                "const" | "mut" | "dyn" | "in" | "as" | "return" | "else" | "match" | "impl"
            ) {
                continue;
            }
        }
        // `vec![`, `matches!(…)[…]` — macro bang just before the ident
        // chain is fine to keep: macros returning slices are indexed too.
        let mut depth = 0usize;
        let mut inner = String::new();
        for &c in &bytes[i..] {
            match c {
                b'[' => {
                    depth += 1;
                    if depth > 1 {
                        inner.push('[');
                    }
                }
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                    inner.push(']');
                }
                c => inner.push(c as char),
            }
        }
        if idents(&inner).is_empty() {
            continue; // literal or empty subscript: `x[0]`, `x[..]`
        }
        out.push(i);
    }
    out
}

fn check_unsafe_indexing(
    rel: &Path,
    lines: &[LineView],
    in_test: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    let mask = unsafe_masks(lines);
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    // Inside unsafe blocks.
    for (i, l) in lines.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        for pos in subscript_positions(&l.code) {
            if !mask[i][pos] {
                continue;
            }
            if annotation_covers(lines, i, "index-ok") || !flagged.insert(i) {
                break;
            }
            out.push(Diagnostic {
                file: rel.to_path_buf(),
                line: i + 1,
                rule: RULE_UNSAFE_INDEXING,
                message: "checked slice indexing inside an unsafe block; hoist the \
                          bound outside, use get_unchecked under the block's SAFETY \
                          argument, or vet with `// AUDIT(index-ok): <why>`"
                    .to_string(),
            });
            break;
        }
    }
    // Feeding unsafe blocks: `let x = a[i]; … unsafe { … x … }`.
    for span in fn_spans(lines) {
        for i in span.0..=span.1 {
            if in_test[i] || flagged.contains(&i) {
                continue;
            }
            let code = &lines[i].code;
            let Some(let_pos) = lexer::word_positions(code, "let").first().copied() else {
                continue;
            };
            let rest = &code[let_pos + 3..];
            let Some(eq) = rest.find('=') else { continue };
            let (pat, rhs) = (&rest[..eq], &rest[eq + 1..]);
            if subscript_positions(rhs).is_empty() {
                continue;
            }
            let names = binders(pat.split(':').next().unwrap_or(pat));
            let feeds = names.iter().any(|n| {
                (i..=span.1).any(|j| {
                    lexer::word_positions(&lines[j].code, n)
                        .iter()
                        .any(|&p| mask[j].get(p).copied().unwrap_or(false))
                })
            });
            if !feeds || annotation_covers(lines, i, "index-ok") {
                continue;
            }
            flagged.insert(i);
            out.push(Diagnostic {
                file: rel.to_path_buf(),
                line: i + 1,
                rule: RULE_UNSAFE_INDEXING,
                message: format!(
                    "slice indexing feeds the unsafe block below (binding `{}`); \
                     validate the bound where it is computed or vet with \
                     `// AUDIT(index-ok): <why>`",
                    names.join(", ")
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------------

/// Audit one source file. `declared_features` is the `[features]` key
/// set of the crate that owns `rel`.
pub fn audit_source(
    rel: &Path,
    source: &str,
    declared_features: &BTreeSet<String>,
) -> Vec<Diagnostic> {
    let lines = lexer::analyze(source);
    let in_test = test_regions(&lines);
    let mut out = Vec::new();
    check_annotation_syntax(rel, &lines, &mut out);
    check_cfg_features(rel, &lines, &in_test, declared_features, &mut out);
    if hot_path_reachable(rel) {
        check_casts(rel, &lines, &in_test, &mut out);
    }
    check_unsafe_indexing(rel, &lines, &in_test, &mut out);
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out.dedup_by(|a, b| (a.line, a.rule) == (b.line, b.rule));
    out
}

/// Audit the whole workspace under `root`: every crate manifest (the
/// layering DAG) and every `.rs` file under `crates/*/src` and the
/// umbrella `src/` (casts, unsafe indexing, cfg flags, annotations).
pub fn audit_root(root: &Path) -> Result<Report, String> {
    let mut report = Report::default();
    let mut metas: Vec<CrateMeta> = Vec::new();
    let mut src_dirs: Vec<(PathBuf, usize)> = Vec::new(); // (dir, meta index)

    let mut manifest_dirs = vec![root.to_path_buf()];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut subdirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("read {}: {e}", crates_dir.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        subdirs.sort();
        manifest_dirs.extend(subdirs);
    }
    for dir in manifest_dirs {
        let manifest = dir.join("Cargo.toml");
        if !manifest.is_file() {
            continue;
        }
        let src = std::fs::read_to_string(&manifest)
            .map_err(|e| format!("read {}: {e}", manifest.display()))?;
        let rel = manifest
            .strip_prefix(root)
            .unwrap_or(&manifest)
            .to_path_buf();
        let meta = parse_manifest(&rel, &src);
        report.files_scanned += 1;
        report.lines_scanned += meta.manifest_lines;
        let src_dir = dir.join("src");
        if src_dir.is_dir() {
            src_dirs.push((src_dir, metas.len()));
        }
        metas.push(meta);
    }
    if metas.is_empty() {
        return Err(format!(
            "no Cargo.toml manifests under {} (expected crates/*/ or the workspace root)",
            root.display()
        ));
    }
    check_layering(&metas, &mut report.diagnostics);

    for (src_dir, mi) in src_dirs {
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for path in files {
            let source = std::fs::read_to_string(&path)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            report.files_scanned += 1;
            report.lines_scanned += source.lines().count();
            report
                .diagnostics
                .extend(audit_source(&rel, &source, &metas[mi].features));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(src: &str, features: &[&str]) -> Vec<Diagnostic> {
        let declared = features.iter().map(|s| s.to_string()).collect();
        audit_source(Path::new("crates/core/src/kernels.rs"), src, &declared)
    }

    fn rules(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn index_cast_in_hot_file_is_flagged() {
        let src = "fn f(xs: &[f64]) -> u32 {\n    let n = xs.len();\n    n as u32\n}\n";
        let d = audit(src, &[]);
        assert_eq!(rules(&d), vec![RULE_CAST_TRUNCATION]);
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("n as u32"));
    }

    #[test]
    fn loop_binder_cast_is_flagged_and_annotation_suppresses() {
        let flagged =
            "fn f(k: usize) {\n    for i in 0..k {\n        let _ = i as u32;\n    }\n}\n";
        assert_eq!(rules(&audit(flagged, &[])), vec![RULE_CAST_TRUNCATION]);
        let vetted = "fn f(k: usize) {\n    for i in 0..k {\n        // AUDIT(cast-ok): k is bounded by the u16 VxG count upstream.\n        let _ = i as u32;\n    }\n}\n";
        assert!(audit(vetted, &[]).is_empty());
    }

    #[test]
    fn widening_and_non_index_casts_pass() {
        // u8 loads widened to u32, and a non-index bitmask narrowed.
        let src = "fn f(masks: &[u8], mi: usize, bits: u64) -> u32 {\n    let m = masks[mi] as u32;\n    let _ = bits as f64;\n    m\n}\n";
        assert!(audit(src, &[]).is_empty());
    }

    #[test]
    fn cast_outside_hot_files_passes() {
        let declared = BTreeSet::new();
        let src = "fn f(xs: &[f64]) -> u32 {\n    xs.len() as u32\n}\n";
        let d = audit_source(Path::new("crates/core/src/builder.rs"), src, &declared);
        assert!(d.is_empty());
    }

    #[test]
    fn indexing_inside_unsafe_is_flagged() {
        let src = "fn f(xs: &[f64], i: usize) -> f64 {\n    unsafe {\n        xs[i]\n    }\n}\n";
        let d = audit(src, &[]);
        assert_eq!(rules(&d), vec![RULE_UNSAFE_INDEXING]);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn literal_subscript_and_unsafe_fn_pass() {
        let src = "unsafe fn g(xs: &[f64]) -> f64 {\n    xs[0]\n}\n";
        assert!(audit(src, &[]).is_empty());
    }

    #[test]
    fn indexing_feeding_unsafe_is_flagged() {
        let src = "fn f(xs: &[f64], off: &[usize], p: *mut f64) {\n    let q = off[1usize + 2];\n    let v = xs[q];\n    unsafe {\n        *p = v;\n    }\n}\n";
        let d = audit(src, &[]);
        assert!(rules(&d).contains(&RULE_UNSAFE_INDEXING));
        assert!(d
            .iter()
            .any(|d| d.message.contains("feeds the unsafe block")));
    }

    #[test]
    fn undeclared_cfg_feature_is_flagged_and_declared_passes() {
        let src = "#[cfg(feature = \"mystery\")]\nfn f() {}\n";
        let d = audit(src, &["trace"]);
        assert_eq!(rules(&d), vec![RULE_CFG_UNDECLARED]);
        assert!(audit(src, &["mystery"]).is_empty());
    }

    #[test]
    fn target_feature_is_not_a_cargo_feature() {
        let src = "#[cfg(target_feature = \"avx512f\")]\nfn f() {}\n";
        assert!(audit(src, &[]).is_empty());
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(xs: &[f64]) -> u32 {\n        let n = xs.len();\n        unsafe { xs[n] };\n        n as u32\n    }\n}\n";
        assert!(audit(src, &["test"]).is_empty());
    }

    #[test]
    fn malformed_annotations_are_flagged() {
        let empty_reason = "// AUDIT(cast-ok):\nfn f() {}\n";
        assert_eq!(rules(&audit(empty_reason, &[])), vec![RULE_BAD_ANNOTATION]);
        let unknown_key = "// AUDIT(lgtm): trust me\nfn f() {}\n";
        let d = audit(unknown_key, &[]);
        assert_eq!(rules(&d), vec![RULE_BAD_ANNOTATION]);
        assert!(d[0].message.contains("unknown AUDIT key"));
    }

    #[test]
    fn manifest_parse_reads_name_features_and_internal_deps() {
        let toml = "[package]\nname = \"cscv-core\"\n\n[dependencies]\ncscv-trace.workspace = true\ncscv-sparse = { path = \"../sparse\" }\n\n[dev-dependencies]\ncscv-ct.workspace = true\n\n[features]\ntrace = [\"cscv-trace/trace\"]\ncheck-invariants = []\n";
        let m = parse_manifest(Path::new("crates/core/Cargo.toml"), toml);
        assert_eq!(m.name, "cscv-core");
        assert_eq!(
            m.features.iter().cloned().collect::<Vec<_>>(),
            vec!["check-invariants".to_string(), "trace".to_string()]
        );
        // Dev edge (cscv-ct) is exempt from the DAG by design.
        assert_eq!(
            m.deps.iter().map(|(_, d)| d.as_str()).collect::<Vec<_>>(),
            vec!["cscv-trace", "cscv-sparse"]
        );
    }

    #[test]
    fn layering_violation_is_flagged_with_manifest_line() {
        let toml = "[package]\nname = \"cscv-sparse\"\n[dependencies]\ncscv-trace.workspace = true\ncscv-core.workspace = true\n";
        let m = parse_manifest(Path::new("crates/sparse/Cargo.toml"), toml);
        let mut out = Vec::new();
        check_layering(&[m], &mut out);
        assert_eq!(rules(&out), vec![RULE_LAYERING]);
        assert_eq!(out[0].line, 5);
        assert!(out[0].message.contains("`cscv-sparse` → `cscv-core`"));
    }

    #[test]
    fn unknown_crate_is_a_layering_violation() {
        let toml = "[package]\nname = \"cscv-rogue\"\n";
        let m = parse_manifest(Path::new("crates/rogue/Cargo.toml"), toml);
        let mut out = Vec::new();
        check_layering(&[m], &mut out);
        assert_eq!(rules(&out), vec![RULE_LAYERING]);
    }

    #[test]
    fn dag_matches_workspace_reality() {
        // Every crate in the DAG lists only crates that are themselves
        // in the DAG, and the table is acyclic by construction (each
        // entry's deps appear earlier).
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for (name, deps) in LAYERING_DAG {
            for d in *deps {
                assert!(seen.contains(d), "{name} depends on later/unknown {d}");
            }
            seen.insert(name);
        }
    }
}
