//! `perf-report`: turn a directory of benchmark manifests (and,
//! optionally, NDJSON traces) into a roofline-attributed performance
//! report, or diff two such directories with noise-aware comparison.
//!
//! Input layout (what `run_experiments.sh` produces):
//!
//! ```text
//! bench_results/smoke/
//!   manifests/*.ndjson   # measurement records (schema v1 or v2)
//!   trace/*.ndjson       # optional cscv-trace dumps (CSCV_TRACE_OUT)
//! ```
//!
//! Passing either the run directory or its `manifests/` subdirectory
//! works. Each `spmv`/`spmm` record is aggregated under the key
//! `driver/name/tN/kN` (the same key the CI perf-smoke gate uses); the
//! representative record per key is the one with the best GFLOP/s, and
//! per-rep `samples` arrays are pooled across records. Schema-v1 lines
//! (no `samples`) degrade to a single-sample distribution at
//! `secs_min`.
//!
//! The roofline section joins each kernel with a bandwidth ceiling,
//! resolved in order: an explicit `--peak-gbs` flag, the best `membw`
//! record found in the manifests, else the maximum observed effective
//! bandwidth as a proxy (clearly labeled — attained bandwidth can only
//! under-estimate the roof, so classifications stay conservative).
//!
//! Diffing compares the best (minimum) per-rep time per key — min-of-
//! reps is immune to scheduler noise in a way means are not — and only
//! flags a regression when the slowdown exceeds the relative threshold.

use cscv_harness::roofline::{self, RooflinePoint};
use cscv_harness::{summarize_samples, LatencySummary};
use cscv_trace::json::Json;
use cscv_trace::{export, hist::Histogram};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One kernel (`driver/name/tN/kN`) aggregated across its records.
#[derive(Debug, Clone)]
pub struct KernelAgg {
    pub driver: String,
    pub name: String,
    pub threads: u64,
    pub k: u64,
    /// Best (minimum) `secs_min` across records.
    pub secs_min: f64,
    /// Best GFLOP/s across records.
    pub gflops: f64,
    /// Model bytes (`M_Rit(k)`) of the best-GFLOP/s record.
    pub mem_bytes: f64,
    /// Best effective bandwidth across records (GB/s).
    pub eff_bw_gbs: f64,
    /// Per-rep samples pooled across records (seconds, v1 ⇒ one per
    /// record at `secs_min`).
    pub samples: Vec<f64>,
}

impl KernelAgg {
    /// The aggregation key, matching the CI perf-smoke gate.
    pub fn key(&self) -> String {
        format!(
            "{}/{}/t{}/k{}",
            self.driver, self.name, self.threads, self.k
        )
    }

    /// Best per-rep time: the noise-robust comparison metric.
    pub fn best_secs(&self) -> f64 {
        self.samples.iter().copied().fold(self.secs_min, f64::min)
    }

    /// Useful flops of one run, recovered from the recorded rate.
    pub fn flops(&self) -> f64 {
        self.gflops * 1e9 * self.secs_min
    }

    pub fn latency(&self) -> LatencySummary {
        summarize_samples(&self.samples)
    }
}

/// A parsed manifest directory.
#[derive(Debug, Clone)]
pub struct LoadedDir {
    pub dir: PathBuf,
    /// Sorted by key.
    pub kernels: Vec<KernelAgg>,
    /// Best read-bandwidth ceiling from `membw` records, if any.
    pub membw_read_gbs: Option<f64>,
    pub n_records: usize,
    /// Records without a `samples` array (schema v1).
    pub n_v1: usize,
    /// Unparseable or typeless lines skipped.
    pub n_skipped: usize,
}

/// Where the bandwidth ceiling came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeakSource {
    Flag,
    Membw,
    /// Max observed effective bandwidth (no ceiling on record).
    Proxy,
}

impl PeakSource {
    pub fn label(self) -> &'static str {
        match self {
            PeakSource::Flag => "--peak-gbs flag",
            PeakSource::Membw => "membw manifest record",
            PeakSource::Proxy => "max observed eff-bw (proxy ceiling)",
        }
    }
}

/// One row of the roofline report.
#[derive(Debug, Clone)]
pub struct ReportRow {
    pub agg: KernelAgg,
    pub lat: LatencySummary,
    pub point: RooflinePoint,
}

/// The assembled report.
#[derive(Debug, Clone)]
pub struct Report {
    pub rows: Vec<ReportRow>,
    pub peak_gbs: f64,
    pub peak_source: PeakSource,
}

/// Resolve the manifests directory: accept either the run dir (with a
/// `manifests/` subdir) or the manifests dir itself.
fn manifests_dir(dir: &Path) -> PathBuf {
    let sub = dir.join("manifests");
    if sub.is_dir() {
        sub
    } else {
        dir.to_path_buf()
    }
}

/// Parse every `*.ndjson` manifest under `dir` and aggregate by key.
pub fn load_dir(dir: &Path) -> Result<LoadedDir, String> {
    let mdir = manifests_dir(dir);
    if !mdir.is_dir() {
        return Err(format!("{}: not a directory", mdir.display()));
    }
    let mut files: Vec<PathBuf> = std::fs::read_dir(&mdir)
        .map_err(|e| format!("{}: {e}", mdir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ndjson"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("{}: no .ndjson manifests", mdir.display()));
    }

    let mut by_key: BTreeMap<String, KernelAgg> = BTreeMap::new();
    let mut membw: Option<f64> = None;
    let (mut n_records, mut n_v1, mut n_skipped) = (0usize, 0usize, 0usize);
    for path in &files {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let Ok(v) = Json::parse(line) else {
                n_skipped += 1;
                continue;
            };
            let num = |k: &str| v.get(k).and_then(Json::as_f64);
            match v.get("type").and_then(Json::as_str) {
                Some("membw") => {
                    n_records += 1;
                    if let Some(r) = num("read_gbs") {
                        membw = Some(membw.map_or(r, |m: f64| m.max(r)));
                    }
                }
                Some("spmv") | Some("spmm") => {
                    n_records += 1;
                    let (Some(name), Some(secs_min), Some(gflops)) = (
                        v.get("name").and_then(Json::as_str),
                        num("secs_min"),
                        num("gflops"),
                    ) else {
                        n_skipped += 1;
                        continue;
                    };
                    let driver = v
                        .get("driver")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown")
                        .to_string();
                    let threads = num("threads").unwrap_or(1.0) as u64;
                    let k = num("k").unwrap_or(1.0) as u64;
                    let samples: Vec<f64> = match v.get("samples").and_then(Json::as_arr) {
                        Some(arr) => arr.iter().filter_map(Json::as_f64).collect(),
                        None => {
                            n_v1 += 1;
                            vec![secs_min]
                        }
                    };
                    let rec = KernelAgg {
                        driver,
                        name: name.to_string(),
                        threads,
                        k,
                        secs_min,
                        gflops,
                        mem_bytes: num("mem_bytes").unwrap_or(0.0),
                        eff_bw_gbs: num("eff_bw_gbs").unwrap_or(0.0),
                        samples,
                    };
                    match by_key.entry(rec.key()) {
                        std::collections::btree_map::Entry::Vacant(e) => {
                            e.insert(rec);
                        }
                        std::collections::btree_map::Entry::Occupied(mut e) => {
                            let agg = e.get_mut();
                            agg.samples.extend_from_slice(&rec.samples);
                            agg.secs_min = agg.secs_min.min(rec.secs_min);
                            agg.eff_bw_gbs = agg.eff_bw_gbs.max(rec.eff_bw_gbs);
                            if rec.gflops > agg.gflops {
                                agg.gflops = rec.gflops;
                                agg.mem_bytes = rec.mem_bytes;
                            }
                        }
                    }
                }
                _ => n_skipped += 1,
            }
        }
    }
    Ok(LoadedDir {
        dir: dir.to_path_buf(),
        kernels: by_key.into_values().collect(),
        membw_read_gbs: membw,
        n_records,
        n_v1,
        n_skipped,
    })
}

/// Pick the bandwidth ceiling: flag > membw record > observed proxy.
pub fn resolve_peak(loaded: &LoadedDir, flag: Option<f64>) -> Result<(f64, PeakSource), String> {
    if let Some(p) = flag {
        if p <= 0.0 {
            return Err(format!("--peak-gbs must be positive, got {p}"));
        }
        return Ok((p, PeakSource::Flag));
    }
    if let Some(p) = loaded.membw_read_gbs.filter(|p| *p > 0.0) {
        return Ok((p, PeakSource::Membw));
    }
    let proxy = loaded
        .kernels
        .iter()
        .map(|k| k.eff_bw_gbs)
        .fold(0.0f64, f64::max);
    if proxy > 0.0 {
        Ok((proxy, PeakSource::Proxy))
    } else {
        Err("no bandwidth ceiling: no membw record, no eff_bw_gbs, and no --peak-gbs".into())
    }
}

/// Build the full roofline report for one directory.
pub fn build_report(loaded: &LoadedDir, peak_flag: Option<f64>) -> Result<Report, String> {
    let (peak_gbs, peak_source) = resolve_peak(loaded, peak_flag)?;
    let rows = loaded
        .kernels
        .iter()
        .map(|agg| ReportRow {
            lat: agg.latency(),
            point: roofline::classify(agg.flops(), agg.mem_bytes, agg.secs_min, peak_gbs),
            agg: agg.clone(),
        })
        .collect();
    Ok(Report {
        rows,
        peak_gbs,
        peak_source,
    })
}

fn fmt_ms(secs: f64) -> String {
    format!("{:.3}", secs * 1e3)
}

/// Render the human table.
pub fn render_table(loaded: &LoadedDir, report: &Report) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== perf-report: {} ==\n{} kernels from {} records ({} v1, {} skipped)\nceiling: {:.2} GB/s [{}]\n",
        loaded.dir.display(),
        report.rows.len(),
        loaded.n_records,
        loaded.n_v1,
        loaded.n_skipped,
        report.peak_gbs,
        report.peak_source.label(),
    );
    let mut rows: Vec<[String; 9]> = vec![[
        "kernel".into(),
        "gflops".into(),
        "gbs".into(),
        "ai".into(),
        "roof".into(),
        "frac".into(),
        "p50-ms".into(),
        "p99-ms".into(),
        "bound".into(),
    ]];
    for r in &report.rows {
        rows.push([
            r.agg.key(),
            format!("{:.3}", r.point.gflops),
            format!("{:.2}", r.point.gbs),
            format!("{:.3}", r.point.ai),
            format!("{:.3}", r.point.roof_gflops),
            format!("{:.2}", r.point.frac_of_roof),
            fmt_ms(r.lat.p50),
            fmt_ms(r.lat.p99),
            r.point.bound.label().into(),
        ]);
    }
    let widths: Vec<usize> = (0..9)
        .map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0))
        .collect();
    for row in &rows {
        let mut line = String::new();
        for (c, cell) in row.iter().enumerate() {
            if c > 0 {
                line.push_str("  ");
            }
            if c == 0 {
                let _ = write!(line, "{:<w$}", cell, w = widths[c]);
            } else {
                let _ = write!(line, "{:>w$}", cell, w = widths[c]);
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Render the report as NDJSON lines (one `roofline` object per row,
/// preceded by a `report` header line).
pub fn render_ndjson(loaded: &LoadedDir, report: &Report) -> String {
    let mut out = String::new();
    let header = Json::obj(vec![
        ("type", Json::from("report")),
        ("dir", Json::from(loaded.dir.display().to_string().as_str())),
        ("kernels", Json::from(report.rows.len())),
        ("records", Json::from(loaded.n_records)),
        ("peak_gbs", Json::from(report.peak_gbs)),
        ("peak_source", Json::from(report.peak_source.label())),
    ]);
    let _ = writeln!(out, "{}", header.to_string());
    for r in &report.rows {
        let j = Json::obj(vec![
            ("type", Json::from("roofline")),
            ("key", Json::from(r.agg.key().as_str())),
            ("driver", Json::from(r.agg.driver.as_str())),
            ("name", Json::from(r.agg.name.as_str())),
            ("threads", Json::from(r.agg.threads)),
            ("k", Json::from(r.agg.k)),
            ("secs_min", Json::from(r.agg.secs_min)),
            ("gflops", Json::from(r.point.gflops)),
            ("gbs", Json::from(r.point.gbs)),
            ("ai", Json::from(r.point.ai)),
            ("roof_gflops", Json::from(r.point.roof_gflops)),
            ("frac_of_roof", Json::from(r.point.frac_of_roof)),
            ("bound", Json::from(r.point.bound.label())),
            ("secs_p50", Json::from(r.lat.p50)),
            ("secs_p90", Json::from(r.lat.p90)),
            ("secs_p99", Json::from(r.lat.p99)),
            ("secs_max", Json::from(r.lat.max)),
            ("n_samples", Json::from(r.agg.samples.len())),
        ]);
        let _ = writeln!(out, "{}", j.to_string());
    }
    out
}

/// Summed counters of one trace file.
#[derive(Debug, Clone)]
pub struct TraceCounters {
    pub file: String,
    pub counters: BTreeMap<String, f64>,
}

impl TraceCounters {
    fn get(&self, k: &str) -> f64 {
        self.counters.get(k).copied().unwrap_or(0.0)
    }
}

/// Load the `counters` lines of every trace under `<dir>/trace/`.
/// Missing directory is fine (empty result) — traces are optional.
pub fn load_trace_counters(dir: &Path) -> Result<Vec<TraceCounters>, String> {
    let tdir = dir.join("trace");
    if !tdir.is_dir() {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    let mut files: Vec<PathBuf> = std::fs::read_dir(&tdir)
        .map_err(|e| format!("{}: {e}", tdir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ndjson"))
        .collect();
    files.sort();
    for path in files {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut counters: BTreeMap<String, f64> = BTreeMap::new();
        for line in text.lines() {
            let Ok(v) = Json::parse(line) else { continue };
            if v.get("type").and_then(Json::as_str) != Some("counters") {
                continue;
            }
            for (k, val) in v.as_obj().unwrap_or(&[]) {
                if k != "type" {
                    if let Some(n) = val.as_f64() {
                        *counters.entry(k.clone()).or_insert(0.0) += n;
                    }
                }
            }
        }
        if !counters.is_empty() {
            out.push(TraceCounters {
                file: path
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_default(),
                counters,
            });
        }
    }
    Ok(out)
}

/// Render the trace-counter join: the *model's* arithmetic intensity and
/// vectorization quality per traced driver, next to the measured rows.
pub fn render_trace_section(traces: &[TraceCounters]) -> String {
    if traces.is_empty() {
        return String::new();
    }
    let mut out = String::from("\n== traced counters ==\n");
    for t in traces {
        let flops = t.get("useful_flops");
        let bytes = t.get("bytes_loaded") + t.get("bytes_stored");
        let lanes = t.get("fma_lanes");
        let padding = t.get("padding_lanes");
        let model_ai = if bytes > 0.0 { flops / bytes } else { 0.0 };
        let pad_frac = if lanes > 0.0 { padding / lanes } else { 0.0 };
        let _ = writeln!(
            out,
            "{}: model-ai {:.3} flop/B, padding {:.1}% of lanes, mask-expands {}, solver-iters {}",
            t.file,
            model_ai,
            pad_frac * 100.0,
            t.get("mask_expands") as u64,
            t.get("solver_iters") as u64,
        );
        // Shard-cluster counters (published once per cluster shutdown by
        // the coordinator); only rendered when the trace has any.
        let shard_traffic = t.get("shard_bytes_tx") + t.get("shard_bytes_rx");
        if shard_traffic > 0.0 {
            let _ = writeln!(
                out,
                "{}: shard tx {} B, rx {} B, reduce {:.3} ms, worker-busy {:.3} ms, \
                 telemetry {} frame(s) / {} B",
                t.file,
                t.get("shard_bytes_tx") as u64,
                t.get("shard_bytes_rx") as u64,
                t.get("shard_reduce_ns") / 1e6,
                t.get("shard_worker_busy_ns") / 1e6,
                t.get("shard_trace_frames") as u64,
                t.get("shard_trace_bytes") as u64,
            );
        }
    }
    out
}

/// One per-worker health row (`type: "telemetry"` NDJSON, written by
/// `cscv-xtask shard --telemetry`).
#[derive(Debug, Clone, Default)]
pub struct TelemetryRow {
    pub file: String,
    pub solver: String,
    pub workers: u64,
    pub shard: u64,
    pub pid: u64,
    pub requests: u64,
    pub bytes_tx: u64,
    pub bytes_rx: u64,
    pub busy_ns: u64,
    pub spmv_calls: u64,
    pub spmv_t_calls: u64,
    pub trace_frames: u64,
    pub last_seen_ns: u64,
    pub clock_offset_ns: f64,
    pub degraded: bool,
}

/// Load per-worker telemetry rows from every NDJSON file under
/// `<dir>/trace/` and `<dir>/telemetry/`. Both directories are optional
/// — result is empty when neither exists or no file carries telemetry.
pub fn load_telemetry(dir: &Path) -> Result<Vec<TelemetryRow>, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    for sub in ["trace", "telemetry"] {
        let d = dir.join(sub);
        if !d.is_dir() {
            continue;
        }
        files.extend(
            std::fs::read_dir(&d)
                .map_err(|e| format!("{}: {e}", d.display()))?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "ndjson")),
        );
    }
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let file = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        for line in text.lines() {
            let Ok(v) = Json::parse(line) else { continue };
            if v.get("type").and_then(Json::as_str) != Some("telemetry") {
                continue;
            }
            let num = |k: &str| v.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            out.push(TelemetryRow {
                file: file.clone(),
                solver: v
                    .get("solver")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
                workers: num("workers") as u64,
                shard: num("shard") as u64,
                pid: num("pid") as u64,
                requests: num("requests") as u64,
                bytes_tx: num("bytes_tx") as u64,
                bytes_rx: num("bytes_rx") as u64,
                busy_ns: num("busy_ns") as u64,
                spmv_calls: num("spmv_calls") as u64,
                spmv_t_calls: num("spmv_t_calls") as u64,
                trace_frames: num("trace_frames") as u64,
                last_seen_ns: num("last_seen_ns") as u64,
                clock_offset_ns: num("clock_offset_ns"),
                degraded: v.get("degraded") == Some(&Json::Bool(true)),
            });
        }
    }
    Ok(out)
}

/// Render the per-worker telemetry join: one row per (run, shard) with
/// the coordinator-observed traffic and the worker's streamed counters.
pub fn render_telemetry_section(rows: &[TelemetryRow]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let mut out = String::from("\n== worker telemetry ==\n");
    let _ = writeln!(
        out,
        "{:<18} {:<10} {:>7} {:>5} {:>7} {:>4} {:>10} {:>10} {:>9} {:>5} {:>6} {:>7} {:>10} {:>8}",
        "file",
        "solver",
        "workers",
        "shard",
        "pid",
        "reqs",
        "tx-bytes",
        "rx-bytes",
        "busy-ms",
        "spmv",
        "spmv_t",
        "frames",
        "offset-us",
        "state"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<18} {:<10} {:>7} {:>5} {:>7} {:>4} {:>10} {:>10} {:>9.3} {:>5} {:>6} {:>7} {:>10.1} {:>8}",
            r.file,
            r.solver,
            r.workers,
            r.shard,
            r.pid,
            r.requests,
            r.bytes_tx,
            r.bytes_rx,
            r.busy_ns as f64 / 1e6,
            r.spmv_calls,
            r.spmv_t_calls,
            r.trace_frames,
            r.clock_offset_ns / 1e3,
            if r.degraded { "DEGRADED" } else { "ok" },
        );
    }
    out
}

/// A/B comparison of summed trace counters (informational — never gates
/// the diff's exit code): every counter present on either side, with the
/// B/A ratio when both sides are nonzero.
pub fn render_trace_diff(a: &[TraceCounters], b: &[TraceCounters]) -> String {
    let sum = |ts: &[TraceCounters]| {
        let mut m: BTreeMap<String, f64> = BTreeMap::new();
        for t in ts {
            for (k, v) in &t.counters {
                *m.entry(k.clone()).or_insert(0.0) += v;
            }
        }
        m
    };
    let (sa, sb) = (sum(a), sum(b));
    let keys: Vec<&String> = sa
        .keys()
        .chain(sb.keys())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    if keys.is_empty() {
        return String::new();
    }
    let mut out = String::from("\n== trace counters (A vs B) ==\n");
    let _ = writeln!(
        out,
        "{:<26} {:>16} {:>16} {:>8}",
        "counter", "A", "B", "B/A"
    );
    for k in keys {
        let (va, vb) = (
            sa.get(k).copied().unwrap_or(0.0),
            sb.get(k).copied().unwrap_or(0.0),
        );
        let ratio = if va > 0.0 {
            format!("{:.3}", vb / va)
        } else {
            "-".to_string()
        };
        let _ = writeln!(
            out,
            "{:<26} {:>16} {:>16} {:>8}",
            k, va as u64, vb as u64, ratio
        );
    }
    out
}

/// Convert every trace under `<dir>/trace/` into `<out>/<stem>.chrome.json`
/// (Perfetto-loadable) and `<out>/<stem>.collapsed` (flamegraph stacks).
/// Returns the written paths.
pub fn export_traces(dir: &Path, out_dir: &Path) -> Result<Vec<PathBuf>, String> {
    let tdir = dir.join("trace");
    if !tdir.is_dir() {
        return Err(format!("{}: no trace/ directory to export", dir.display()));
    }
    let mut files: Vec<PathBuf> = std::fs::read_dir(&tdir)
        .map_err(|e| format!("{}: {e}", tdir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ndjson"))
        .collect();
    files.sort();
    std::fs::create_dir_all(out_dir).map_err(|e| format!("{}: {e}", out_dir.display()))?;
    let mut written = Vec::new();
    for path in files {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let events = export::from_ndjson(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        if events.is_empty() {
            continue;
        }
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let chrome = out_dir.join(format!("{stem}.chrome.json"));
        std::fs::write(&chrome, export::chrome_trace(&events).to_string())
            .map_err(|e| format!("{}: {e}", chrome.display()))?;
        written.push(chrome);
        let collapsed = out_dir.join(format!("{stem}.collapsed"));
        std::fs::write(&collapsed, export::collapsed_stacks(&events))
            .map_err(|e| format!("{}: {e}", collapsed.display()))?;
        written.push(collapsed);
    }
    Ok(written)
}

/// Outcome of one key's A-vs-B comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffStatus {
    /// Slower in B beyond the threshold.
    Regression,
    /// Faster in B beyond the threshold.
    Improvement,
    /// Within the noise threshold.
    Same,
    /// Key only present in A.
    OnlyA,
    /// Key only present in B.
    OnlyB,
}

impl DiffStatus {
    pub fn label(self) -> &'static str {
        match self {
            DiffStatus::Regression => "REGRESSION",
            DiffStatus::Improvement => "improved",
            DiffStatus::Same => "ok",
            DiffStatus::OnlyA => "only-in-a",
            DiffStatus::OnlyB => "only-in-b",
        }
    }
}

/// One key's comparison.
#[derive(Debug, Clone)]
pub struct DiffRow {
    pub key: String,
    pub a_secs: Option<f64>,
    pub b_secs: Option<f64>,
    /// `(b - a) / a`; 0 when either side is missing.
    pub rel: f64,
    pub status: DiffStatus,
}

/// Noise-aware diff: best-of-reps per key, relative threshold.
pub fn diff(a: &LoadedDir, b: &LoadedDir, threshold: f64) -> Vec<DiffRow> {
    let amap: BTreeMap<String, f64> = a.kernels.iter().map(|k| (k.key(), k.best_secs())).collect();
    let bmap: BTreeMap<String, f64> = b.kernels.iter().map(|k| (k.key(), k.best_secs())).collect();
    let mut keys: Vec<&String> = amap.keys().chain(bmap.keys()).collect();
    keys.sort();
    keys.dedup();
    keys.into_iter()
        .map(|key| {
            let (av, bv) = (amap.get(key).copied(), bmap.get(key).copied());
            let (rel, status) = match (av, bv) {
                (Some(av), Some(bv)) if av > 0.0 => {
                    let rel = (bv - av) / av;
                    let status = if rel > threshold {
                        DiffStatus::Regression
                    } else if rel < -threshold {
                        DiffStatus::Improvement
                    } else {
                        DiffStatus::Same
                    };
                    (rel, status)
                }
                (Some(_), Some(_)) => (0.0, DiffStatus::Same),
                (Some(_), None) => (0.0, DiffStatus::OnlyA),
                (None, _) => (0.0, DiffStatus::OnlyB),
            };
            DiffRow {
                key: key.clone(),
                a_secs: av,
                b_secs: bv,
                rel,
                status,
            }
        })
        .collect()
}

pub fn has_regressions(rows: &[DiffRow]) -> bool {
    rows.iter().any(|r| r.status == DiffStatus::Regression)
}

/// Render the diff as a table (or summary distribution of deltas).
pub fn render_diff_table(a: &LoadedDir, b: &LoadedDir, rows: &[DiffRow], threshold: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== perf-diff: {} vs {} (threshold {:.1}%) ==",
        a.dir.display(),
        b.dir.display(),
        threshold * 100.0
    );
    let key_w = rows.iter().map(|r| r.key.len()).max().unwrap_or(3).max(3);
    let fmt_side = |v: Option<f64>| v.map_or("-".to_string(), fmt_ms);
    for r in rows {
        let _ = writeln!(
            out,
            "{:<key_w$}  {:>10}  {:>10}  {:>+7.1}%  {}",
            r.key,
            fmt_side(r.a_secs),
            fmt_side(r.b_secs),
            r.rel * 100.0,
            r.status.label(),
        );
    }
    // Distribution of relative deltas over the matched keys: one line
    // the CI log can eyeball for drift even when nothing trips.
    let deltas: Vec<f64> = rows
        .iter()
        .filter(|r| r.a_secs.is_some() && r.b_secs.is_some())
        .map(|r| r.rel.abs().max(1e-12))
        .collect();
    if !deltas.is_empty() {
        let h = Histogram::from_samples(&deltas);
        let _ = writeln!(
            out,
            "|delta| distribution: p50 {:+.1}% p90 {:+.1}% max {:+.1}% over {} keys",
            h.percentile(50.0) * 100.0,
            h.percentile(90.0) * 100.0,
            h.max() * 100.0,
            deltas.len()
        );
    }
    let n_reg = rows
        .iter()
        .filter(|r| r.status == DiffStatus::Regression)
        .count();
    let _ = writeln!(
        out,
        "perf-diff: {} — {} key(s), {} regression(s)",
        if n_reg == 0 { "OK" } else { "FAIL" },
        rows.len(),
        n_reg
    );
    out
}

/// Render the diff as NDJSON.
pub fn render_diff_ndjson(rows: &[DiffRow]) -> String {
    let mut out = String::new();
    for r in rows {
        let j = Json::obj(vec![
            ("type", Json::from("diff")),
            ("key", Json::from(r.key.as_str())),
            ("a_secs", r.a_secs.map_or(Json::Null, Json::Num)),
            ("b_secs", r.b_secs.map_or(Json::Null, Json::Num)),
            ("rel", Json::from(r.rel)),
            ("status", Json::from(r.status.label())),
        ]);
        let _ = writeln!(out, "{}", j.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    /// Fresh scratch dir per test (removed on drop).
    struct Scratch(PathBuf);
    impl Scratch {
        fn new(tag: &str) -> Scratch {
            let p = std::env::temp_dir().join(format!("cscv-perf-{}-{tag}", std::process::id()));
            let _ = std::fs::remove_dir_all(&p);
            std::fs::create_dir_all(&p).unwrap();
            Scratch(p)
        }
        fn write_manifest(&self, name: &str, lines: &[&str]) {
            let dir = self.0.join("manifests");
            std::fs::create_dir_all(&dir).unwrap();
            let mut f = std::fs::File::create(dir.join(name)).unwrap();
            for l in lines {
                writeln!(f, "{l}").unwrap();
            }
        }
    }
    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn spmv_line(name: &str, secs: f64, gflops: f64, samples: Option<&[f64]>) -> String {
        let mut rec = vec![
            ("type", Json::from("spmv")),
            ("driver", Json::from("bench")),
            ("name", Json::from(name)),
            ("threads", Json::from(1u64)),
            ("k", Json::from(1u64)),
            ("secs_min", Json::from(secs)),
            ("gflops", Json::from(gflops)),
            ("mem_bytes", Json::from(1000u64)),
            ("eff_bw_gbs", Json::from(2.0)),
        ];
        if let Some(s) = samples {
            rec.push(("schema", Json::from(2u64)));
            rec.push((
                "samples",
                Json::Arr(s.iter().map(|&x| Json::Num(x)).collect()),
            ));
        }
        Json::obj(rec).to_string()
    }

    #[test]
    fn v1_lines_degrade_to_single_sample() {
        let s = Scratch::new("v1");
        s.write_manifest("a.ndjson", &[&spmv_line("K", 0.01, 1.0, None)]);
        let loaded = load_dir(&s.0).unwrap();
        assert_eq!(loaded.n_v1, 1);
        assert_eq!(loaded.kernels.len(), 1);
        assert_eq!(loaded.kernels[0].samples, vec![0.01]);
        assert_eq!(loaded.kernels[0].best_secs(), 0.01);
    }

    #[test]
    fn duplicate_keys_pool_samples_and_keep_best() {
        let s = Scratch::new("dup");
        s.write_manifest(
            "a.ndjson",
            &[
                &spmv_line("K", 0.02, 1.0, Some(&[0.03, 0.02])),
                &spmv_line("K", 0.01, 2.0, Some(&[0.01, 0.04])),
            ],
        );
        let loaded = load_dir(&s.0).unwrap();
        assert_eq!(loaded.kernels.len(), 1);
        let k = &loaded.kernels[0];
        assert_eq!(k.samples.len(), 4);
        assert_eq!(k.secs_min, 0.01);
        assert_eq!(k.gflops, 2.0);
        assert_eq!(k.best_secs(), 0.01);
    }

    #[test]
    fn peak_resolution_order() {
        let s = Scratch::new("peak");
        s.write_manifest("a.ndjson", &[&spmv_line("K", 0.01, 1.0, None)]);
        let loaded = load_dir(&s.0).unwrap();
        // No membw record → proxy from eff_bw_gbs.
        let (p, src) = resolve_peak(&loaded, None).unwrap();
        assert_eq!(src, PeakSource::Proxy);
        assert_eq!(p, 2.0);
        // Flag wins over everything.
        let (p, src) = resolve_peak(&loaded, Some(12.5)).unwrap();
        assert_eq!(src, PeakSource::Flag);
        assert_eq!(p, 12.5);
        // A membw record beats the proxy.
        let s2 = Scratch::new("peak2");
        s2.write_manifest(
            "a.ndjson",
            &[
                &spmv_line("K", 0.01, 1.0, None),
                &Json::obj(vec![
                    ("type", Json::from("membw")),
                    ("read_gbs", Json::from(8.0)),
                ])
                .to_string(),
            ],
        );
        let loaded2 = load_dir(&s2.0).unwrap();
        let (p, src) = resolve_peak(&loaded2, None).unwrap();
        assert_eq!(src, PeakSource::Membw);
        assert_eq!(p, 8.0);
    }

    #[test]
    fn every_row_is_classified() {
        let s = Scratch::new("classify");
        s.write_manifest(
            "a.ndjson",
            &[
                &spmv_line("fast", 0.001, 4.0, Some(&[0.001, 0.002])),
                &spmv_line("slow", 0.1, 0.01, Some(&[0.1, 0.2])),
            ],
        );
        let loaded = load_dir(&s.0).unwrap();
        let report = build_report(&loaded, Some(10.0)).unwrap();
        assert_eq!(report.rows.len(), 2);
        for r in &report.rows {
            assert!(matches!(
                r.point.bound.label(),
                "bandwidth-bound" | "latency-bound"
            ));
        }
        let table = render_table(&loaded, &report);
        assert!(table.contains("bench/fast/t1/k1"));
        assert!(table.contains("ceiling: 10.00 GB/s"));
        // NDJSON lines parse back.
        for line in render_ndjson(&loaded, &report).lines() {
            Json::parse(line).unwrap();
        }
    }

    #[test]
    fn diff_flags_regressions_only_beyond_threshold() {
        let sa = Scratch::new("diff-a");
        let sb = Scratch::new("diff-b");
        sa.write_manifest(
            "a.ndjson",
            &[
                &spmv_line("same", 0.010, 1.0, Some(&[0.010])),
                &spmv_line("reg", 0.010, 1.0, Some(&[0.010])),
                &spmv_line("imp", 0.010, 1.0, Some(&[0.010])),
                &spmv_line("gone", 0.010, 1.0, None),
            ],
        );
        sb.write_manifest(
            "b.ndjson",
            &[
                &spmv_line("same", 0.0104, 1.0, Some(&[0.0104])), // +4% < 5%
                &spmv_line("reg", 0.020, 0.5, Some(&[0.020])),    // +100%
                &spmv_line("imp", 0.005, 2.0, Some(&[0.005])),    // -50%
                &spmv_line("new", 0.010, 1.0, None),
            ],
        );
        let (a, b) = (load_dir(&sa.0).unwrap(), load_dir(&sb.0).unwrap());
        let rows = diff(&a, &b, 0.05);
        let by_key: BTreeMap<&str, DiffStatus> =
            rows.iter().map(|r| (r.key.as_str(), r.status)).collect();
        assert_eq!(by_key["bench/same/t1/k1"], DiffStatus::Same);
        assert_eq!(by_key["bench/reg/t1/k1"], DiffStatus::Regression);
        assert_eq!(by_key["bench/imp/t1/k1"], DiffStatus::Improvement);
        assert_eq!(by_key["bench/gone/t1/k1"], DiffStatus::OnlyA);
        assert_eq!(by_key["bench/new/t1/k1"], DiffStatus::OnlyB);
        assert!(has_regressions(&rows));
        let table = render_diff_table(&a, &b, &rows, 0.05);
        assert!(table.contains("REGRESSION"));
        assert!(table.contains("FAIL"));
        // Minute-of-reps: B regresses secs_min but has one fast sample →
        // not a regression.
        let sc = Scratch::new("diff-c");
        sc.write_manifest(
            "c.ndjson",
            &[&spmv_line("reg", 0.020, 0.5, Some(&[0.020, 0.0101]))],
        );
        let c = load_dir(&sc.0).unwrap();
        let rows = diff(&a, &c, 0.05);
        let reg = rows.iter().find(|r| r.key == "bench/reg/t1/k1").unwrap();
        assert_eq!(reg.status, DiffStatus::Same);
    }

    #[test]
    fn trace_counters_and_export_round_trip() {
        let s = Scratch::new("trace");
        s.write_manifest("a.ndjson", &[&spmv_line("K", 0.01, 1.0, None)]);
        let tdir = s.0.join("trace");
        std::fs::create_dir_all(&tdir).unwrap();
        std::fs::write(
            tdir.join("run.ndjson"),
            concat!(
                "{\"type\":\"meta\",\"enabled\":true,\"threads\":1}\n",
                "{\"type\":\"counters\",\"useful_flops\":200,\"bytes_loaded\":80,\"bytes_stored\":20,\"fma_lanes\":100,\"padding_lanes\":25}\n",
                "{\"type\":\"span\",\"name\":\"solver.sirt\",\"thread\":\"main\",\"depth\":0,\"t_ns\":0,\"dur_ns\":1000}\n",
                "{\"type\":\"span\",\"name\":\"spmv\",\"thread\":\"main\",\"depth\":1,\"t_ns\":100,\"dur_ns\":400}\n",
                "{\"type\":\"event\",\"name\":\"sirt.iter\",\"thread\":\"main\",\"depth\":1,\"t_ns\":600,\"iter\":1}\n",
            ),
        )
        .unwrap();
        let traces = load_trace_counters(&s.0).unwrap();
        assert_eq!(traces.len(), 1);
        let section = render_trace_section(&traces);
        assert!(section.contains("model-ai 2.000"), "{section}");
        assert!(section.contains("padding 25.0%"), "{section}");

        let out = s.0.join("export");
        let written = export_traces(&s.0, &out).unwrap();
        assert_eq!(written.len(), 2);
        let chrome = std::fs::read_to_string(&written[0]).unwrap();
        let doc = Json::parse(&chrome).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("solver.sirt")));
        let collapsed = std::fs::read_to_string(&written[1]).unwrap();
        assert!(
            collapsed.contains("main;solver.sirt;spmv 400"),
            "{collapsed}"
        );
    }

    #[test]
    fn shard_counters_render_in_trace_section() {
        let t = TraceCounters {
            file: "shard".to_string(),
            counters: [
                ("shard_bytes_tx", 1000.0),
                ("shard_bytes_rx", 500.0),
                ("shard_reduce_ns", 2_000_000.0),
                ("shard_worker_busy_ns", 8_000_000.0),
                ("shard_trace_frames", 4.0),
                ("shard_trace_bytes", 256.0),
            ]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        };
        let section = render_trace_section(&[t]);
        assert!(
            section.contains("shard tx 1000 B, rx 500 B, reduce 2.000 ms"),
            "{section}"
        );
        assert!(
            section.contains("telemetry 4 frame(s) / 256 B"),
            "{section}"
        );
        // No shard line for traces without shard traffic.
        let plain = TraceCounters {
            file: "p".to_string(),
            counters: BTreeMap::new(),
        };
        assert!(!render_trace_section(&[plain]).contains("shard tx"));
    }

    #[test]
    fn telemetry_rows_load_and_render() {
        let s = Scratch::new("telemetry");
        let tdir = s.0.join("telemetry");
        std::fs::create_dir_all(&tdir).unwrap();
        std::fs::write(
            tdir.join("shard.ndjson"),
            concat!(
                "{\"type\":\"telemetry\",\"solver\":\"sirt\",\"workers\":2,\"shard\":0,",
                "\"pid\":101,\"requests\":26,\"bytes_tx\":1000,\"bytes_rx\":500,",
                "\"busy_ns\":3000000,\"spmv_calls\":12,\"spmv_t_calls\":12,",
                "\"trace_frames\":2,\"last_seen_ns\":9000000,",
                "\"clock_offset_ns\":-4500.0,\"degraded\":false}\n",
                "{\"type\":\"telemetry\",\"solver\":\"sirt\",\"workers\":2,\"shard\":1,",
                "\"pid\":102,\"requests\":25,\"degraded\":true}\n",
                "{\"type\":\"shard\",\"solver\":\"sirt\"}\n",
            ),
        )
        .unwrap();
        let rows = load_telemetry(&s.0).unwrap();
        assert_eq!(rows.len(), 2, "non-telemetry rows are skipped");
        assert_eq!(rows[0].pid, 101);
        assert_eq!(rows[0].clock_offset_ns, -4500.0);
        assert!(rows[1].degraded);
        let section = render_telemetry_section(&rows);
        assert!(section.contains("== worker telemetry =="), "{section}");
        assert!(section.contains("DEGRADED"), "{section}");
        assert!(section.contains("101"), "{section}");
        // Empty input renders nothing (no stray header in reports).
        assert_eq!(render_telemetry_section(&[]), "");
        assert!(load_telemetry(&Scratch::new("telemetry-none").0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn trace_diff_compares_summed_counters() {
        let tc = |file: &str, pairs: &[(&str, f64)]| TraceCounters {
            file: file.to_string(),
            counters: pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        };
        let a = vec![
            tc("x", &[("shard_bytes_tx", 100.0)]),
            tc("y", &[("shard_bytes_tx", 100.0)]),
        ];
        let b = vec![tc("z", &[("shard_bytes_tx", 300.0), ("only_b", 7.0)])];
        let out = render_trace_diff(&a, &b);
        assert!(out.contains("== trace counters (A vs B) =="), "{out}");
        assert!(out.contains("1.500"), "B/A ratio: {out}");
        // A-side zero renders "-" rather than a division blow-up.
        let only_b = out.lines().find(|l| l.contains("only_b")).unwrap();
        assert!(only_b.trim_end().ends_with('-'), "{only_b}");
        assert_eq!(render_trace_diff(&[], &[]), "");
    }

    #[test]
    fn missing_dir_is_an_error() {
        let s = Scratch::new("missing");
        assert!(load_dir(&s.0.join("nope")).is_err());
    }
}
