//! Workspace-wide call graph over the [`super::symbols`] model.
//!
//! Call sites are extracted syntactically from the blanked code view and
//! resolved in three modes:
//!
//! * **plain calls** `f(…)` — same file first, then the file's `use`
//!   imports, then same-crate functions of that name;
//! * **path calls** `a::b::f(…)` — longest-suffix match against the
//!   qualified names of all workspace functions, with `crate`/`self`
//!   normalized against the calling file and type segments
//!   (capitalized, e.g. `ThreadPool::run`) treated as wildcards;
//! * **method calls** `recv.f(…)` — *trait-method approximation*: an
//!   edge to every workspace function named `f` that takes `self`,
//!   except for names on the [`STD_METHODS`] list (std iterator/slice
//!   vocabulary), which would otherwise connect unrelated code through
//!   `.len()`-shaped calls.
//!
//! The result deliberately over-approximates (an ambiguous name links to
//! every candidate): downstream rules that walk the graph report
//! *witness chains*, so a spurious edge shows up in the printed chain
//! and can be vetted or fixed at the annotation layer.

use super::symbols::Workspace;
use crate::lexer;
use std::collections::{BTreeMap, VecDeque};

/// Method names resolved to std/core vocabulary rather than workspace
/// functions. Method-call edges on these names are dropped; plain and
/// path calls still resolve normally.
pub const STD_METHODS: &[&str] = &[
    "all",
    "any",
    "as_bytes",
    "as_mut",
    "as_mut_ptr",
    "as_ptr",
    "as_ref",
    "as_slice",
    "abs",
    "ceil",
    "chain",
    "chars",
    "chunks",
    "chunks_exact",
    "clamp",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "copy_from_slice",
    "count",
    "dedup",
    "display",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "exp",
    "extend",
    "fill",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "fold",
    "for_each",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "is_empty",
    "is_file",
    "is_dir",
    "is_finite",
    "is_nan",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "iter",
    "iter_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "ln",
    "map",
    "map_err",
    "map_while",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "next",
    "next_back",
    "nth",
    "parse",
    "partition",
    "peek",
    "pop",
    "position",
    "powi",
    "powf",
    "product",
    "push",
    "push_str",
    "range",
    "remove",
    "repeat",
    "replace",
    "resize",
    "retain",
    "rev",
    "rotate_left",
    "rotate_right",
    "round",
    "skip",
    "skip_while",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "split",
    "split_at",
    "split_at_mut",
    "split_first",
    "split_last",
    "split_off",
    "split_whitespace",
    "sqrt",
    "starts_with",
    "step_by",
    "strip_prefix",
    "strip_suffix",
    "sum",
    "swap",
    "take",
    "take_while",
    "to_owned",
    "to_lowercase",
    "to_string",
    "to_uppercase",
    "to_vec",
    "trim",
    "trim_end",
    "trim_start",
    "truncate",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "windows",
    "wrapping_add",
    "wrapping_mul",
    "wrapping_sub",
    "zip",
    "ends_with",
    "and_then",
    "or_else",
    "ok",
    "ok_or",
    "ok_or_else",
    "err",
    "expect_err",
    "unzip",
    "rsplit",
    "splitn",
    "matches",
    "min_element",
    "max_element",
    "leading_zeros",
    "trailing_zeros",
    "count_ones",
    "saturating_add",
    "saturating_sub",
    "saturating_mul",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "checked_div",
    "rem_euclid",
    "div_euclid",
    "to_le_bytes",
    "to_be_bytes",
    "from_le_bytes",
    "from_be_bytes",
    "exists",
    "file_name",
    "extension",
    "with_extension",
    "file_stem",
    "components",
    "ancestors",
    "to_path_buf",
    "to_str",
    "into_os_string",
    // mpsc/socket vocabulary: `tx.send(…)` / `rx.recv()` on std channels
    // must not link to workspace protocol fns of the same name.
    "send",
    "recv",
    "try_recv",
    "recv_timeout",
    "try_send",
    "send_timeout",
];

/// Std/core type names whose associated functions (`Mutex::new`,
/// `Vec::with_capacity`, `Instant::now`, …) must never resolve into the
/// workspace — common constructor names like `new` otherwise link to
/// every workspace constructor and poison reachability.
pub const STD_TYPES: &[&str] = &[
    "Vec",
    "VecDeque",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "String",
    "Box",
    "Rc",
    "Arc",
    "Weak",
    "Cell",
    "RefCell",
    "UnsafeCell",
    "Mutex",
    "RwLock",
    "Condvar",
    "Once",
    "OnceLock",
    "OnceCell",
    "LazyLock",
    "Instant",
    "Duration",
    "SystemTime",
    "PathBuf",
    "Path",
    "OsString",
    "OsStr",
    "CString",
    "CStr",
    "File",
    "OpenOptions",
    "BufReader",
    "BufWriter",
    "Command",
    "Stdio",
    "Builder",
    "JoinHandle",
    "Barrier",
    "AtomicBool",
    "AtomicUsize",
    "AtomicIsize",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicPtr",
    "Ordering",
    "Option",
    "Result",
    "Default",
    "Iterator",
    "ExitCode",
    "ExitStatus",
    "TcpStream",
    "TcpListener",
    "UdpSocket",
    "UnixStream",
    "UnixListener",
    "NonNull",
    "ManuallyDrop",
    "MaybeUninit",
    "PhantomData",
    "Layout",
    "Cow",
    "Wrapping",
    "Saturating",
    "Range",
    "Error",
    "Formatter",
    "Sender",
    "Receiver",
    "SyncSender",
    "Waker",
    "Context",
    "Pin",
    "Reverse",
    "Entry",
    "Thread",
];

/// Rust keywords (and keyword-shaped tokens) that precede `(` without
/// being calls.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as", "fn",
    "let", "mut", "ref", "move", "unsafe", "impl", "where", "pub", "crate", "super", "self",
    "Self", "use", "mod", "dyn", "box", "async", "await", "yield", "true", "false", "Some", "None",
    "Ok", "Err",
];

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    pub callee: usize,
    /// 0-based source line of the call site in the caller's file.
    pub line: usize,
}

/// Call graph: per-function outgoing edges plus a reverse adjacency.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub out: Vec<Vec<Edge>>,
    pub ins: Vec<Vec<usize>>,
    pub edge_count: usize,
}

/// A syntactic call site before resolution.
#[derive(Debug, PartialEq)]
pub enum CallKind {
    Plain(String),
    /// Path segments (without the final name) and the name.
    Path(Vec<String>, String),
    Method(String),
}

/// Extract the call sites of one line of blanked code. Returns
/// `(byte_offset_of_name, kind)` pairs.
pub fn call_sites(code: &str) -> Vec<(usize, CallKind)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (k, &b) in bytes.iter().enumerate() {
        if b != b'(' {
            continue;
        }
        // Walk back over whitespace to the token before `(`.
        let mut e = k;
        while e > 0 && bytes[e - 1].is_ascii_whitespace() {
            e -= 1;
        }
        if e == 0 || !lexer::is_ident_char(bytes[e - 1] as char) {
            continue;
        }
        let mut s = e;
        while s > 0 && lexer::is_ident_char(bytes[s - 1] as char) {
            s -= 1;
        }
        let name = &code[s..e];
        if name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            continue;
        }
        if KEYWORDS.contains(&name) {
            continue;
        }
        // `ident!(` is a macro invocation, not a call.
        if bytes.get(e) == Some(&b'!') {
            continue;
        }
        let before = if s > 0 { bytes[s - 1] } else { b' ' };
        if before == b'!' {
            continue;
        }
        if before == b'.' {
            // `recv.f(…)`; `1.0f64.powi(…)`-style float methods still
            // land here but resolve to nothing or STD_METHODS.
            out.push((s, CallKind::Method(name.to_string())));
            continue;
        }
        if before == b':' && s >= 2 && bytes[s - 2] == b':' {
            // Collect the `seg::seg::` prefix.
            let mut segs: Vec<String> = Vec::new();
            let mut p = s - 2;
            loop {
                let mut q = p;
                while q > 0 && lexer::is_ident_char(bytes[q - 1] as char) {
                    q -= 1;
                }
                if q == p {
                    break;
                }
                segs.push(code[q..p].to_string());
                if q >= 2 && bytes[q - 1] == b':' && bytes[q - 2] == b':' {
                    p = q - 2;
                } else {
                    break;
                }
            }
            segs.reverse();
            out.push((s, CallKind::Path(segs, name.to_string())));
            continue;
        }
        out.push((s, CallKind::Plain(name.to_string())));
    }
    out
}

struct Resolver {
    /// name -> fn ids (all).
    by_name: BTreeMap<String, Vec<usize>>,
}

impl Resolver {
    fn new(ws: &Workspace) -> Resolver {
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (id, f) in ws.fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(id);
        }
        Resolver { by_name }
    }

    fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    fn resolve(&self, ws: &Workspace, caller: usize, kind: &CallKind) -> Vec<usize> {
        let caller_fn = &ws.fns[caller];
        let file = &ws.files[caller_fn.file];
        match kind {
            CallKind::Method(name) => {
                if STD_METHODS.contains(&name.as_str()) {
                    return Vec::new();
                }
                self.named(name)
                    .iter()
                    .copied()
                    .filter(|&id| ws.fns[id].has_self)
                    .collect()
            }
            CallKind::Plain(name) => {
                let cands = self.named(name);
                // Same file beats everything.
                let same_file: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&id| ws.fns[id].file == caller_fn.file)
                    .collect();
                if !same_file.is_empty() {
                    return same_file;
                }
                // A `use` import naming it decides the path. Checked
                // before bailing on an empty `cands`: a renamed import
                // (`use a::{b as c, d}`) binds a local name that no
                // workspace fn carries, so the by-name table alone
                // would drop the edge.
                if let Some(imp) = file.imports.iter().find(|i| &i.alias == name) {
                    let segs: Vec<String> = imp.path.split("::").map(str::to_string).collect();
                    let (head, last) = segs.split_at(segs.len().saturating_sub(1));
                    let target = last.first().cloned().unwrap_or_default();
                    let resolved = self.resolve_path(ws, caller, head, &target);
                    if !resolved.is_empty() {
                        return resolved;
                    }
                }
                // Same crate (sibling modules re-exported via lib.rs).
                cands
                    .iter()
                    .copied()
                    .filter(|&id| ws.files[ws.fns[id].file].crate_idx == file.crate_idx)
                    .collect()
            }
            CallKind::Path(segs, name) => self.resolve_path(ws, caller, segs, name),
        }
    }

    fn resolve_path(
        &self,
        ws: &Workspace,
        caller: usize,
        segs: &[String],
        name: &str,
    ) -> Vec<usize> {
        let caller_fn = &ws.fns[caller];
        let file = &ws.files[caller_fn.file];
        let crate_ident = &ws.crates[file.crate_idx].ident;
        // Normalize the prefix: `crate` -> calling crate ident, `self`
        // -> calling module, drop `super` segments (rare, and suffix
        // matching absorbs the imprecision). Type segments (capitalized)
        // are wildcards: `ThreadPool::run` matches any fn named `run`.
        let mut norm: Vec<String> = Vec::new();
        for (i, s) in segs.iter().enumerate() {
            match s.as_str() {
                "crate" => norm.push(crate_ident.clone()),
                "self" if i == 0 => norm.extend(file.module_path.split("::").map(str::to_string)),
                "super" => {
                    norm.pop();
                }
                _ => norm.push(s.clone()),
            }
        }
        // Expand a leading import alias: `pool::spawn(…)` after
        // `use crate::pool;`.
        if let Some(first) = norm.first().cloned() {
            if let Some(imp) = file.imports.iter().find(|i| i.alias == first) {
                let mut expanded: Vec<String> = imp.path.split("::").map(str::to_string).collect();
                expanded.extend(norm.iter().skip(1).cloned());
                norm = expanded
                    .into_iter()
                    .map(|s| if s == "crate" { crate_ident.clone() } else { s })
                    .collect();
            }
        }
        let module_segs: Vec<&String> = norm
            .iter()
            .filter(|s| {
                s.chars()
                    .next()
                    .is_some_and(|c| c.is_lowercase() || c == '_')
            })
            .collect();
        let cands = self.named(name);
        // Longest-suffix match over the module segments.
        for take in (1..=module_segs.len()).rev() {
            let suffix: Vec<&str> = module_segs[module_segs.len() - take..]
                .iter()
                .map(|s| s.as_str())
                .collect();
            let needle = format!("{}::{}", suffix.join("::"), name);
            let hits: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&id| {
                    let q = &ws.fns[id].qual;
                    q == &needle || q.ends_with(&format!("::{needle}"))
                })
                .collect();
            if !hits.is_empty() {
                return hits;
            }
        }
        // No module segment matched. If the path carried a type segment
        // (associated fn / method via `Type::f`), approximate — but
        // `Vec::new()`-shaped std constructors must not link to every
        // workspace `new`, so known std types resolve to nothing and
        // workspace types prefer the nearest candidate (same file, then
        // same crate) before falling back to every fn of that name.
        let type_seg = norm
            .iter()
            .rev()
            .find(|s| s.chars().next().is_some_and(|c| c.is_uppercase()));
        match type_seg {
            None => Vec::new(),
            Some(t) if STD_TYPES.contains(&t.as_str()) => Vec::new(),
            Some(_) => {
                let same_file: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&id| ws.fns[id].file == caller_fn.file)
                    .collect();
                if !same_file.is_empty() {
                    return same_file;
                }
                let same_crate: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&id| ws.files[ws.fns[id].file].crate_idx == file.crate_idx)
                    .collect();
                if !same_crate.is_empty() {
                    return same_crate;
                }
                cands.to_vec()
            }
        }
    }
}

/// Build the call graph for a workspace.
pub fn build(ws: &Workspace) -> CallGraph {
    let resolver = Resolver::new(ws);
    let mut out: Vec<Vec<Edge>> = vec![Vec::new(); ws.fns.len()];
    let mut ins: Vec<Vec<usize>> = vec![Vec::new(); ws.fns.len()];
    let mut edge_count = 0usize;
    for (caller, f) in ws.fns.iter().enumerate() {
        let file = &ws.files[f.file];
        for li in f.line..=f.end.min(file.lines.len().saturating_sub(1)) {
            // Skip nested fns' bodies: their call sites belong to them.
            if ws
                .enclosing_fn(f.file, li)
                .is_some_and(|inner| inner != caller)
            {
                continue;
            }
            for (pos, kind) in call_sites(&file.lines[li].code) {
                // The fn's own header (`fn name(…)`) is not a call.
                if li == f.line {
                    if let CallKind::Plain(n) = &kind {
                        if n == &f.name {
                            let before = file.lines[li].code[..pos].trim_end();
                            if before.ends_with("fn") {
                                continue;
                            }
                        }
                    }
                }
                for callee in resolver.resolve(ws, caller, &kind) {
                    if out[caller]
                        .iter()
                        .any(|e| e.callee == callee && e.line == li)
                    {
                        continue;
                    }
                    out[caller].push(Edge { callee, line: li });
                    ins[callee].push(caller);
                    edge_count += 1;
                }
            }
        }
    }
    CallGraph {
        out,
        ins,
        edge_count,
    }
}

impl CallGraph {
    /// Shortest call chain (BFS over out-edges) from `from` to any
    /// function for which `target` holds; returns the fn-id path
    /// including both endpoints, or `None`.
    pub fn shortest_chain(
        &self,
        from: usize,
        target: &dyn Fn(usize) -> bool,
    ) -> Option<Vec<usize>> {
        if target(from) {
            return Some(vec![from]);
        }
        let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(from);
        prev.insert(from, from);
        while let Some(cur) = queue.pop_front() {
            for e in &self.out[cur] {
                if prev.contains_key(&e.callee) {
                    continue;
                }
                prev.insert(e.callee, cur);
                if target(e.callee) {
                    let mut path = vec![e.callee];
                    let mut node = cur;
                    while node != from {
                        path.push(node);
                        node = prev[&node];
                    }
                    path.push(from);
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(e.callee);
            }
        }
        None
    }

    /// Deterministic `caller -> callee` listing for snapshot tests.
    pub fn render(&self, ws: &Workspace) -> String {
        let mut rows: Vec<String> = Vec::new();
        for (caller, edges) in self.out.iter().enumerate() {
            for e in edges {
                rows.push(format!(
                    "{} -> {}",
                    ws.fns[caller].qual, ws.fns[e.callee].qual
                ));
            }
        }
        rows.sort();
        rows.dedup();
        rows.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::symbols::Workspace;

    #[test]
    fn call_site_extraction_classifies_forms() {
        let sites = call_sites("let x = helper(a) + v.lookup(b) + pool::spawn(c);");
        assert_eq!(sites.len(), 3);
        assert_eq!(sites[0].1, CallKind::Plain("helper".into()));
        assert_eq!(sites[1].1, CallKind::Method("lookup".into()));
        assert_eq!(
            sites[2].1,
            CallKind::Path(vec!["pool".into()], "spawn".into())
        );
    }

    #[test]
    fn keywords_and_macros_are_not_calls() {
        assert!(call_sites("if (a) { return (b); }").is_empty());
        assert!(call_sites("println!(\"x\"); vec![1]").is_empty());
    }

    #[test]
    fn cross_crate_path_call_resolves() {
        let ws = Workspace::from_sources(&[
            (
                "cscv-core",
                "crates/core/src/exec.rs",
                "pub fn execute() {\n    cscv_sparse::pool::dispatch_all();\n}\n",
            ),
            (
                "cscv-sparse",
                "crates/sparse/src/pool.rs",
                "pub fn dispatch_all() {}\n",
            ),
        ]);
        let cg = build(&ws);
        assert_eq!(
            cg.render(&ws),
            "cscv_core::exec::execute -> cscv_sparse::pool::dispatch_all"
        );
    }

    #[test]
    fn brace_grouped_rename_resolves_plain_call() {
        // `use a::{b as c, d}` binds a local name (`c`) that no
        // workspace fn carries; resolution must go through the import
        // table, not the global by-name index (which is empty for `c`
        // and used to drop the edge before the alias was consulted).
        let ws = Workspace::from_sources(&[
            (
                "cscv-core",
                "crates/core/src/exec.rs",
                "use cscv_sparse::pool::{spawn_all as launch, join_all};\n\
                 pub fn execute() {\n    launch();\n    join_all();\n}\n",
            ),
            (
                "cscv-sparse",
                "crates/sparse/src/pool.rs",
                "pub fn spawn_all() {}\npub fn join_all() {}\n",
            ),
        ]);
        let cg = build(&ws);
        assert_eq!(
            cg.render(&ws),
            "cscv_core::exec::execute -> cscv_sparse::pool::join_all\n\
             cscv_core::exec::execute -> cscv_sparse::pool::spawn_all"
        );
    }

    #[test]
    fn import_alias_resolves_plain_call() {
        let ws = Workspace::from_sources(&[
            (
                "cscv-core",
                "crates/core/src/exec.rs",
                "use cscv_sparse::pool::dispatch_all;\npub fn execute() {\n    dispatch_all();\n}\n",
            ),
            (
                "cscv-sparse",
                "crates/sparse/src/pool.rs",
                "pub fn dispatch_all() {}\n",
            ),
        ]);
        let cg = build(&ws);
        assert_eq!(cg.edge_count, 1);
    }

    #[test]
    fn method_approximation_links_self_fns_but_not_std_names() {
        let ws = Workspace::from_sources(&[
            (
                "cscv-a",
                "crates/a/src/lib.rs",
                "pub fn go(p: &P) {\n    p.launch();\n    p.len();\n}\n",
            ),
            (
                "cscv-b",
                "crates/b/src/lib.rs",
                "impl P {\n    pub fn launch(&self) {}\n    pub fn len(&self) -> usize { 0 }\n}\n",
            ),
        ]);
        let cg = build(&ws);
        assert_eq!(cg.render(&ws), "cscv_a::go -> cscv_b::launch");
    }

    #[test]
    fn shortest_chain_prefers_direct_edge() {
        let ws = Workspace::from_sources(&[(
            "cscv-a",
            "crates/a/src/lib.rs",
            "fn a() {\n    b();\n    c();\n}\nfn b() {\n    c();\n}\nfn c() {}\n",
        )]);
        let cg = build(&ws);
        let c_id = ws.fns.iter().position(|f| f.name == "c").unwrap();
        let chain = cg.shortest_chain(0, &|id| id == c_id).unwrap();
        assert_eq!(chain.len(), 2); // a -> c directly, not via b
    }

    #[test]
    fn own_header_is_not_an_edge_but_recursion_is() {
        let ws = Workspace::from_sources(&[(
            "cscv-a",
            "crates/a/src/lib.rs",
            "fn fact(n: u64) -> u64 {\n    if n == 0 { 1 } else { n * fact(n - 1) }\n}\n",
        )]);
        let cg = build(&ws);
        assert_eq!(cg.edge_count, 1);
        assert_eq!(cg.out[0][0].callee, 0);
    }
}
