//! Workspace symbol model for the inter-procedural analyzer.
//!
//! Parses every `.rs` file of every workspace crate (with the shared
//! [`crate::lexer`]) into a lightweight item model: function items with
//! name / qualified path / parameter list / return type / body span,
//! per-file `use` import tables, and atomic declarations with their
//! `// ATOMIC(<role>)` classification. No type checking — just enough
//! structure for the call graph and the dataflow rules to resolve names
//! across crate boundaries.

use crate::audit::{self, CrateMeta};
use crate::lexer::{self, LineView};
use crate::lint::{collect_rs_files, test_regions};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// One `use` entry: `alias` is the name visible in the file, `path` the
/// `::`-joined full path it expands to. Glob imports use alias `*`.
#[derive(Debug, Clone)]
pub struct Import {
    pub alias: String,
    pub path: String,
}

/// One parsed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the analysis root (diagnostic target).
    pub rel: PathBuf,
    /// Index into [`Workspace::crates`].
    pub crate_idx: usize,
    /// Module path of this file, e.g. `cscv_core::formats::csr5`.
    pub module_path: String,
    pub lines: Vec<LineView>,
    pub in_test: Vec<bool>,
    pub imports: Vec<Import>,
    /// Raw source (needed by the stale-annotation raw audit re-run).
    pub source: String,
}

/// One function parameter: binder name and the (textual) type.
#[derive(Debug, Clone)]
pub struct Param {
    pub name: String,
    pub ty: String,
}

/// One `fn` item anywhere in the workspace.
#[derive(Debug)]
pub struct FnItem {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// 0-based header line (diagnostics add 1).
    pub line: usize,
    /// 0-based last body line, inclusive.
    pub end: usize,
    pub name: String,
    /// `module_path::name` — the resolution key for path calls.
    pub qual: String,
    pub params: Vec<Param>,
    /// Return type text (empty for `()`).
    pub ret: String,
    pub has_self: bool,
    /// Header sits in a `#[cfg(test)]` region or under `#[test]`.
    pub is_test: bool,
}

/// Declared role of an atomic, from `// ATOMIC(<role>): <why>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Monotonic counter / diagnostic value: any ordering is fine.
    Statistic,
    /// Publishes data written before the store: needs release/acquire.
    Handoff,
    /// Lifecycle flag another thread observes: needs release/acquire.
    Flag,
}

impl Role {
    pub fn parse(s: &str) -> Option<Role> {
        match s {
            "statistic" => Some(Role::Statistic),
            "handoff" => Some(Role::Handoff),
            "flag" => Some(Role::Flag),
            _ => None,
        }
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            Role::Statistic => "statistic",
            Role::Handoff => "handoff",
            Role::Flag => "flag",
        }
    }
}

/// One atomic declaration site: a `static`, a struct field, a `let`
/// with an atomic type annotation, or a `type` alias whose right-hand
/// side carries an atomic type.
#[derive(Debug)]
pub struct AtomicDecl {
    pub file: usize,
    /// 0-based declaration line.
    pub line: usize,
    pub name: String,
    /// Parsed role, when the annotation exists and is well-formed.
    pub role: Option<Role>,
    /// Raw role text when an ATOMIC(...) annotation exists (even if the
    /// role name is unknown); `None` means no annotation at all.
    pub role_raw: Option<String>,
    /// 0-based line of the covering ATOMIC annotation, when present.
    pub role_line: Option<usize>,
    /// `type X = [AtomicU64; N]`-style alias declarations.
    pub is_alias: bool,
    /// Name of the annotated alias this declaration's type references
    /// (role inheritance: fields typed via an annotated alias need no
    /// annotation of their own).
    pub via_alias: Option<String>,
    pub in_test: bool,
}

/// What the analyzer needs to know about one crate.
#[derive(Debug, Default)]
pub struct CrateInfo {
    /// Manifest package name, e.g. `cscv-core`.
    pub name: String,
    /// Rust identifier form, e.g. `cscv_core`.
    pub ident: String,
    /// Declared `[features]` keys (for the stale-annotation raw audit).
    pub features: BTreeSet<String>,
}

/// The whole-workspace symbol model.
#[derive(Debug, Default)]
pub struct Workspace {
    pub crates: Vec<CrateInfo>,
    pub files: Vec<SourceFile>,
    pub fns: Vec<FnItem>,
    pub atomics: Vec<AtomicDecl>,
    pub files_scanned: usize,
    pub lines_scanned: usize,
}

/// Atomic integer/bool/pointer type names from `std::sync::atomic`.
pub const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

impl Workspace {
    /// Load the workspace under `root`: the root manifest plus every
    /// `crates/*/Cargo.toml`, and all `.rs` files under their `src/`.
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let mut inputs: Vec<(PathBuf, String, BTreeSet<String>, Vec<PathBuf>)> = Vec::new();
        let mut manifest_dirs = vec![root.to_path_buf()];
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut subdirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
                .map_err(|e| format!("read {}: {e}", crates_dir.display()))?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_dir())
                .collect();
            subdirs.sort();
            manifest_dirs.extend(subdirs);
        }
        for dir in manifest_dirs {
            let manifest = dir.join("Cargo.toml");
            if !manifest.is_file() {
                continue;
            }
            let src = std::fs::read_to_string(&manifest)
                .map_err(|e| format!("read {}: {e}", manifest.display()))?;
            let rel = manifest
                .strip_prefix(root)
                .unwrap_or(&manifest)
                .to_path_buf();
            let meta: CrateMeta = audit::parse_manifest(&rel, &src);
            if meta.name.is_empty() {
                continue; // virtual workspace root manifest
            }
            let src_dir = dir.join("src");
            let mut files = Vec::new();
            if src_dir.is_dir() {
                collect_rs_files(&src_dir, &mut files)?;
                files.sort();
            }
            inputs.push((dir, meta.name, meta.features, files));
        }
        if inputs.is_empty() {
            return Err(format!(
                "no crate manifests under {} (expected crates/*/ or the workspace root)",
                root.display()
            ));
        }
        let mut ws = Workspace::default();
        for (_dir, name, features, files) in inputs {
            let crate_idx = ws.crates.len();
            ws.crates.push(CrateInfo {
                ident: name.replace('-', "_"),
                name,
                features,
            });
            for path in files {
                let source = std::fs::read_to_string(&path)
                    .map_err(|e| format!("read {}: {e}", path.display()))?;
                let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
                ws.add_file(rel, crate_idx, source);
            }
        }
        ws.index_items();
        Ok(ws)
    }

    /// Build a workspace from in-memory sources — the fixture entry
    /// point for tests. Each triple is `(crate_name, rel_path, source)`.
    pub fn from_sources(sources: &[(&str, &str, &str)]) -> Workspace {
        let mut ws = Workspace::default();
        for &(crate_name, rel, source) in sources {
            let crate_idx = match ws.crates.iter().position(|c| c.name == crate_name) {
                Some(i) => i,
                None => {
                    ws.crates.push(CrateInfo {
                        name: crate_name.to_string(),
                        ident: crate_name.replace('-', "_"),
                        features: BTreeSet::new(),
                    });
                    ws.crates.len() - 1
                }
            };
            ws.add_file(PathBuf::from(rel), crate_idx, source.to_string());
        }
        ws.index_items();
        ws
    }

    fn add_file(&mut self, rel: PathBuf, crate_idx: usize, source: String) {
        let lines = lexer::analyze(&source);
        let in_test = test_regions(&lines);
        let module_path = module_path_of(&self.crates[crate_idx].ident, &rel);
        let imports = parse_imports(&lines);
        self.files_scanned += 1;
        self.lines_scanned += source.lines().count();
        self.files.push(SourceFile {
            rel,
            crate_idx,
            module_path,
            lines,
            in_test,
            imports,
            source,
        });
    }

    fn index_items(&mut self) {
        for fi in 0..self.files.len() {
            let fns = scan_fns(fi, &self.files[fi]);
            self.fns.extend(fns);
        }
        // Two passes so alias declarations from any file can confer
        // roles on fields declared elsewhere in the same crate.
        let mut aliases: Vec<(usize, String, Option<Role>)> = Vec::new(); // (crate, name, role)
        for (fi, sf) in self.files.iter().enumerate() {
            for d in scan_atomics(fi, sf, &[]) {
                if d.is_alias {
                    aliases.push((sf.crate_idx, d.name.clone(), d.role));
                }
            }
        }
        for fi in 0..self.files.len() {
            let crate_idx = self.files[fi].crate_idx;
            let crate_aliases: Vec<(String, Option<Role>)> = aliases
                .iter()
                .filter(|(c, _, _)| *c == crate_idx)
                .map(|(_, n, r)| (n.clone(), *r))
                .collect();
            let decls = scan_atomics(fi, &self.files[fi], &crate_aliases);
            self.atomics.extend(decls);
        }
    }

    /// The function (if any) whose body span contains `line` in `file`.
    /// Nested fns prefer the innermost (shortest) span.
    pub fn enclosing_fn(&self, file: usize, line: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == file && f.line <= line && line <= f.end)
            .min_by_key(|(_, f)| f.end - f.line)
            .map(|(i, _)| i)
    }
}

/// Module path of a file: crate ident plus the path segments under
/// `src/` (`lib.rs` / `main.rs` / `mod.rs` contribute no segment).
fn module_path_of(crate_ident: &str, rel: &Path) -> String {
    let mut segs: Vec<String> = vec![crate_ident.to_string()];
    let comps: Vec<&str> = rel
        .components()
        .filter_map(|c| c.as_os_str().to_str())
        .collect();
    let after_src = match comps.iter().position(|&c| c == "src") {
        Some(i) => &comps[i + 1..],
        None => &comps[..],
    };
    for (i, comp) in after_src.iter().enumerate() {
        let last = i + 1 == after_src.len();
        if last {
            let stem = comp.strip_suffix(".rs").unwrap_or(comp);
            if stem != "lib" && stem != "main" && stem != "mod" {
                segs.push(stem.to_string());
            }
        } else {
            segs.push(comp.to_string());
        }
    }
    segs.join("::")
}

/// Parse the `use` declarations of a file into an alias table.
fn parse_imports(lines: &[LineView]) -> Vec<Import> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < lines.len() {
        let code = lines[i].code.trim();
        let is_use = code.starts_with("use ")
            || code.starts_with("pub use ")
            || code.starts_with("pub(crate) use ");
        if !is_use {
            i += 1;
            continue;
        }
        // Concatenate until the terminating `;` (grouped imports wrap).
        let mut text = String::new();
        let mut j = i;
        while j < lines.len() {
            text.push_str(lines[j].code.trim());
            text.push(' ');
            if lines[j].code.contains(';') {
                break;
            }
            j += 1;
        }
        i = j + 1;
        let Some(use_pos) = lexer::word_positions(&text, "use").first().copied() else {
            continue;
        };
        let body = text[use_pos + 3..]
            .trim()
            .trim_end_matches(' ')
            .trim_end_matches(';')
            .trim();
        parse_use_tree("", body, &mut out);
    }
    out
}

/// Recursively expand one use tree (`a::b::{c, d as e, f::*}`).
fn parse_use_tree(prefix: &str, body: &str, out: &mut Vec<Import>) {
    let body = body.trim().trim_end_matches(';').trim();
    if body.is_empty() {
        return;
    }
    if let Some(brace) = body.find('{') {
        // `head::{group}` — split the group on top-level commas.
        let head = body[..brace].trim_end_matches("::").trim();
        let Some(close) = body.rfind('}') else { return };
        let inner = &body[brace + 1..close];
        let new_prefix = join_path(prefix, head);
        let mut depth = 0usize;
        let mut start = 0usize;
        for (k, c) in inner.char_indices() {
            match c {
                '{' => depth += 1,
                '}' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    parse_use_tree(&new_prefix, &inner[start..k], out);
                    start = k + 1;
                }
                _ => {}
            }
        }
        parse_use_tree(&new_prefix, &inner[start..], out);
        return;
    }
    // Leaf: `path`, `path as alias`, `path::*`, bare `self`.
    let (path_part, alias) = match body.split_once(" as ") {
        Some((p, a)) => (p.trim(), Some(a.trim().to_string())),
        None => (body, None),
    };
    let full = join_path(prefix, path_part);
    let last = full.rsplit("::").next().unwrap_or("").to_string();
    let alias = alias.unwrap_or_else(|| {
        if last == "self" {
            // `use a::b::{self}` — alias is the parent segment.
            full.trim_end_matches("::self")
                .rsplit("::")
                .next()
                .unwrap_or("")
                .to_string()
        } else {
            last.clone()
        }
    });
    let path = full.trim_end_matches("::self").to_string();
    if alias.is_empty() {
        return;
    }
    out.push(Import { alias, path });
}

fn join_path(prefix: &str, seg: &str) -> String {
    let seg = seg.trim().trim_start_matches("::");
    if prefix.is_empty() {
        seg.to_string()
    } else if seg.is_empty() {
        prefix.to_string()
    } else {
        format!("{prefix}::{seg}")
    }
}

/// Scan one file for `fn` items, capturing the header signature.
fn scan_fns(file_idx: usize, sf: &SourceFile) -> Vec<FnItem> {
    let lines = &sf.lines;
    let mut out = Vec::new();
    for i in 0..lines.len() {
        for pos in lexer::word_positions(&lines[i].code, "fn") {
            // Collect the header text from the keyword to the body `{`
            // (or bail at `;` — trait declarations have no body).
            let mut header = String::new();
            let mut depth = 0i64;
            let mut li = i;
            let mut ci = pos + 2;
            let (mut open_line, mut open_col, mut found) = (0usize, 0usize, false);
            'scan: while li < lines.len() {
                let bytes = lines[li].code.as_bytes();
                while ci < bytes.len() {
                    match bytes[ci] {
                        b'(' | b'<' | b'[' => depth += 1,
                        b')' | b'>' | b']' => depth -= 1,
                        b';' if depth <= 0 => break 'scan,
                        b'{' => {
                            open_line = li;
                            open_col = ci;
                            found = true;
                            break 'scan;
                        }
                        _ => {}
                    }
                    header.push(bytes[ci] as char);
                    ci += 1;
                }
                header.push(' ');
                li += 1;
                ci = 0;
            }
            if !found {
                continue;
            }
            let Some(sig) = parse_signature(&header) else {
                continue; // `fn(...)` pointer type, no name
            };
            // Brace-count from the opener to the body's close.
            let mut braces = 0i64;
            let mut end = open_line;
            'count: for (j, l) in lines.iter().enumerate().skip(open_line) {
                let start = if j == open_line { open_col } else { 0 };
                for b in l.code.as_bytes()[start..].iter() {
                    match b {
                        b'{' => braces += 1,
                        b'}' => {
                            braces -= 1;
                            if braces <= 0 {
                                end = j;
                                break 'count;
                            }
                        }
                        _ => {}
                    }
                }
                end = j;
            }
            let is_test = sf.in_test[i] || attr_block_has_test(lines, i);
            out.push(FnItem {
                file: file_idx,
                line: i,
                end,
                qual: format!("{}::{}", sf.module_path, sig.0),
                name: sig.0,
                params: sig.1,
                ret: sig.2,
                has_self: sig.3,
                is_test,
            });
        }
    }
    out
}

/// `#[test]` / `#[bench]` in the contiguous attribute block above.
fn attr_block_has_test(lines: &[LineView], idx: usize) -> bool {
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        if l.is_attribute() {
            if l.code.contains("#[test]") || l.code.contains("#[bench]") {
                return true;
            }
            continue;
        }
        if l.is_comment_only() || l.is_code_blank() {
            continue;
        }
        break;
    }
    false
}

/// Parse `name<T, …>(params) -> ret` from the text after `fn`. Returns
/// `(name, params, ret, has_self)`; `None` when there is no name
/// (fn-pointer types).
#[allow(clippy::type_complexity)]
fn parse_signature(header: &str) -> Option<(String, Vec<Param>, String, bool)> {
    let rest = header.trim_start();
    let name: String = rest
        .chars()
        .take_while(|&c| lexer::is_ident_char(c))
        .collect();
    if name.is_empty() {
        return None;
    }
    let mut after = &rest[name.len()..];
    after = after.trim_start();
    // Skip generic parameters.
    if after.starts_with('<') {
        let mut depth = 0i64;
        let mut cut = after.len();
        for (k, c) in after.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = k + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        after = after[cut..].trim_start();
    }
    if !after.starts_with('(') {
        return None;
    }
    let mut depth = 0i64;
    let mut close = after.len();
    for (k, c) in after.char_indices() {
        match c {
            '(' | '[' | '<' => depth += 1,
            ')' | ']' | '>' => {
                depth -= 1;
                if depth == 0 && c == ')' {
                    close = k;
                    break;
                }
            }
            _ => {}
        }
    }
    let params_text = &after[1..close.min(after.len())];
    let tail = after.get(close + 1..).unwrap_or("");
    let ret = match tail.find("->") {
        Some(p) => {
            let r = &tail[p + 2..];
            let r = match r.find(" where ") {
                Some(w) => &r[..w],
                None => r,
            };
            r.trim().to_string()
        }
        None => String::new(),
    };
    let mut params = Vec::new();
    let mut has_self = false;
    for (pi, piece) in split_top_level(params_text).into_iter().enumerate() {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        if pi == 0 && !lexer::word_positions(piece, "self").is_empty() && !piece.contains(':') {
            has_self = true;
            continue;
        }
        let Some(colon) = find_top_level_colon(piece) else {
            continue;
        };
        let (pat, ty) = (&piece[..colon], &piece[colon + 1..]);
        let name = audit::binders(pat).pop().unwrap_or_default();
        if !name.is_empty() {
            params.push(Param {
                name,
                ty: ty.trim().to_string(),
            });
        }
    }
    Some((name, params, ret, has_self))
}

/// Split on commas at bracket depth 0.
pub(crate) fn split_top_level(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut start = 0usize;
    for (k, c) in s.char_indices() {
        match c {
            '(' | '[' | '<' | '{' => depth += 1,
            ')' | ']' | '>' | '}' => depth -= 1,
            ',' if depth == 0 => {
                out.push(s[start..k].to_string());
                start = k + 1;
            }
            _ => {}
        }
    }
    out.push(s[start..].to_string());
    out
}

/// First `:` at bracket depth 0 that is not part of `::`.
pub(crate) fn find_top_level_colon(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut depth = 0i64;
    let mut k = 0usize;
    while k < bytes.len() {
        match bytes[k] {
            b'(' | b'[' | b'<' | b'{' => depth += 1,
            b')' | b']' | b'>' | b'}' => depth -= 1,
            b':' if depth == 0 => {
                if bytes.get(k + 1) == Some(&b':') {
                    k += 2;
                    continue;
                }
                return Some(k);
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// Parse `ATOMIC(<role>)` / `ATOMIC(<role>): <why>` occurrences in one
/// comment string. Mirrors the AUDIT grammar; returns `(role, has_why)`
/// pairs. Placeholder text like `ATOMIC(<role>)` in prose is skipped.
pub fn atomic_annotations_in(comment: &str) -> Vec<(String, bool)> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(p) = comment[from..].find("ATOMIC(") {
        let at = from + p;
        let rest = &comment[at + "ATOMIC(".len()..];
        from = at + "ATOMIC(".len();
        let Some(close) = rest.find(')') else {
            continue;
        };
        let role = rest[..close].trim().to_string();
        if !role.chars().all(|c| lexer::is_ident_char(c) || c == '-') || role.is_empty() {
            continue;
        }
        let after = &rest[close + 1..];
        let has_why = after
            .strip_prefix(':')
            .is_some_and(|tail| !tail.trim().is_empty());
        out.push((role, has_why));
    }
    out
}

/// The covering ATOMIC annotation for a declaration at line `idx`:
/// same line or the contiguous comment/attribute block directly above.
/// Returns `(annotation_line, role_text)`.
pub fn atomic_annotation_at(lines: &[LineView], idx: usize) -> Option<(usize, String)> {
    let pick = |j: usize| -> Option<(usize, String)> {
        atomic_annotations_in(&lines[j].comment)
            .into_iter()
            .next()
            .map(|(role, _)| (j, role))
    };
    if let Some(hit) = pick(idx) {
        return Some(hit);
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        if l.is_comment_only() || l.is_attribute() {
            if let Some(hit) = pick(j) {
                return Some(hit);
            }
            continue;
        }
        break;
    }
    None
}

/// Scan one file for atomic declarations. `aliases` is the crate's
/// atomic-bearing `type` aliases as `(name, role)`.
fn scan_atomics(
    file_idx: usize,
    sf: &SourceFile,
    aliases: &[(String, Option<Role>)],
) -> Vec<AtomicDecl> {
    let lines = &sf.lines;
    let mut out = Vec::new();
    for (i, l) in lines.iter().enumerate() {
        let code = &l.code;
        let trimmed = code.trim();
        if trimmed.starts_with("use ") || trimmed.starts_with("pub use ") {
            continue;
        }
        // Which atomic type (or annotated alias) does this line mention
        // in a *type* position? `AtomicU64::new(` is an expression, not
        // a declaration.
        let mut via_alias: Option<String> = None;
        let mut mentions = false;
        for ty in ATOMIC_TYPES {
            for p in lexer::word_positions(code, ty) {
                let after = code[p + ty.len()..].trim_start();
                if !after.starts_with("::") {
                    mentions = true;
                }
            }
        }
        if !mentions {
            for (alias, _) in aliases {
                for p in lexer::word_positions(code, alias) {
                    let after = code[p + alias.len()..].trim_start();
                    if !after.starts_with("::") {
                        mentions = true;
                        via_alias = Some(alias.clone());
                    }
                }
            }
        }
        if !mentions {
            continue;
        }
        // Classify the declaration form and extract the declared name.
        let (name, is_alias) = if let Some(p) = lexer::word_positions(code, "type").first() {
            let rest = &code[p + 4..];
            let name: String = rest
                .trim_start()
                .chars()
                .take_while(|&c| lexer::is_ident_char(c))
                .collect();
            (name, true)
        } else if let Some(p) = lexer::word_positions(code, "static").first() {
            let rest = code[p + 6..].trim_start();
            let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
            let name: String = rest
                .chars()
                .take_while(|&c| lexer::is_ident_char(c))
                .collect();
            (name, false)
        } else if let Some(p) = lexer::word_positions(code, "let").first() {
            // Only `let name: <atomic type> = …` counts as a declaration;
            // atomics threaded through untyped lets resolve via their
            // originating field/static instead.
            let rest = &code[p + 3..];
            let Some(colon) = find_top_level_colon(rest) else {
                continue;
            };
            let ty_has_atomic = {
                let ty = &rest[colon + 1..];
                ATOMIC_TYPES
                    .iter()
                    .any(|t| !lexer::word_positions(ty, t).is_empty())
                    || aliases
                        .iter()
                        .any(|(a, _)| !lexer::word_positions(ty, a).is_empty())
            };
            if !ty_has_atomic {
                continue;
            }
            let name = audit::binders(&rest[..colon]).pop().unwrap_or_default();
            (name, false)
        } else if let Some(colon) = find_top_level_colon(trimmed) {
            // Struct field: `pub counters: Arc<CounterShard>,`. The
            // atomic mention must sit in the type, after the colon.
            let (head, ty) = (&trimmed[..colon], &trimmed[colon + 1..]);
            let ty_has_atomic = ATOMIC_TYPES
                .iter()
                .any(|t| !lexer::word_positions(ty, t).is_empty())
                || aliases
                    .iter()
                    .any(|(a, _)| !lexer::word_positions(ty, a).is_empty());
            if !ty_has_atomic {
                continue;
            }
            let name = audit::idents(head)
                .into_iter()
                .rfind(|w| w != "pub" && w != "crate" && w != "super")
                .unwrap_or_default();
            (name, false)
        } else {
            continue;
        };
        if name.is_empty() {
            continue;
        }
        let annotation = atomic_annotation_at(lines, i);
        let (role_line, role_raw) = match &annotation {
            Some((line, role)) => (Some(*line), Some(role.clone())),
            None => (None, None),
        };
        let mut role = role_raw.as_deref().and_then(Role::parse);
        if role.is_none() && role_raw.is_none() {
            // Inherit from the referenced annotated alias.
            if let Some(alias) = &via_alias {
                role = aliases
                    .iter()
                    .find(|(a, _)| a == alias)
                    .and_then(|(_, r)| *r);
            }
        }
        out.push(AtomicDecl {
            file: file_idx,
            line: i,
            name,
            role,
            role_raw,
            role_line,
            is_alias,
            via_alias,
            in_test: sf.in_test[i],
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        Workspace::from_sources(&[("cscv-demo", "crates/demo/src/lib.rs", src)])
    }

    #[test]
    fn fn_items_capture_signature_and_span() {
        let w = ws("pub fn scale(xs: &mut [f64], k: usize) -> u32 {\n    let n = xs.len();\n    n as u32\n}\n");
        assert_eq!(w.fns.len(), 1);
        let f = &w.fns[0];
        assert_eq!(f.name, "scale");
        assert_eq!(f.qual, "cscv_demo::scale");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[1].name, "k");
        assert_eq!(f.params[1].ty, "usize");
        assert_eq!(f.ret, "u32");
        assert!(!f.has_self);
        assert_eq!((f.line, f.end), (0, 3));
    }

    #[test]
    fn methods_and_generics_parse() {
        let w = ws("impl X {\n    fn get_mut<T: Copy>(&mut self, i: usize) -> &mut T {\n        todo_body()\n    }\n}\n");
        assert_eq!(w.fns.len(), 1);
        assert!(w.fns[0].has_self);
        assert_eq!(w.fns[0].params[0].name, "i");
    }

    #[test]
    fn module_paths_follow_file_layout() {
        let w = Workspace::from_sources(&[
            ("cscv-core", "crates/core/src/lib.rs", "fn a() {}\n"),
            ("cscv-core", "crates/core/src/exec.rs", "fn b() {}\n"),
            (
                "cscv-core",
                "crates/core/src/formats/csr5.rs",
                "fn c() {}\n",
            ),
        ]);
        let quals: Vec<&str> = w.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(
            quals,
            vec![
                "cscv_core::a",
                "cscv_core::exec::b",
                "cscv_core::formats::csr5::c"
            ]
        );
    }

    #[test]
    fn imports_expand_groups_and_renames() {
        let w =
            ws("use crate::pool::{ThreadPool, spawn_all as spawn};\nuse cscv_trace::counters;\n");
        let f = &w.files[0];
        let find = |a: &str| {
            f.imports
                .iter()
                .find(|i| i.alias == a)
                .map(|i| i.path.clone())
        };
        assert_eq!(find("ThreadPool"), Some("crate::pool::ThreadPool".into()));
        assert_eq!(find("spawn"), Some("crate::pool::spawn_all".into()));
        assert_eq!(find("counters"), Some("cscv_trace::counters".into()));
    }

    #[test]
    fn atomic_static_with_role_annotation() {
        let w = ws("// ATOMIC(statistic): monotonically increasing id source.\nstatic SEQ: AtomicU64 = AtomicU64::new(0);\n");
        assert_eq!(w.atomics.len(), 1);
        let d = &w.atomics[0];
        assert_eq!(d.name, "SEQ");
        assert_eq!(d.role, Some(Role::Statistic));
        assert_eq!(d.role_line, Some(0));
    }

    #[test]
    fn alias_role_inherited_by_fields() {
        let src = "// ATOMIC(statistic): per-thread counter shard.\npub type Shard = [AtomicU64; 4];\nstruct Slot {\n    counters: std::sync::Arc<Shard>,\n}\n";
        let w = ws(src);
        let field = w.atomics.iter().find(|d| d.name == "counters").unwrap();
        assert_eq!(field.role, Some(Role::Statistic));
        assert_eq!(field.via_alias.as_deref(), Some("Shard"));
    }

    #[test]
    fn expression_new_is_not_a_declaration() {
        let w = ws("fn f() {\n    go(AtomicU64::new(0));\n}\n");
        assert!(w.atomics.is_empty());
    }

    #[test]
    fn test_attr_marks_fn_as_test() {
        let w = ws("#[test]\nfn t() {\n    helper();\n}\nfn helper() {}\n");
        assert!(w.fns.iter().find(|f| f.name == "t").unwrap().is_test);
        assert!(!w.fns.iter().find(|f| f.name == "helper").unwrap().is_test);
    }
}
