//! Index-domain provenance (`index-domain` rule family).
//!
//! CSCV juggles eight index spaces — original row/col ids, group/lane
//! coordinates, nnz offsets, permuted positions, shard-local rows and
//! worker column windows — and the classic failure mode is subscripting
//! a buffer with an index from the wrong space. This pass makes the
//! spaces explicit and checks them:
//!
//! * a machine-readable **catalog** ([`Catalog`], mirrored by the
//!   committed `crates/xtask/domain_catalog.json`) names the domains,
//!   the legal offset translations between them, and the return domains
//!   of index-producing APIs addressed by qualified-name suffix;
//! * `// DOMAIN(<d>)` **annotations** tag further sources in place: on
//!   a `fn` header the return value is an index in `<d>`; on a `let` /
//!   `static` / struct-field declaration the binding is either a scalar
//!   index in `<d>` or — for indexable types — a buffer whose
//!   *subscripts* must be in `<d>`. The two-domain form
//!   `// DOMAIN(A -> B)` declares a translator buffer (subscripts in
//!   `A`, elements are indices in `B` — a permutation array), and
//!   `// DOMAIN(_ -> B)` a buffer with unchecked subscripts whose
//!   elements are indices in `B`;
//! * domains **propagate** through the same 8-round inter-procedural
//!   fixpoint shape as the taint passes: `let` copies, call returns,
//!   call arguments into callee parameters (joining conflicting call
//!   sites to an opaque *mixed* state), translator-array subscripts,
//!   and the offset arithmetic the catalog declares legal
//!   (`global - global -> local`, `local + global -> global`);
//! * every subscript of a buffer with a declared subscript domain is
//!   **checked**: a known index domain that doesn't match is a finding
//!   with the witness chain of how the domain arrived, vettable with
//!   `// AUDIT(domain-ok): <why>`;
//! * DOMAIN annotations that attach to nothing (or name an unknown
//!   domain) are reported stale, same as AUDIT/ATOMIC staleness.
//!
//! The pass is deliberately silent when either side is unknown: it
//! gates the *annotated* index flows without guessing about plain
//! loop counters.

use super::dataflow::{call_args, covering_annotation_line};
use super::symbols::Workspace;
use super::{Finding, RULE_INDEX_DOMAIN, RULE_STALE};
use crate::audit;
use crate::lexer;
use cscv_trace::json::Json;
use std::collections::BTreeMap;
use std::path::Path;

/// Fixpoint round budget, matched to the taint passes.
const ROUNDS: usize = 8;

/// Join result for conflicting domains (never reported against).
const MIXED: &str = "!mixed";

// ---------------------------------------------------------------------------
// Catalog.
// ---------------------------------------------------------------------------

/// The machine-readable domain catalog. [`Catalog::builtin`] is the
/// source of truth; `crates/xtask/domain_catalog.json` is its committed
/// JSON rendering (kept in sync by a unit test) so external tooling can
/// consume the same data without running the analyzer.
#[derive(Debug, Clone)]
pub struct Catalog {
    /// Canonical domain names.
    pub domains: Vec<String>,
    /// `(global, local)` offset pairs: `global - global` yields the
    /// local domain, `local + global` yields back the global.
    pub offsets: Vec<(String, String)>,
    /// `(qualified-name suffix, return domain)` for index-producing
    /// APIs tagged without a source annotation.
    pub apis: Vec<(String, String)>,
}

impl Catalog {
    pub fn builtin() -> Catalog {
        let s = |x: &str| x.to_string();
        Catalog {
            domains: [
                "RowId",
                "ColId",
                "GroupId",
                "LaneId",
                "NnzIdx",
                "PermutedPos",
                "ShardLocalRow",
                "ColWindowOff",
            ]
            .iter()
            .map(|d| s(d))
            .collect(),
            offsets: vec![
                (s("RowId"), s("ShardLocalRow")),
                (s("ColId"), s("ColWindowOff")),
            ],
            apis: vec![
                (s("layout::row_index"), s("RowId")),
                (s("layout::col_index"), s("ColId")),
            ],
        }
    }

    /// Parse the JSON rendering (see `domain_catalog.json`).
    pub fn parse(text: &str) -> Result<Catalog, String> {
        let json = Json::parse(text)?;
        let str_arr = |key: &str| -> Vec<String> {
            json.get(key)
                .and_then(Json::as_arr)
                .map(|a| {
                    a.iter()
                        .filter_map(Json::as_str)
                        .map(str::to_string)
                        .collect()
                })
                .unwrap_or_default()
        };
        let pair_arr = |key: &str, a: &str, b: &str| -> Vec<(String, String)> {
            json.get(key)
                .and_then(Json::as_arr)
                .map(|arr| {
                    arr.iter()
                        .filter_map(|o| {
                            let ga = o.get(a).and_then(Json::as_str)?;
                            let gb = o.get(b).and_then(Json::as_str)?;
                            Some((ga.to_string(), gb.to_string()))
                        })
                        .collect()
                })
                .unwrap_or_default()
        };
        let domains = str_arr("domains");
        if domains.is_empty() {
            return Err("domain catalog: empty or missing `domains`".into());
        }
        Ok(Catalog {
            domains,
            offsets: pair_arr("offsets", "global", "local"),
            apis: pair_arr("apis", "fn", "returns"),
        })
    }

    /// Load `crates/xtask/domain_catalog.json` under `root`, falling
    /// back to the builtin catalog when the file doesn't exist.
    pub fn load(root: &Path) -> Result<Catalog, String> {
        let path = root.join("crates/xtask/domain_catalog.json");
        match std::fs::read_to_string(&path) {
            Ok(text) => Catalog::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Catalog::builtin()),
            Err(e) => Err(format!("read {}: {e}", path.display())),
        }
    }

    /// The committed JSON rendering of this catalog.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"domains\": [");
        out.push_str(
            &self
                .domains
                .iter()
                .map(|d| format!("\"{d}\""))
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push_str("],\n  \"offsets\": [\n");
        let offs: Vec<String> = self
            .offsets
            .iter()
            .map(|(g, l)| format!("    {{\"global\": \"{g}\", \"local\": \"{l}\"}}"))
            .collect();
        out.push_str(&offs.join(",\n"));
        out.push_str("\n  ],\n  \"apis\": [\n");
        let apis: Vec<String> = self
            .apis
            .iter()
            .map(|(f, d)| format!("    {{\"fn\": \"{f}\", \"returns\": \"{d}\"}}"))
            .collect();
        out.push_str(&apis.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }

    fn is_domain(&self, name: &str) -> bool {
        self.domains.iter().any(|d| d == name)
    }

    /// `global - global` produces this local domain.
    fn local_of(&self, global: &str) -> Option<&str> {
        self.offsets
            .iter()
            .find(|(g, _)| g == global)
            .map(|(_, l)| l.as_str())
    }

    /// `local + global` produces back this global domain.
    fn global_of(&self, local: &str) -> Option<&str> {
        self.offsets
            .iter()
            .find(|(_, l)| l == local)
            .map(|(g, _)| g.as_str())
    }

    /// Return domain of a fn by catalog qualified-name suffix.
    fn api_return(&self, qual: &str) -> Option<&str> {
        self.apis
            .iter()
            .find(|(suffix, _)| qual == suffix || qual.ends_with(&format!("::{suffix}")))
            .map(|(_, d)| d.as_str())
    }
}

// ---------------------------------------------------------------------------
// DOMAIN(<d>) annotations.
// ---------------------------------------------------------------------------

/// One parsed `DOMAIN(...)` spec: `(subscript-or-return, element)`.
/// `DOMAIN(RowId)` → `("RowId", None)`; `DOMAIN(RowId -> NnzIdx)` →
/// `("RowId", Some("NnzIdx"))`; `DOMAIN(_ -> ColId)` → `("_",
/// Some("ColId"))`.
pub fn domain_annotations_in(comment: &str) -> Vec<(String, Option<String>)> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(p) = comment[from..].find("DOMAIN(") {
        let at = from + p;
        // `DOMAIN(` mid-word (e.g. `XDOMAIN(`) is not an annotation.
        if at > 0 && lexer::is_ident_char(comment[..at].chars().next_back().unwrap_or(' ')) {
            from = at + "DOMAIN(".len();
            continue;
        }
        let rest = &comment[at + "DOMAIN(".len()..];
        from = at + "DOMAIN(".len();
        let Some(close) = rest.find(')') else {
            continue;
        };
        let inner = rest[..close].trim();
        // Prose like `DOMAIN(<d>)` in docs is not an annotation.
        if !inner
            .chars()
            .all(|c| lexer::is_ident_char(c) || c == '-' || c == '>' || c == ' ' || c == '_')
        {
            continue;
        }
        match inner.split_once("->") {
            Some((a, b)) => out.push((a.trim().to_string(), Some(b.trim().to_string()))),
            None => out.push((inner.to_string(), None)),
        }
    }
    out
}

/// Same-line or contiguous-comment-block-above coverage, for
/// `DOMAIN(...)` (the AUDIT helper is keyed, so this mirrors it).
fn covering_domain_line(
    lines: &[lexer::LineView],
    idx: usize,
) -> Option<(usize, String, Option<String>)> {
    let hit = |li: usize| -> Option<(usize, String, Option<String>)> {
        domain_annotations_in(&lines[li].comment)
            .into_iter()
            .next()
            .map(|(a, b)| (li, a, b))
    };
    if let Some(h) = hit(idx) {
        return Some(h);
    }
    let mut li = idx;
    while li > 0 {
        li -= 1;
        let l = &lines[li];
        let code = l.code.trim();
        let is_attr = code.starts_with("#[") || code.starts_with("#!");
        if !code.is_empty() && !is_attr {
            return None;
        }
        if l.comment.trim().is_empty() && code.is_empty() && !is_attr {
            return None;
        }
        if let Some(h) = hit(li) {
            return Some(h);
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Declarations the annotations attach to.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct BufferDecl {
    file: usize,
    /// 0-based declaration line.
    line: usize,
    name: String,
    /// Declared subscript domain (`None` for the `_` wildcard).
    sub: Option<String>,
    /// Element domain for translator buffers.
    elem: Option<String>,
    /// Struct-field / static declaration: matched crate-wide through
    /// any receiver (`self.name`, `m.name`); otherwise scoped to the
    /// enclosing fn.
    field: bool,
}

#[derive(Debug)]
struct ScalarDecl {
    file: usize,
    line: usize,
    name: String,
    domain: String,
}

#[derive(Debug, Default)]
struct Decls {
    /// fn id → declared return domain.
    fn_ret: BTreeMap<usize, String>,
    buffers: Vec<BufferDecl>,
    scalars: Vec<ScalarDecl>,
}

/// The declaration-ish binder a `DOMAIN` annotation on `code` targets:
/// `let [mut] x`, `static X`, `pub x: T` (struct field), `x: T,` in a
/// struct body. Returns `(name, looks_indexable)`.
fn decl_target(code: &str) -> Option<(String, bool)> {
    let t = code.trim();
    let indexable = |ty: &str| {
        ty.contains("Vec<")
            || ty.contains('[')
            || ty.contains("vec!")
            || ty.contains("with_capacity")
            || ty.contains("collect()")
    };
    if let Some(rest) = t.strip_prefix("let ") {
        let rest = rest.strip_prefix("mut ").unwrap_or(rest);
        let name: String = rest
            .chars()
            .take_while(|&c| lexer::is_ident_char(c))
            .collect();
        if name.is_empty() {
            return None;
        }
        return Some((name, indexable(rest)));
    }
    for kw in ["static ", "pub static "] {
        if let Some(rest) = t.strip_prefix(kw) {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            let name: String = rest
                .chars()
                .take_while(|&c| lexer::is_ident_char(c))
                .collect();
            if name.is_empty() {
                return None;
            }
            return Some((name, indexable(rest)));
        }
    }
    // Struct field: `name: Type,` optionally pub-qualified.
    let f = t
        .strip_prefix("pub(crate) ")
        .or_else(|| t.strip_prefix("pub "))
        .unwrap_or(t);
    let name: String = f.chars().take_while(|&c| lexer::is_ident_char(c)).collect();
    if !name.is_empty() && f[name.len()..].trim_start().starts_with(':') && !f.contains('(') {
        return Some((name, indexable(f)));
    }
    None
}

/// Scan every `DOMAIN` annotation, attach each to a fn header or a
/// declaration, and report the ones that attach to nothing (or name an
/// unknown domain) as stale.
fn collect_decls(ws: &Workspace, catalog: &Catalog, findings: &mut Vec<Finding>) -> Decls {
    let mut decls = Decls::default();
    for (fi, sf) in ws.files.iter().enumerate() {
        for (li, l) in sf.lines.iter().enumerate() {
            if sf.in_test[li] {
                continue;
            }
            // Doc comments are prose.
            let trimmed = l.comment.trim_start();
            if trimmed.starts_with("///") || trimmed.starts_with("//!") {
                continue;
            }
            for (a, b) in domain_annotations_in(&l.comment) {
                let stale = |msg: String, decls_sal: &str| Finding {
                    rule: RULE_STALE,
                    file: sf.rel.clone(),
                    line: li + 1,
                    symbol: format!(
                        "DOMAIN({a}{})",
                        b.as_deref().map(|e| format!(" -> {e}")).unwrap_or_default()
                    ),
                    message: msg,
                    chain: Vec::new(),
                    salient: format!("domain|{decls_sal}|{}", sf.rel.display()),
                    suppressed_at: None,
                };
                // Unknown domain name: stale/bad.
                let names_ok = (a == "_" || catalog.is_domain(&a))
                    && b.as_deref().is_none_or(|e| catalog.is_domain(e));
                if !names_ok {
                    findings.push(stale(
                        format!(
                            "`DOMAIN({a}{})` (line {}) names a domain outside the catalog — \
                             see crates/xtask/domain_catalog.json",
                            b.as_deref().map(|e| format!(" -> {e}")).unwrap_or_default(),
                            li + 1
                        ),
                        &format!("unknown|{a}"),
                    ));
                    continue;
                }
                // A fn whose header this annotation covers?
                let fn_hit = ws.fns.iter().enumerate().find(|(_, f)| {
                    f.file == fi
                        && covering_domain_line(&sf.lines, f.line).map(|(at, _, _)| at) == Some(li)
                });
                if let Some((id, _)) = fn_hit {
                    if a != "_" && b.is_none() {
                        decls.fn_ret.insert(id, a.clone());
                        continue;
                    }
                    // Translator form on a fn is not supported; flag it.
                    findings.push(stale(
                        format!(
                            "`DOMAIN({a} -> {})` (line {}) covers a fn header — fns declare \
                             a plain return domain, translator arrays use the arrow form",
                            b.as_deref().unwrap_or("_"),
                            li + 1
                        ),
                        &format!("fn-arrow|{a}"),
                    ));
                    continue;
                }
                // The next code-bearing line (or this one) must be a
                // declaration.
                let mut target = None;
                for cli in li..sf.lines.len().min(li + 4) {
                    let code = sf.lines[cli].code.trim();
                    if code.is_empty() || code.starts_with("#[") || code.starts_with("#!") {
                        continue;
                    }
                    target = decl_target(code).map(|t| (cli, t));
                    break;
                }
                let Some((dli, (name, indexable))) = target else {
                    findings.push(stale(
                        format!(
                            "`DOMAIN({a})` (line {}) attaches to no fn header or \
                             declaration — the tagged item moved; delete the annotation",
                            li + 1
                        ),
                        &format!("unattached|{a}"),
                    ));
                    continue;
                };
                let enclosing = ws.enclosing_fn(fi, dli);
                let field = enclosing.is_none();
                if b.is_some() || indexable {
                    decls.buffers.push(BufferDecl {
                        file: fi,
                        line: dli,
                        name,
                        sub: (a != "_").then(|| a.clone()),
                        elem: b.clone(),
                        field,
                    });
                } else {
                    decls.scalars.push(ScalarDecl {
                        file: fi,
                        line: dli,
                        name,
                        domain: a.clone(),
                    });
                }
            }
        }
    }
    decls
}

// ---------------------------------------------------------------------------
// Expression-level domain evaluation.
// ---------------------------------------------------------------------------

/// The identifier chain ending just before byte `at` (exclusive):
/// `self.row_ptr` for `self.row_ptr[`, `perm` for `perm[`.
fn base_before(code: &str, at: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut k = at;
    while k > 0 {
        let c = bytes[k - 1] as char;
        if lexer::is_ident_char(c) || c == '.' {
            k -= 1;
        } else {
            break;
        }
    }
    if k == at {
        return None;
    }
    let base = &code[k..at];
    if base.starts_with('.') || base.ends_with('.') || base.is_empty() {
        return None;
    }
    Some(base.to_string())
}

/// The text between the subscript's `[` at `open` and its matching `]`.
fn subscript_inner(code: &str, open: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&code[open + 1..i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Split `expr` on the last top-level occurrence of `op`, respecting
/// parens/brackets. Returns `(lhs, rhs)`.
fn split_top_op(expr: &str, op: char) -> Option<(&str, &str)> {
    let bytes = expr.as_bytes();
    let mut depth = 0i32;
    for i in (0..bytes.len()).rev() {
        match bytes[i] {
            b')' | b']' => depth += 1,
            b'(' | b'[' => depth -= 1,
            b if depth == 0 && b == op as u8 => {
                // `->`, `>-`-style and unary minus at the start are not
                // arithmetic splits.
                if i == 0 || bytes[i - 1] == b'<' || bytes[i - 1] == b'-' {
                    continue;
                }
                return Some((&expr[..i], &expr[i + 1..]));
            }
            _ => {}
        }
    }
    None
}

/// Domain of `expr` given the known variable domains of the enclosing
/// fn. `None` = unknown (never reported); [`MIXED`] joins count as
/// unknown at the check, but poison copies.
fn expr_domain(expr: &str, vars: &BTreeMap<String, String>, catalog: &Catalog) -> Option<String> {
    let mut t = expr.trim();
    // Strip a trailing cast: `x as usize`.
    if let Some(pos) = lexer::word_positions(t, "as").first().copied() {
        t = t[..pos].trim_end();
    }
    // Strip redundant outer parens.
    while t.starts_with('(') && t.ends_with(')') && subscript_like_balanced(t) {
        t = t[1..t.len() - 1].trim();
    }
    if t.contains("..") {
        return None;
    }
    // Plain variable (possibly a field chain used as a value).
    if !t.is_empty() && t.chars().all(|c| lexer::is_ident_char(c) || c == '.') {
        let leaf = t.rsplit('.').next().unwrap_or(t);
        return vars.get(t).or_else(|| vars.get(leaf)).cloned();
    }
    // Offset arithmetic.
    for op in ['-', '+'] {
        if let Some((lhs, rhs)) = split_top_op(t, op) {
            let ld = expr_domain(lhs, vars, catalog)?;
            let rd = expr_domain(rhs, vars, catalog)?;
            if ld == MIXED || rd == MIXED {
                return Some(MIXED.to_string());
            }
            return match op {
                // global - global → local counterpart.
                '-' if ld == rd => catalog.local_of(&ld).map(str::to_string),
                // local + global (either order) → global.
                '+' if catalog.global_of(&ld) == Some(rd.as_str()) => Some(rd),
                '+' if catalog.global_of(&rd) == Some(ld.as_str()) => Some(ld),
                _ => None,
            };
        }
    }
    None
}

/// True when the parens in `t` stay balanced strictly inside (so
/// stripping the outer pair is safe).
fn subscript_like_balanced(t: &str) -> bool {
    let mut depth = 0i32;
    for (i, b) in t.bytes().enumerate() {
        match b {
            b'(' | b'[' => depth += 1,
            b')' | b']' => {
                depth -= 1;
                if depth == 0 && i != t.len() - 1 {
                    return false;
                }
            }
            _ => {}
        }
    }
    depth == 0
}

/// `let [mut] <ident> … = <expr>` on one line: `(binder, rhs)`.
fn let_assignment(code: &str) -> Option<(String, String)> {
    let t = code.trim();
    let rest = t.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|&c| lexer::is_ident_char(c))
        .collect();
    if name.is_empty() {
        return None;
    }
    let eq = rest.find('=')?;
    if rest.as_bytes().get(eq + 1) == Some(&b'=') {
        return None;
    }
    let rhs = rest[eq + 1..]
        .trim()
        .trim_end_matches([';', ','])
        .to_string();
    Some((name, rhs))
}

// ---------------------------------------------------------------------------
// The inter-procedural flow and the rule.
// ---------------------------------------------------------------------------

/// Per-fn variable domains plus provenance chains (qualified fn names,
/// innermost last) describing how each domain arrived.
pub struct DomainFlow {
    vars: Vec<BTreeMap<String, String>>,
    prov: Vec<BTreeMap<String, Vec<String>>>,
}

/// Join a domain fact into `(vars, prov)`; conflicting re-binding
/// poisons to [`MIXED`]. Returns true when something changed.
fn join(
    vars: &mut BTreeMap<String, String>,
    prov: &mut BTreeMap<String, Vec<String>>,
    name: &str,
    dom: &str,
    chain: Vec<String>,
) -> bool {
    match vars.get(name) {
        None => {
            vars.insert(name.to_string(), dom.to_string());
            prov.insert(name.to_string(), chain);
            true
        }
        Some(have) if have == dom || have == MIXED => false,
        Some(_) => {
            vars.insert(name.to_string(), MIXED.to_string());
            prov.insert(name.to_string(), Vec::new());
            true
        }
    }
}

/// Resolve the buffer declaration a subscript base refers to: a
/// fn-local `let` in the same fn wins, then a crate-wide field/static
/// by leaf name.
fn resolve_buffer<'d>(
    decls: &'d Decls,
    ws: &Workspace,
    fi: usize,
    fn_id: usize,
    base: &str,
) -> Option<&'d BufferDecl> {
    let leaf = base.rsplit('.').next().unwrap_or(base);
    let crate_idx = ws.files[fi].crate_idx;
    decls
        .buffers
        .iter()
        .find(|b| {
            !b.field
                && b.name == base
                && b.file == fi
                && ws.enclosing_fn(b.file, b.line) == Some(fn_id)
        })
        .or_else(|| {
            decls
                .buffers
                .iter()
                .find(|b| b.field && b.name == leaf && ws.files[b.file].crate_idx == crate_idx)
        })
}

/// Run the domain-propagation fixpoint and emit `index-domain`
/// findings plus DOMAIN staleness into `out`.
pub fn index_domains(
    ws: &Workspace,
    cg: &super::callgraph::CallGraph,
    catalog: &Catalog,
    out: &mut Vec<Finding>,
) {
    let decls = collect_decls(ws, catalog, out);
    let mut flow = DomainFlow {
        vars: vec![BTreeMap::new(); ws.fns.len()],
        prov: vec![BTreeMap::new(); ws.fns.len()],
    };

    // Seed scalar declarations.
    for s in &decls.scalars {
        if let Some(id) = ws.enclosing_fn(s.file, s.line) {
            join(
                &mut flow.vars[id],
                &mut flow.prov[id],
                &s.name,
                &s.domain,
                vec![ws.fns[id].qual.clone()],
            );
        }
    }

    // Return domain of a callee: source annotation first, catalog API
    // suffix second.
    let ret_domain = |id: usize| -> Option<&str> {
        decls
            .fn_ret
            .get(&id)
            .map(String::as_str)
            .or_else(|| catalog.api_return(&ws.fns[id].qual))
    };

    for _ in 0..ROUNDS {
        let mut changed = false;
        for (caller, f) in ws.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let sf = &ws.files[f.file];
            // Split borrows: transfer reads local state and writes both
            // local (lets) and remote (callee params) state, so stage
            // updates and apply after the scan of each fn.
            let mut local: Vec<(String, String, Vec<String>)> = Vec::new();
            let mut remote: Vec<(usize, String, String, Vec<String>)> = Vec::new();
            {
                let vars = &flow.vars[caller];
                for li in f.line..=f.end.min(sf.lines.len().saturating_sub(1)) {
                    if sf.in_test[li] || ws.enclosing_fn(f.file, li) != Some(caller) {
                        continue;
                    }
                    let code = &sf.lines[li].code;
                    // `let x = …`: call returns, translator subscripts,
                    // copies, offset arithmetic.
                    if let Some((binder, rhs)) = let_assignment(code) {
                        let mut assigned: Option<(String, Vec<String>)> = None;
                        // A call with a declared return domain — all
                        // resolved callees on this line must agree.
                        let callees: Vec<usize> = cg.out[caller]
                            .iter()
                            .filter(|e| e.line == li)
                            .map(|e| e.callee)
                            .collect();
                        let doms: Vec<&str> =
                            callees.iter().filter_map(|&id| ret_domain(id)).collect();
                        if !doms.is_empty() && doms.iter().all(|d| *d == doms[0]) {
                            let src = callees
                                .iter()
                                .find(|&&id| ret_domain(id).is_some())
                                .map(|&id| ws.fns[id].qual.clone())
                                .unwrap_or_default();
                            assigned = Some((doms[0].to_string(), vec![src, f.qual.clone()]));
                        }
                        // Translator-array subscript: `let p = perm[r];`.
                        if assigned.is_none() {
                            for open in audit::subscript_positions(&rhs) {
                                let Some(base) = base_before(&rhs, open) else {
                                    continue;
                                };
                                let Some(b) = resolve_buffer(&decls, ws, f.file, caller, &base)
                                else {
                                    continue;
                                };
                                if let Some(elem) = &b.elem {
                                    assigned = Some((
                                        elem.clone(),
                                        vec![format!("{base}[]"), f.qual.clone()],
                                    ));
                                }
                                break;
                            }
                        }
                        // Copy / offset arithmetic.
                        if assigned.is_none() {
                            if let Some(d) = expr_domain(&rhs, vars, catalog) {
                                let chain = vars
                                    .get(rhs.trim())
                                    .and_then(|_| flow.prov[caller].get(rhs.trim()))
                                    .cloned()
                                    .unwrap_or_else(|| vec![f.qual.clone()]);
                                assigned = Some((d, chain));
                            }
                        }
                        if let Some((d, chain)) = assigned {
                            local.push((binder, d, chain));
                        }
                    }
                    // Call arguments → callee parameters.
                    for e in cg.out[caller].iter().filter(|e| e.line == li) {
                        let callee = &ws.fns[e.callee];
                        if callee.is_test || callee.params.is_empty() {
                            continue;
                        }
                        for args in call_args(&sf.lines, li, &callee.name) {
                            for (k, arg) in args.iter().enumerate() {
                                let Some(p) = callee.params.get(k) else {
                                    break;
                                };
                                let Some(d) = expr_domain(arg, vars, catalog) else {
                                    continue;
                                };
                                let mut chain = flow.prov[caller]
                                    .get(arg.trim())
                                    .cloned()
                                    .unwrap_or_else(|| vec![f.qual.clone()]);
                                chain.push(callee.qual.clone());
                                remote.push((e.callee, p.name.clone(), d, chain));
                            }
                        }
                    }
                }
            }
            for (name, d, chain) in local {
                changed |= join(
                    &mut flow.vars[caller],
                    &mut flow.prov[caller],
                    &name,
                    &d,
                    chain,
                );
            }
            for (callee, name, d, chain) in remote {
                changed |= join(
                    &mut flow.vars[callee],
                    &mut flow.prov[callee],
                    &name,
                    &d,
                    chain,
                );
            }
        }
        if !changed {
            break;
        }
    }

    // Check every subscript of a domain-declared buffer.
    for (id, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let sf = &ws.files[f.file];
        let vars = &flow.vars[id];
        for li in f.line..=f.end.min(sf.lines.len().saturating_sub(1)) {
            if sf.in_test[li] || ws.enclosing_fn(f.file, li) != Some(id) {
                continue;
            }
            let code = &sf.lines[li].code;
            for open in audit::subscript_positions(code) {
                let Some(base) = base_before(code, open) else {
                    continue;
                };
                let Some(buf) = resolve_buffer(&decls, ws, f.file, id, &base) else {
                    continue;
                };
                let Some(want) = &buf.sub else {
                    continue;
                };
                let Some(inner) = subscript_inner(code, open) else {
                    continue;
                };
                let Some(got) = expr_domain(inner, vars, catalog) else {
                    continue;
                };
                if got == *want || got == MIXED {
                    continue;
                }
                let suppressed_at =
                    covering_annotation_line(&sf.lines, li, "domain-ok").map(|l| l + 1);
                let mut chain = flow.prov[id].get(inner.trim()).cloned().unwrap_or_default();
                if chain.last() != Some(&f.qual) {
                    chain.push(f.qual.clone());
                }
                out.push(Finding {
                    rule: RULE_INDEX_DOMAIN,
                    file: sf.rel.clone(),
                    line: li + 1,
                    symbol: f.qual.clone(),
                    message: format!(
                        "`{base}[{inner}]` subscripts a `{want}`-indexed buffer with a \
                         `{got}` index — translate it first (see the domain catalog) or \
                         vet with `// AUDIT(domain-ok): <why>`",
                    ),
                    chain,
                    salient: format!("{base}|{want}|{got}|{}", f.qual),
                    suppressed_at,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotation_grammar() {
        assert_eq!(
            domain_annotations_in("// DOMAIN(RowId)"),
            vec![("RowId".to_string(), None)]
        );
        assert_eq!(
            domain_annotations_in("// DOMAIN(RowId -> NnzIdx)"),
            vec![("RowId".to_string(), Some("NnzIdx".to_string()))]
        );
        assert_eq!(
            domain_annotations_in("// DOMAIN(_ -> ColId)"),
            vec![("_".to_string(), Some("ColId".to_string()))]
        );
        // Mid-word and non-ident interiors are prose.
        assert!(domain_annotations_in("// XDOMAIN(RowId)").is_empty());
        assert!(domain_annotations_in("// DOMAIN(<d>): grammar doc").is_empty());
    }

    #[test]
    fn catalog_roundtrip_and_lookup() {
        let c = Catalog::builtin();
        let parsed = Catalog::parse(&c.render()).unwrap();
        assert_eq!(parsed.domains, c.domains);
        assert_eq!(parsed.offsets, c.offsets);
        assert_eq!(parsed.apis, c.apis);
        assert_eq!(c.local_of("RowId"), Some("ShardLocalRow"));
        assert_eq!(c.global_of("ColWindowOff"), Some("ColId"));
        assert_eq!(c.api_return("cscv_core::layout::row_index"), Some("RowId"));
        assert_eq!(c.api_return("cscv_core::exec::spmv"), None);
    }

    #[test]
    fn committed_catalog_matches_builtin() {
        // The JSON file is the machine-readable export of the builtin
        // catalog; a drifted copy would let external tooling and the
        // analyzer disagree about what a domain means.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/domain_catalog.json");
        let text = std::fs::read_to_string(path).expect("domain_catalog.json exists");
        assert_eq!(
            text,
            Catalog::builtin().render(),
            "regenerate with Catalog::render()"
        );
    }

    #[test]
    fn expr_domains_translate_offsets() {
        let c = Catalog::builtin();
        let mut v = BTreeMap::new();
        v.insert("row".to_string(), "RowId".to_string());
        v.insert("row0".to_string(), "RowId".to_string());
        v.insert("off".to_string(), "ShardLocalRow".to_string());
        assert_eq!(expr_domain("row", &v, &c).as_deref(), Some("RowId"));
        assert_eq!(
            expr_domain("row - row0", &v, &c).as_deref(),
            Some("ShardLocalRow")
        );
        assert_eq!(expr_domain("off + row0", &v, &c).as_deref(), Some("RowId"));
        assert_eq!(
            expr_domain("row as usize", &v, &c).as_deref(),
            Some("RowId")
        );
        assert_eq!(expr_domain("row + row0", &v, &c), None);
        assert_eq!(expr_domain("mystery", &v, &c), None);
    }
}
