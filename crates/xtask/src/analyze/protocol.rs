//! Wire-protocol session conformance (`protocol-conformance` rule
//! family).
//!
//! The shard coordinator/worker exchange is a session type in prose:
//! request frames flow coordinator→worker (`c2w`), replies flow back
//! (`w2c`), unsolicited `Trace` frames may interleave ahead of any
//! reply in traced builds, and `Err` escapes the session from anywhere.
//! This pass lifts that contract into one declared spec and checks both
//! endpoints against it statically.
//!
//! The spec is a `SESSION_SPEC: &[&str]` const (the shard protocol
//! module owns the real one) written in a line DSL the analyzer parses
//! out of the string literals:
//!
//! ```text
//! endpoint coordinator crates/shard/src/cluster.rs
//! endpoint worker      crates/shard/src/worker.rs
//! state    Init
//! msg      Hello c2w Init Greeted          # frame dir from-state to-state
//! side     Trace w2c Running AwaitReply    # unsolicited, state-preserving
//! escape   Err w2c                         # legal anywhere, ends the session
//! absorber recv_folding                    # fn that folds side frames out
//! ```
//!
//! Checks, all vettable with `// AUDIT(protocol-ok): <why>`:
//!
//! * every `Msg::X { … }.send(…)` in an endpoint file must be a frame
//!   the spec lets that endpoint send (transition, side, or escape) —
//!   a send with no matching receive state is a finding;
//! * every *direct* `Msg::recv` destructuring (let-else or match) that
//!   waits on a reply must be able to absorb the side-channel frames
//!   legal in that wait state (an explicit arm, a wildcard arm, or by
//!   being a declared absorber fn) — `Trace`-before-reply must not
//!   desync the session;
//! * a declared absorber must actually fold every side frame;
//! * wire tags (`pub const NAME: u8` in the spec's module) and spec
//!   frames must cover each other — a tag added to `protocol.rs` but
//!   absent from the spec is a finding, and vice versa.

use super::dataflow::covering_annotation_line;
use super::symbols::Workspace;
use super::{Finding, RULE_PROTOCOL};
use crate::lexer;
use std::path::Path;

#[derive(Debug, Clone)]
pub struct Transition {
    pub frame: String,
    pub dir: String,
    pub from: String,
    pub to: String,
}

#[derive(Debug, Clone)]
pub struct Side {
    pub frame: String,
    pub dir: String,
    /// States where the frame may interleave; empty = every state.
    pub states: Vec<String>,
}

#[derive(Debug, Default)]
pub struct SessionSpec {
    /// Index of the declaring file and 0-based declaration line.
    pub file: usize,
    pub line: usize,
    /// `(role, path-suffix)`; `coordinator` sends `c2w`, `worker`
    /// sends `w2c`.
    pub endpoints: Vec<(String, String)>,
    pub states: Vec<String>,
    pub transitions: Vec<Transition>,
    pub sides: Vec<Side>,
    /// `(frame, dir)` escapes, legal from any state.
    pub escapes: Vec<(String, String)>,
    /// Fn names that fold side frames out of the stream.
    pub absorbers: Vec<String>,
}

impl SessionSpec {
    fn declare_state(&mut self, s: &str) {
        if !self.states.iter().any(|x| x == s) {
            self.states.push(s.to_string());
        }
    }

    /// All frames the spec mentions.
    pub fn frames(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .transitions
            .iter()
            .map(|t| t.frame.as_str())
            .chain(self.sides.iter().map(|s| s.frame.as_str()))
            .chain(self.escapes.iter().map(|(f, _)| f.as_str()))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// May endpoint-direction `dir` legally emit `frame` at all?
    fn sendable(&self, frame: &str, dir: &str) -> bool {
        self.transitions
            .iter()
            .any(|t| t.frame == frame && t.dir == dir)
            || self.sides.iter().any(|s| s.frame == frame && s.dir == dir)
            || self.escapes.iter().any(|(f, d)| f == frame && d == dir)
    }

    /// Side frames that may interleave while waiting for `reply`.
    fn sides_before(&self, reply: &str, dir: &str) -> Vec<&str> {
        let wait_states: Vec<&str> = self
            .transitions
            .iter()
            .filter(|t| t.frame == reply && t.dir == dir)
            .map(|t| t.from.as_str())
            .collect();
        self.sides
            .iter()
            .filter(|s| s.dir == dir && s.frame != reply)
            .filter(|s| {
                s.states.is_empty() || s.states.iter().any(|st| wait_states.contains(&st.as_str()))
            })
            .map(|s| s.frame.as_str())
            .collect()
    }
}

/// String literals on one line (the DSL lines of the spec array).
fn string_literals(code_with_strings: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = code_with_strings.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] != b'"' {
                if bytes[j] == b'\\' {
                    j += 1;
                }
                j += 1;
            }
            if j < bytes.len() {
                out.push(code_with_strings[i + 1..j].to_string());
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// Find and parse the `SESSION_SPEC` const anywhere in the workspace.
pub fn find_spec(ws: &Workspace) -> Option<SessionSpec> {
    for (fi, sf) in ws.files.iter().enumerate() {
        for (li, l) in sf.lines.iter().enumerate() {
            if sf.in_test[li] || !l.code.contains("SESSION_SPEC") || !l.code.contains("const") {
                continue;
            }
            let mut spec = SessionSpec {
                file: fi,
                line: li,
                ..SessionSpec::default()
            };
            for cl in li..sf.lines.len() {
                for lit in string_literals(&sf.lines[cl].code_with_strings) {
                    // Strip a trailing `# comment`.
                    let line = lit.split('#').next().unwrap_or("").trim().to_string();
                    let words: Vec<&str> = line.split_whitespace().collect();
                    match words.as_slice() {
                        ["endpoint", role, path] => {
                            spec.endpoints.push((role.to_string(), path.to_string()));
                        }
                        ["state", s] => spec.declare_state(s),
                        ["msg", frame, dir, from, to] => {
                            spec.declare_state(from);
                            spec.declare_state(to);
                            spec.transitions.push(Transition {
                                frame: frame.to_string(),
                                dir: dir.to_string(),
                                from: from.to_string(),
                                to: to.to_string(),
                            });
                        }
                        ["side", frame, dir, states @ ..] => spec.sides.push(Side {
                            frame: frame.to_string(),
                            dir: dir.to_string(),
                            states: states.iter().map(|s| s.to_string()).collect(),
                        }),
                        ["escape", frame, dir] => {
                            spec.escapes.push((frame.to_string(), dir.to_string()));
                        }
                        ["absorber", f] => spec.absorbers.push(f.to_string()),
                        _ => {}
                    }
                }
                if sf.lines[cl].code.contains(']') && cl > li {
                    break;
                }
                if cl == li && sf.lines[cl].code.contains("];") {
                    break;
                }
            }
            return Some(spec);
        }
    }
    None
}

/// `MATRIX_ACK` → `MatrixAck`.
fn camelize(tag: &str) -> String {
    tag.split('_')
        .map(|w| {
            let mut c = w.chars();
            match c.next() {
                Some(f) => f
                    .to_uppercase()
                    .chain(c.flat_map(char::to_lowercase))
                    .collect(),
                None => String::new(),
            }
        })
        .collect()
}

/// `Msg::<CamelName>` occurrences in one code line: `(offset, name)`.
fn msg_tokens(code: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(p) = code[from..].find("Msg::") {
        let at = from + p;
        let rest = &code[at + 5..];
        let name: String = rest
            .chars()
            .take_while(|&c| lexer::is_ident_char(c))
            .collect();
        from = at + 5 + name.len().max(1);
        if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            out.push((at, name));
        }
    }
    out
}

/// Join the statement starting at `li` (code view) until its top-level
/// terminator, capped at 12 lines.
fn statement_text(lines: &[lexer::LineView], li: usize) -> String {
    let mut text = String::new();
    let mut depth = 0i64;
    for l in lines.iter().skip(li).take(12) {
        for b in l.code.bytes() {
            match b {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b';' if depth <= 0 => {
                    text.push(';');
                    return text;
                }
                _ => {}
            }
            text.push(b as char);
        }
        text.push(' ');
    }
    text
}

/// Arm patterns of the `match` whose body opens at/after line `li`:
/// `(frames, has_wildcard)`. Scans until the match's closing brace.
fn match_arms(lines: &[lexer::LineView], li: usize) -> (Vec<String>, bool) {
    let mut frames = Vec::new();
    let mut wildcard = false;
    let mut depth = 0i64;
    let mut opened = false;
    'outer: for l in lines.iter().skip(li).take(80) {
        let code = &l.code;
        if code.contains("=>") {
            let pat = code.split("=>").next().unwrap_or("");
            for (_, name) in msg_tokens(pat) {
                frames.push(name);
            }
            let p = pat.trim();
            // `_ =>`, `m =>`, `Ok(m) =>`, `Err(e) =>` — catch-alls.
            if p == "_"
                || p.chars().all(lexer::is_ident_char) && !p.is_empty() && !p.contains("Msg")
                || (p.starts_with("Ok(") && !p.contains("Msg::"))
                || p.starts_with("Err(")
            {
                wildcard = true;
            }
        }
        for b in code.bytes() {
            match b {
                b'{' => {
                    depth += 1;
                    opened = true;
                }
                b'}' => {
                    depth -= 1;
                    if opened && depth <= 0 {
                        break 'outer;
                    }
                }
                _ => {}
            }
        }
    }
    frames.sort_unstable();
    frames.dedup();
    (frames, wildcard)
}

/// Run every protocol-conformance check. Silent when the workspace
/// declares no `SESSION_SPEC`.
pub fn protocol_conformance(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(spec) = find_spec(ws) else {
        return;
    };
    let decl_file = &ws.files[spec.file];

    let finding = |file: &Path,
                   line: usize,
                   symbol: String,
                   message: String,
                   salient: String,
                   suppressed_at: Option<usize>| Finding {
        rule: RULE_PROTOCOL,
        file: file.to_path_buf(),
        line,
        symbol,
        message,
        chain: Vec::new(),
        salient,
        suppressed_at,
    };

    for (role, path) in &spec.endpoints {
        let (send_dir, recv_dir) = match role.as_str() {
            "coordinator" => ("c2w", "w2c"),
            "worker" => ("w2c", "c2w"),
            other => {
                out.push(finding(
                    &decl_file.rel,
                    spec.line + 1,
                    "SESSION_SPEC".into(),
                    format!(
                        "endpoint role `{other}` is not `coordinator` or `worker` — \
                         the analyzer cannot orient its frames"
                    ),
                    format!("endpoint|{other}"),
                    None,
                ));
                continue;
            }
        };
        let Some((fi, sf)) = ws
            .files
            .iter()
            .enumerate()
            .find(|(_, f)| f.rel.to_string_lossy().ends_with(path.as_str()))
        else {
            continue;
        };

        for (li, l) in sf.lines.iter().enumerate() {
            if sf.in_test[li] {
                continue;
            }
            let fn_id = ws.enclosing_fn(fi, li);
            let qual = fn_id
                .map(|id| ws.fns[id].qual.clone())
                .unwrap_or_else(|| format!("{role} endpoint"));

            // ---- send sites -------------------------------------------------
            for (pos, frame) in msg_tokens(&l.code) {
                // Pattern positions: match arm on this line, let-else /
                // if-let destructuring, matches! test.
                let before = &l.code[..pos];
                let after = &l.code[pos..];
                let is_pattern = after.contains("=>")
                    || before.trim_end().ends_with("let")
                    || before.contains("let Msg")
                    || lexer::word_positions(before, "let").last().is_some()
                    || before.contains("matches!(")
                    || before.trim_end().ends_with("Ok(");
                if is_pattern {
                    continue;
                }
                let stmt = statement_text(&sf.lines, li);
                let in_stmt = stmt.find("Msg::").map(|_| ()).is_some();
                if !in_stmt || !stmt.contains(".send(") {
                    continue;
                }
                if spec.sendable(&frame, send_dir) {
                    continue;
                }
                let suppressed_at =
                    covering_annotation_line(&sf.lines, li, "protocol-ok").map(|x| x + 1);
                out.push(finding(
                    &sf.rel,
                    li + 1,
                    qual.clone(),
                    format!(
                        "{role} sends `Msg::{frame}` but the session spec has no \
                         receive state for a {send_dir} `{frame}` — add the \
                         transition to SESSION_SPEC or vet with \
                         `// AUDIT(protocol-ok): <why>`"
                    ),
                    format!("send|{frame}|{send_dir}|{qual}"),
                    suppressed_at,
                ));
            }

            // ---- direct receive sites ---------------------------------------
            if !l.code.contains("Msg::recv(") {
                continue;
            }
            let in_absorber = fn_id
                .map(|id| spec.absorbers.contains(&ws.fns[id].name))
                .unwrap_or(false);
            if in_absorber {
                // The absorber itself must fold every side frame of its
                // direction.
                let f = &ws.fns[fn_id.unwrap()];
                let body: String = sf.lines[f.line..=f.end.min(sf.lines.len() - 1)]
                    .iter()
                    .map(|x| x.code.as_str())
                    .collect::<Vec<_>>()
                    .join(" ");
                for side in spec.sides.iter().filter(|s| s.dir == recv_dir) {
                    if body.contains(&format!("Msg::{}", side.frame)) {
                        continue;
                    }
                    let suppressed_at =
                        covering_annotation_line(&sf.lines, li, "protocol-ok").map(|x| x + 1);
                    out.push(finding(
                        &sf.rel,
                        li + 1,
                        qual.clone(),
                        format!(
                            "declared absorber `{}` never folds `Msg::{}` — the \
                             side channel would leak into the collective stream",
                            f.name, side.frame
                        ),
                        format!("absorber|{}|{qual}", side.frame),
                        suppressed_at,
                    ));
                }
                continue;
            }
            // Destructured reply frames at this direct recv.
            let stmt = statement_text(&sf.lines, li);
            let (replies, wildcard) = if stmt.trim_start().starts_with("match ")
                || l.code.contains("match Msg::recv(")
            {
                match_arms(&sf.lines, li)
            } else {
                // let-else / if-let: the patterns on the statement text.
                let pat = stmt.split('=').next().unwrap_or("");
                let mut pats: Vec<String> = msg_tokens(pat).into_iter().map(|(_, n)| n).collect();
                if pats.is_empty() {
                    // Multi-line let-else: `let Msg::X { … }` opened on an
                    // earlier line than the `Msg::recv(` call. Walk back to
                    // the `let` that starts this binding.
                    for back in (li.saturating_sub(6)..li).rev() {
                        let code = &sf.lines[back].code;
                        if code.contains(';') {
                            break;
                        }
                        pats.extend(msg_tokens(code).into_iter().map(|(_, n)| n));
                        if lexer::word_positions(code, "let").last().is_some() {
                            break;
                        }
                    }
                }
                (pats, false)
            };
            let reply_frames: Vec<&String> = replies
                .iter()
                .filter(|r| {
                    spec.transitions
                        .iter()
                        .any(|t| &t.frame == *r && t.dir == recv_dir)
                })
                .collect();
            if wildcard {
                continue;
            }
            for reply in &reply_frames {
                for side in spec.sides_before(reply, recv_dir) {
                    if replies.iter().any(|r| r == side) {
                        continue;
                    }
                    let suppressed_at =
                        covering_annotation_line(&sf.lines, li, "protocol-ok").map(|x| x + 1);
                    out.push(finding(
                        &sf.rel,
                        li + 1,
                        qual.clone(),
                        format!(
                            "direct `Msg::recv` waits for `{reply}` but cannot absorb \
                             an interleaved `{side}` — route the drain through a \
                             declared absorber or add a `{side}` arm"
                        ),
                        format!("absorb|{side}|{reply}|{qual}"),
                        suppressed_at,
                    ));
                }
            }
        }
    }

    // ---- tag/spec coverage, both directions -----------------------------
    let mut tags: Vec<(usize, String)> = Vec::new();
    for (li, l) in decl_file.lines.iter().enumerate() {
        if decl_file.in_test[li] {
            continue;
        }
        let t = l.code.trim();
        let Some(rest) = t
            .strip_prefix("pub const ")
            .or_else(|| t.strip_prefix("const "))
        else {
            continue;
        };
        let name: String = rest
            .chars()
            .take_while(|&c| lexer::is_ident_char(c))
            .collect();
        if !name.is_empty() && rest[name.len()..].trim_start().starts_with(": u8") {
            tags.push((li, name));
        }
    }
    if !tags.is_empty() {
        let frames = spec.frames();
        for (li, tag) in &tags {
            let camel = camelize(tag);
            if frames.iter().any(|f| *f == camel) {
                continue;
            }
            let suppressed_at =
                covering_annotation_line(&decl_file.lines, *li, "protocol-ok").map(|x| x + 1);
            out.push(finding(
                &decl_file.rel,
                li + 1,
                format!("tag::{tag}"),
                format!(
                    "wire tag `{tag}` has no frame in SESSION_SPEC — every tag \
                     must appear in the declared session"
                ),
                format!("tag|{tag}"),
                suppressed_at,
            ));
        }
        for frame in frames {
            if tags.iter().any(|(_, t)| camelize(t) == frame) {
                continue;
            }
            out.push(finding(
                &decl_file.rel,
                spec.line + 1,
                "SESSION_SPEC".into(),
                format!(
                    "SESSION_SPEC frame `{frame}` has no wire tag — the spec \
                     drifted ahead of `mod tag`; prune or implement it"
                ),
                format!("spec-frame|{frame}"),
                None,
            ));
        }
    }
}

/// Render the declared session as GraphViz DOT (the CI artifact).
pub fn render_dot(spec: &SessionSpec) -> String {
    let mut out = String::from(
        "// Session spec exported by `cscv-xtask analyze --protocol-dot`.\n\
         digraph session {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n",
    );
    for s in &spec.states {
        out.push_str(&format!("  \"{s}\";\n"));
    }
    for t in &spec.transitions {
        out.push_str(&format!(
            "  \"{}\" -> \"{}\" [label=\"{} {}\"];\n",
            t.from, t.to, t.frame, t.dir
        ));
    }
    for side in &spec.sides {
        let states: Vec<&String> = if side.states.is_empty() {
            spec.states.iter().collect()
        } else {
            side.states.iter().collect()
        };
        for s in states {
            out.push_str(&format!(
                "  \"{s}\" -> \"{s}\" [label=\"{} {} (side)\", style=dashed];\n",
                side.frame, side.dir
            ));
        }
    }
    for (frame, dir) in &spec.escapes {
        out.push_str(&format!("  \"{frame}\" [shape=octagon, style=dashed];\n"));
        for s in &spec.states {
            out.push_str(&format!(
                "  \"{s}\" -> \"{frame}\" [label=\"{dir}\", style=dotted];\n"
            ));
        }
    }
    out.push_str("}\n");
    out
}

/// Load the workspace under `root` and export its session spec as DOT.
/// `Ok(None)` when no spec is declared.
pub fn dot_from_root(root: &Path) -> Result<Option<String>, String> {
    let ws = Workspace::load(root)?;
    Ok(find_spec(&ws).map(|spec| render_dot(&spec)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn camelize_tags() {
        assert_eq!(camelize("HELLO"), "Hello");
        assert_eq!(camelize("MATRIX_ACK"), "MatrixAck");
        assert_eq!(camelize("ERR"), "Err");
    }

    #[test]
    fn msg_token_scan() {
        let toks = msg_tokens("let Msg::SpmvOut { y } = Msg::recv(conn)?");
        assert_eq!(toks.len(), 1, "recv is lowercase, not a frame: {toks:?}");
        assert_eq!(toks[0].1, "SpmvOut");
    }

    #[test]
    fn spec_parses_from_literals() {
        let ws = Workspace::from_sources(&[(
            "cscv-shard",
            "crates/shard/src/protocol.rs",
            "pub const SESSION_SPEC: &[&str] = &[\n\
             \x20   \"endpoint coordinator crates/shard/src/cluster.rs\",\n\
             \x20   \"msg Hello c2w Init Greeted\",\n\
             \x20   \"side Trace w2c Greeted\",\n\
             \x20   \"escape Err w2c\",\n\
             \x20   \"absorber recv_folding\",\n\
             ];\n",
        )]);
        let spec = find_spec(&ws).expect("spec found");
        assert_eq!(spec.endpoints.len(), 1);
        assert_eq!(spec.transitions.len(), 1);
        assert_eq!(spec.states, vec!["Init", "Greeted"]);
        assert_eq!(spec.sides[0].frame, "Trace");
        assert_eq!(spec.escapes, vec![("Err".to_string(), "w2c".to_string())]);
        assert_eq!(spec.absorbers, vec!["recv_folding"]);
        let dot = render_dot(&spec);
        assert!(dot.contains("\"Init\" -> \"Greeted\""));
        assert!(dot.contains("style=dashed"));
    }
}
