//! Fixpoint dataflow over the call graph.
//!
//! Three analyses, all flow-insensitive within a function and
//! propagated along call edges until stable:
//!
//! * **panic sources** — the per-function set of constructs that can
//!   abort (`unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`
//!   anywhere; checked `container[index]` subscripts in the kernel
//!   hot-path files, at function granularity), with `panic-ok` audit
//!   suppression resolved per source line and per function header;
//! * **index taint** — extends the PR 5 intra-procedural index-typed
//!   binding set across call edges: a parameter fed an index-typed
//!   argument by *any* caller becomes index-typed in the callee, and a
//!   `let` bound to a call returning `usize` becomes index-typed in the
//!   caller;
//! * **raw taint** — bindings derived from
//!   `SharedSliceMut::get_raw`/`slice_mut` (directly, through other
//!   tainted bindings, through raw-returning callees, or through a
//!   parameter fed a tainted argument).

use super::callgraph::CallGraph;
use super::symbols::{split_top_level, Workspace};
use crate::audit;
use crate::lexer;
use std::collections::{BTreeMap, BTreeSet};

/// Panicking construct classes.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceKind {
    /// `.unwrap()`, `.expect(`, `panic!`, `todo!`, `unimplemented!`.
    Direct(&'static str),
    /// Checked `container[index]` subscripts (kernel hot files only;
    /// one source per function, anchored at the first subscript line).
    Indexing,
}

/// One panic source inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSource {
    /// 0-based line.
    pub line: usize,
    pub kind: SourceKind,
    /// 0-based line of the covering `panic-ok` audit annotation, if
    /// the site (or the owning fn header) is vetted.
    pub suppressed_at: Option<usize>,
}

impl PanicSource {
    pub fn describe(&self) -> String {
        match &self.kind {
            SourceKind::Direct(what) => format!("calls `{what}`"),
            SourceKind::Indexing => "uses checked slice indexing (panics on out-of-bounds)".into(),
        }
    }
}

/// Per-function panic-source table.
#[derive(Debug, Default)]
pub struct PanicSources {
    /// Indexed by fn id.
    pub per_fn: Vec<Vec<PanicSource>>,
    /// Fn headers carrying a `panic-ok` audit annotation — propagation
    /// barriers: `(fn id, 0-based annotation line)`.
    pub blocked: BTreeMap<usize, usize>,
}

impl PanicSources {
    /// Any unsuppressed source in `f`'s own body.
    pub fn effective(&self, f: usize) -> Option<&PanicSource> {
        self.per_fn[f].iter().find(|s| s.suppressed_at.is_none())
    }

    /// Any source at all (ignoring suppression) — staleness accounting.
    pub fn raw(&self, f: usize) -> bool {
        !self.per_fn[f].is_empty()
    }
}

const DIRECT_PANICS: &[(&str, &str)] = &[
    (".unwrap()", ".unwrap()"),
    (".expect(", ".expect(…)"),
    ("panic!", "panic!"),
    ("todo!", "todo!"),
    ("unimplemented!", "unimplemented!"),
];

/// Kernel files where checked indexing counts as a panic source. The
/// lint hot-path set: these are the loops the paper's speedup lives in.
const INDEXING_SOURCE_FILES: &[&str] = &["kernels.rs", "lanes.rs", "expand.rs"];

fn basename(rel: &std::path::Path) -> &str {
    rel.file_name().and_then(|n| n.to_str()).unwrap_or("")
}

/// The `AUDIT(<key>)` annotation covering line `idx`, as the 0-based
/// line it sits on (same-line or the contiguous comment/attribute block
/// above — the audit-rule walk, but reporting *where*).
pub fn covering_annotation_line(lines: &[lexer::LineView], idx: usize, key: &str) -> Option<usize> {
    let has = |j: usize| {
        audit::annotations_in(&lines[j].comment)
            .iter()
            .any(|(k, why)| k == key && why.is_some())
    };
    if has(idx) {
        return Some(idx);
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        if l.is_comment_only() || l.is_attribute() {
            if has(j) {
                return Some(j);
            }
            continue;
        }
        break;
    }
    None
}

/// Collect every function's panic sources.
pub fn panic_sources(ws: &Workspace) -> PanicSources {
    let mut out = PanicSources {
        per_fn: vec![Vec::new(); ws.fns.len()],
        blocked: BTreeMap::new(),
    };
    for (id, f) in ws.fns.iter().enumerate() {
        let sf = &ws.files[f.file];
        if let Some(at) = covering_annotation_line(&sf.lines, f.line, "panic-ok") {
            out.blocked.insert(id, at);
        }
        let header_block = out.blocked.get(&id).copied();
        let indexing_file = INDEXING_SOURCE_FILES.contains(&basename(&sf.rel));
        let mut indexing_done = false;
        for li in f.line..=f.end.min(sf.lines.len().saturating_sub(1)) {
            if sf.in_test[li] {
                continue;
            }
            if ws.enclosing_fn(f.file, li) != Some(id) {
                continue; // nested fn's body
            }
            let code = &sf.lines[li].code;
            for (needle, what) in DIRECT_PANICS {
                if code.contains(needle) {
                    let suppressed_at =
                        covering_annotation_line(&sf.lines, li, "panic-ok").or(header_block);
                    out.per_fn[id].push(PanicSource {
                        line: li,
                        kind: SourceKind::Direct(what),
                        suppressed_at,
                    });
                }
            }
            if indexing_file
                && !indexing_done
                && li > f.line
                && !audit::subscript_positions(code).is_empty()
            {
                indexing_done = true;
                let suppressed_at =
                    covering_annotation_line(&sf.lines, li, "panic-ok").or(header_block);
                out.per_fn[id].push(PanicSource {
                    line: li,
                    kind: SourceKind::Indexing,
                    suppressed_at,
                });
            }
        }
    }
    out
}

/// The argument lists of every call to `name` that starts on line `li`
/// (calls may wrap; text is gathered until the parens balance).
pub fn call_args(lines: &[lexer::LineView], li: usize, name: &str) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    let code = &lines[li].code;
    for pos in lexer::word_positions(code, name) {
        let after = code[pos + name.len()..].trim_start();
        if !after.starts_with('(') {
            continue;
        }
        // Gather text from the opening paren until balance, across
        // lines (bounded — a call does not span 50 lines here).
        let open = pos + name.len() + (code.len() - pos - name.len() - after.len());
        let mut text = String::new();
        let mut depth = 0i64;
        let mut done = false;
        'lines: for (j, l) in lines.iter().enumerate().skip(li).take(50) {
            let start = if j == li { open } else { 0 };
            for c in l.code[start.min(l.code.len())..].chars() {
                match c {
                    '(' | '[' => depth += 1,
                    ')' | ']' => {
                        depth -= 1;
                        if depth == 0 {
                            done = true;
                            break 'lines;
                        }
                    }
                    _ => {}
                }
                if depth > 0 && !(depth == 1 && c == '(') {
                    text.push(c);
                }
            }
            text.push(' ');
        }
        if !done {
            continue;
        }
        // The gathered text starts just inside the outer paren.
        out.push(
            split_top_level(&text)
                .into_iter()
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect(),
        );
    }
    out
}

/// `let` binder names on `code` when the binding's initializer contains
/// byte position `at`.
pub fn let_binders_before(code: &str, at: usize) -> Vec<String> {
    let Some(let_pos) = lexer::word_positions(code, "let").first().copied() else {
        return Vec::new();
    };
    let rest = &code[let_pos + 3..];
    let Some(eq) = rest.find('=') else {
        return Vec::new();
    };
    if let_pos + 3 + eq >= at {
        return Vec::new(); // the position is inside the pattern
    }
    let pat = &rest[..eq];
    audit::binders(pat.split(':').next().unwrap_or(pat))
}

/// Inter-procedural index-typed binding sets.
#[derive(Debug, Default)]
pub struct IndexTaint {
    /// The PR 5 intra-procedural set, per fn.
    pub base: Vec<BTreeSet<String>>,
    /// Names that became index-typed through call edges, per fn.
    pub extra: Vec<BTreeSet<String>>,
}

impl IndexTaint {
    pub fn full(&self, f: usize) -> BTreeSet<String> {
        self.base[f].union(&self.extra[f]).cloned().collect()
    }
}

/// Fixpoint: push index-typed arguments into callee parameters and
/// `usize` return values back into caller bindings.
pub fn index_taint(ws: &Workspace, cg: &CallGraph) -> IndexTaint {
    let mut t = IndexTaint {
        base: Vec::with_capacity(ws.fns.len()),
        extra: vec![BTreeSet::new(); ws.fns.len()],
    };
    for f in &ws.fns {
        let sf = &ws.files[f.file];
        let end = f.end.min(sf.lines.len().saturating_sub(1));
        t.base.push(audit::index_vars(&sf.lines, (f.line, end)));
    }
    for _round in 0..8 {
        let mut changed = false;
        for (caller, edges) in cg.out.iter().enumerate() {
            let caller_vars = t.full(caller);
            let sf = &ws.files[ws.fns[caller].file];
            for e in edges {
                let callee = &ws.fns[e.callee];
                for args in call_args(&sf.lines, e.line, &callee.name) {
                    for (j, arg) in args.iter().enumerate() {
                        let Some(param) = callee.params.get(j) else {
                            break;
                        };
                        let arg_idents = audit::idents(&audit::strip_subscripts(arg));
                        let indexy = arg.contains(".len(")
                            || arg_idents.iter().any(|w| caller_vars.contains(w));
                        if indexy
                            && !t.base[e.callee].contains(&param.name)
                            && t.extra[e.callee].insert(param.name.clone())
                        {
                            changed = true;
                        }
                    }
                }
                // `let n = callee(…)` with a usize-returning callee.
                if !lexer::word_positions(&callee.ret, "usize").is_empty() {
                    let code = &sf.lines[e.line].code;
                    if let Some(pos) = lexer::word_positions(code, &callee.name).first() {
                        for b in let_binders_before(code, *pos) {
                            if !t.base[caller].contains(&b) && t.extra[caller].insert(b) {
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    t
}

/// Raw-pointer taint: per-fn tainted binding names (mapped to the
/// 0-based line where each first became tainted), plus which functions
/// return a raw/tainted value.
#[derive(Debug, Default)]
pub struct RawTaint {
    pub vars: Vec<BTreeMap<String, usize>>,
    /// Lines with a direct `get_raw(`/`slice_mut(` call, per fn.
    pub seed_lines: Vec<Vec<usize>>,
    pub returns_raw: Vec<bool>,
}

const RAW_SEEDS: &[&str] = &[".get_raw(", ".slice_mut("];

fn raw_ret_type(ret: &str) -> bool {
    ret.contains("*mut") || ret.contains("*const") || ret.contains("&mut [")
}

/// Fixpoint raw-pointer taint over the call graph.
pub fn raw_taint(ws: &Workspace, cg: &CallGraph) -> RawTaint {
    let mut t = RawTaint {
        vars: vec![BTreeMap::new(); ws.fns.len()],
        seed_lines: vec![Vec::new(); ws.fns.len()],
        returns_raw: vec![false; ws.fns.len()],
    };
    // Seed pass: direct get_raw/slice_mut calls.
    for (id, f) in ws.fns.iter().enumerate() {
        let sf = &ws.files[f.file];
        for li in f.line..=f.end.min(sf.lines.len().saturating_sub(1)) {
            if sf.in_test[li] || ws.enclosing_fn(f.file, li) != Some(id) {
                continue;
            }
            let code = &sf.lines[li].code;
            if let Some(pos) = RAW_SEEDS.iter().filter_map(|s| code.find(s)).min() {
                t.seed_lines[id].push(li);
                for b in let_binders_before(code, pos) {
                    t.vars[id].entry(b).or_insert(li);
                }
            }
        }
    }
    for _round in 0..8 {
        let mut changed = false;
        // Intra propagation: `let x = … tainted …`.
        for (id, f) in ws.fns.iter().enumerate() {
            let sf = &ws.files[f.file];
            for li in f.line..=f.end.min(sf.lines.len().saturating_sub(1)) {
                if sf.in_test[li] || ws.enclosing_fn(f.file, li) != Some(id) {
                    continue;
                }
                let code = &sf.lines[li].code;
                for pos in lexer::word_positions(code, "let") {
                    let rest = &code[pos + 3..];
                    let Some(eq) = rest.find('=') else { continue };
                    if rest.as_bytes().get(eq + 1) == Some(&b'=') {
                        continue;
                    }
                    let (pat, rhs) = (&rest[..eq], &rest[eq + 1..]);
                    let hit = audit::idents(&audit::strip_subscripts(rhs))
                        .iter()
                        .any(|w| t.vars[id].contains_key(w));
                    if hit {
                        for b in audit::binders(pat.split(':').next().unwrap_or(pat)) {
                            if let std::collections::btree_map::Entry::Vacant(slot) =
                                t.vars[id].entry(b)
                            {
                                slot.insert(li);
                                changed = true;
                            }
                        }
                    }
                }
            }
            // Return classification.
            if !t.returns_raw[id]
                && raw_ret_type(&f.ret)
                && (!t.seed_lines[id].is_empty() || !t.vars[id].is_empty())
            {
                t.returns_raw[id] = true;
                changed = true;
            }
        }
        // Call-edge propagation.
        for (caller, edges) in cg.out.iter().enumerate() {
            let sf = &ws.files[ws.fns[caller].file];
            for e in edges {
                let callee = &ws.fns[e.callee];
                let caller_vars: Vec<String> = t.vars[caller].keys().cloned().collect();
                // Tainted argument -> tainted callee parameter.
                for args in call_args(&sf.lines, e.line, &callee.name) {
                    for (j, arg) in args.iter().enumerate() {
                        let Some(param) = callee.params.get(j) else {
                            break;
                        };
                        let hit = audit::idents(&audit::strip_subscripts(arg))
                            .iter()
                            .any(|w| caller_vars.contains(w));
                        if hit && !t.vars[e.callee].contains_key(&param.name) {
                            t.vars[e.callee].insert(param.name.clone(), callee.line);
                            changed = true;
                        }
                    }
                }
                // Raw-returning callee -> tainted caller binding.
                if t.returns_raw[e.callee] {
                    let code = &sf.lines[e.line].code;
                    if let Some(pos) = lexer::word_positions(code, &callee.name).first() {
                        for b in let_binders_before(code, *pos) {
                            if let std::collections::btree_map::Entry::Vacant(slot) =
                                t.vars[caller].entry(b)
                            {
                                slot.insert(e.line);
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::callgraph;
    use crate::analyze::symbols::Workspace;

    #[test]
    fn panic_sources_and_header_suppression() {
        let src = "pub fn a(v: &[u64]) -> u64 {\n    v.first().copied().unwrap()\n}\n// AUDIT(panic-ok): bounds enforced by the W invariant at build time.\npub fn k(v: &[u64], i: usize) -> u64 {\n    v[i]\n}\n";
        let ws = Workspace::from_sources(&[("cscv-core", "crates/core/src/kernels.rs", src)]);
        let ps = panic_sources(&ws);
        let a = ws.fns.iter().position(|f| f.name == "a").unwrap();
        let k = ws.fns.iter().position(|f| f.name == "k").unwrap();
        assert!(ps.effective(a).is_some());
        assert!(ps.raw(k));
        assert!(ps.effective(k).is_none(), "header annotation suppresses");
        assert!(ps.blocked.contains_key(&k));
    }

    #[test]
    fn index_taint_crosses_call_edges() {
        let ws = Workspace::from_sources(&[
            (
                "cscv-core",
                "crates/core/src/kernels.rs",
                "pub fn kern(xs: &[f64]) {\n    let n = xs.len();\n    pack(n as u64);\n}\n",
            ),
            (
                "cscv-core",
                "crates/core/src/util.rs",
                "pub fn pack(w: u64) -> u32 {\n    w as u32\n}\n",
            ),
        ]);
        let cg = callgraph::build(&ws);
        let t = index_taint(&ws, &cg);
        let pack = ws.fns.iter().position(|f| f.name == "pack").unwrap();
        assert!(
            t.extra[pack].contains("w"),
            "param fed an index-derived arg"
        );
    }

    #[test]
    fn raw_taint_follows_returns_and_args() {
        let ws = Workspace::from_sources(&[
            (
                "cscv-a",
                "crates/a/src/lib.rs",
                "pub fn make(s: &Shared) -> *mut f64 {\n    let p = unsafe { s.buf.get_raw(0) };\n    p\n}\n",
            ),
            (
                "cscv-b",
                "crates/b/src/lib.rs",
                "pub fn consume(s: &Shared) {\n    let q = cscv_a::make(s);\n    stash(q);\n}\nfn stash(r: *mut f64) {\n    drop(r);\n}\n",
            ),
        ]);
        let cg = callgraph::build(&ws);
        let t = raw_taint(&ws, &cg);
        let make = ws.fns.iter().position(|f| f.name == "make").unwrap();
        let consume = ws.fns.iter().position(|f| f.name == "consume").unwrap();
        let stash = ws.fns.iter().position(|f| f.name == "stash").unwrap();
        assert!(t.returns_raw[make]);
        assert!(
            t.vars[consume].contains_key("q"),
            "binding from raw-returning call"
        );
        assert!(t.vars[stash].contains_key("r"), "param fed a tainted arg");
    }
}
