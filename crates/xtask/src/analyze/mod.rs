//! Whole-workspace inter-procedural static analysis (`cscv-xtask analyze`).
//!
//! The pipeline: [`symbols`] parses every workspace crate with the
//! shared [`crate::lexer`] into an item/signature model; [`callgraph`]
//! builds a cross-crate call graph (use/path tracking plus a
//! trait-method approximation); [`dataflow`] runs fixpoint taint passes
//! over it; [`rules`] turns the facts into findings, joined by the
//! declaration-driven [`domains`] (index-domain typestate over the
//! committed catalog and `DOMAIN(<d>)` annotations) and [`protocol`]
//! (session conformance against the shard `SESSION_SPEC`) families. A
//! checked-in ratchet baseline (`crates/xtask/analyze_baseline.json`)
//! gates the result: a finding absent from the baseline exits 1, a
//! baseline entry the analyzer no longer produces exits 2 (prune it),
//! clean exits 0. [`cache`] memoizes the whole report keyed by input
//! content hashes, replaying warm runs byte-identically.
//!
//! Fingerprints deliberately exclude line numbers, so moving code
//! around does not churn the baseline; they hash
//! `rule|file|symbol|salient` with FNV-1a 64.

pub mod cache;
pub mod callgraph;
pub mod dataflow;
pub mod domains;
pub mod protocol;
pub mod rules;
pub mod symbols;

use crate::ndjson;
use cscv_trace::json::Json;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

pub const RULE_PROVENANCE: &str = "unsafe-provenance";
pub const RULE_PANIC_REACH: &str = "panic-reachability";
pub const RULE_ATOMIC_ROLE: &str = "atomic-role";
pub const RULE_ATOMIC_ORDERING: &str = "atomic-ordering";
pub const RULE_FENCE: &str = "fence-unpaired";
pub const RULE_IPC_CAST: &str = "ipc-cast-truncation";
pub const RULE_INDEX_DOMAIN: &str = "index-domain";
pub const RULE_PROTOCOL: &str = "protocol-conformance";
pub const RULE_STALE: &str = "audit-stale-annotation";

/// Every rule the analyzer can produce, in the stable order the
/// per-rule NDJSON counts are emitted in (and the cache validates
/// against).
pub const ALL_RULES: &[&str] = &[
    RULE_PROVENANCE,
    RULE_PANIC_REACH,
    RULE_ATOMIC_ROLE,
    RULE_ATOMIC_ORDERING,
    RULE_FENCE,
    RULE_IPC_CAST,
    RULE_INDEX_DOMAIN,
    RULE_PROTOCOL,
    RULE_STALE,
];

/// One analyzer finding. `line` and `suppressed_at` are 1-indexed;
/// `chain` is the witness call chain (qualified fn names) for the
/// inter-procedural rules; `salient` is the stable, line-free part of
/// the identity that feeds the fingerprint.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub file: PathBuf,
    pub line: usize,
    pub symbol: String,
    pub message: String,
    pub chain: Vec<String>,
    pub salient: String,
    pub suppressed_at: Option<usize>,
}

impl Finding {
    /// Stable identity: FNV-1a 64 over `rule|file|symbol|salient`,
    /// rendered as 16 hex digits. Line numbers are excluded on purpose.
    pub fn fingerprint(&self) -> String {
        let key = format!(
            "{}|{}|{}|{}",
            self.rule,
            self.file.display(),
            self.symbol,
            self.salient
        );
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }
}

#[derive(Debug)]
pub struct AnalyzeReport {
    /// All findings, including suppressed ones (needed for the
    /// stale-annotation accounting and for `--format ndjson`).
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    pub lines_scanned: usize,
    pub fn_count: usize,
    pub edge_count: usize,
}

impl AnalyzeReport {
    /// Findings that actually gate (not vetted by an annotation).
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed_at.is_none())
    }
}

/// Run the full pipeline over an in-memory workspace with the builtin
/// domain catalog (fixture entry point).
pub fn analyze_workspace(ws: &symbols::Workspace) -> AnalyzeReport {
    analyze_workspace_with(ws, &domains::Catalog::builtin())
}

/// Run the full pipeline over an in-memory workspace.
pub fn analyze_workspace_with(
    ws: &symbols::Workspace,
    catalog: &domains::Catalog,
) -> AnalyzeReport {
    let cg = callgraph::build(ws);
    let ps = dataflow::panic_sources(ws);
    let it = dataflow::index_taint(ws, &cg);
    let rt = dataflow::raw_taint(ws, &cg);
    let reaches_raw = rules::reaches_raw_panic(ws, &cg, &ps);

    let mut findings = Vec::new();
    rules::panic_reachability(ws, &cg, &ps, &mut findings);
    rules::provenance(ws, &rt, &mut findings);
    rules::atomics(ws, &mut findings);
    rules::ipc_casts(ws, &cg, &it, &mut findings);
    domains::index_domains(ws, &cg, catalog, &mut findings);
    protocol::protocol_conformance(ws, &mut findings);
    let so_far = findings.clone();
    rules::stale_annotations(ws, &ps, &reaches_raw, &so_far, &mut findings);

    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.salient).cmp(&(&b.file, b.line, b.rule, &b.salient))
    });
    findings.dedup_by(|a, b| {
        (&a.file, a.line, a.rule, &a.salient) == (&b.file, b.line, b.rule, &b.salient)
    });
    AnalyzeReport {
        findings,
        files_scanned: ws.files_scanned,
        lines_scanned: ws.lines_scanned,
        fn_count: ws.fns.len(),
        edge_count: cg.edge_count,
    }
}

/// Load the workspace from disk and analyze it with the workspace's
/// domain catalog (`crates/xtask/domain_catalog.json` when present).
pub fn analyze_root(root: &Path) -> Result<AnalyzeReport, String> {
    let ws = symbols::Workspace::load(root)?;
    let catalog = domains::Catalog::load(root)?;
    Ok(analyze_workspace_with(&ws, &catalog))
}

// ---------------------------------------------------------------------------
// Ratchet baseline.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub file: String,
    pub symbol: String,
    pub salient: String,
    pub fingerprint: String,
}

#[derive(Debug, Default)]
pub struct Baseline {
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parse the committed baseline. A missing file is an empty
    /// baseline (first adoption); malformed JSON is an error.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Baseline::default()),
            Err(e) => return Err(format!("read {}: {e}", path.display())),
        };
        let json = Json::parse(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
        let mut entries = Vec::new();
        let get = |j: &Json, k: &str| -> String {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .unwrap_or_default()
        };
        if let Some(arr) = json.get("findings").and_then(Json::as_arr) {
            for item in arr {
                entries.push(BaselineEntry {
                    rule: get(item, "rule"),
                    file: get(item, "file"),
                    symbol: get(item, "symbol"),
                    salient: get(item, "salient"),
                    fingerprint: get(item, "fingerprint"),
                });
            }
        }
        Ok(Baseline { entries })
    }

    /// Serialize one entry per line so baseline diffs review cleanly.
    pub fn render(report: &AnalyzeReport) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [\n");
        let mut seen = BTreeSet::new();
        let rows: Vec<String> = report
            .active()
            .filter(|f| seen.insert(f.fingerprint()))
            .map(|f| {
                format!(
                    "    {{\"rule\": \"{}\", \"file\": \"{}\", \"symbol\": \"{}\", \
                     \"salient\": \"{}\", \"fingerprint\": \"{}\"}}",
                    ndjson::escape(f.rule),
                    ndjson::escape(&f.file.display().to_string()),
                    ndjson::escape(&f.symbol),
                    ndjson::escape(&f.salient),
                    f.fingerprint(),
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        if !rows.is_empty() {
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Ratchet verdict: exit 1 when new findings appeared, exit 2 when the
/// baseline carries entries the analyzer no longer produces (so fixed
/// findings must be pruned, ratcheting the count down), exit 0 clean.
#[derive(Debug)]
pub struct Ratchet {
    pub new: Vec<Finding>,
    pub stale: Vec<BaselineEntry>,
    pub baselined: usize,
}

impl Ratchet {
    pub fn compare(report: &AnalyzeReport, baseline: &Baseline) -> Ratchet {
        let known: BTreeSet<&str> = baseline
            .entries
            .iter()
            .map(|e| e.fingerprint.as_str())
            .collect();
        let active: BTreeSet<String> = report.active().map(|f| f.fingerprint()).collect();
        let new: Vec<Finding> = report
            .active()
            .filter(|f| !known.contains(f.fingerprint().as_str()))
            .cloned()
            .collect();
        let stale: Vec<BaselineEntry> = baseline
            .entries
            .iter()
            .filter(|e| !active.contains(&e.fingerprint))
            .cloned()
            .collect();
        let baselined = active
            .iter()
            .filter(|fp| known.contains(fp.as_str()))
            .count();
        Ratchet {
            new,
            stale,
            baselined,
        }
    }

    pub fn exit_code(&self) -> u8 {
        if !self.new.is_empty() {
            1
        } else if !self.stale.is_empty() {
            2
        } else {
            0
        }
    }
}

// ---------------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------------

fn status_of(f: &Finding, ratchet: &Ratchet) -> &'static str {
    if f.suppressed_at.is_some() {
        "vetted"
    } else if ratchet
        .new
        .iter()
        .any(|n| n.fingerprint() == f.fingerprint())
    {
        "new"
    } else {
        "baselined"
    }
}

pub fn render_table(report: &AnalyzeReport, ratchet: &Ratchet) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let status = status_of(f, ratchet);
        out.push_str(&format!(
            "{}:{}  [{status}] {}  {}\n",
            f.file.display(),
            f.line,
            f.rule,
            f.message
        ));
        if f.chain.len() > 1 {
            out.push_str(&format!("    chain: {}\n", f.chain.join(" → ")));
        }
    }
    for e in &ratchet.stale {
        out.push_str(&format!(
            "{}  [stale-baseline] {}  baseline entry `{}` ({}) is no longer produced — \
             prune it from analyze_baseline.json\n",
            e.file, e.rule, e.salient, e.fingerprint
        ));
    }
    let suppressed = report
        .findings
        .iter()
        .filter(|f| f.suppressed_at.is_some())
        .count();
    let verdict = match ratchet.exit_code() {
        0 => "OK",
        1 => "NEW FINDINGS",
        _ => "STALE BASELINE",
    };
    out.push_str(&format!(
        "cscv-xtask analyze: {verdict} — {} files, {} lines, {} fns, {} call edges; \
         {} new / {} baselined / {} vetted / {} stale\n",
        report.files_scanned,
        report.lines_scanned,
        report.fn_count,
        report.edge_count,
        ratchet.new.len(),
        ratchet.baselined,
        suppressed,
        ratchet.stale.len(),
    ));
    out
}

pub fn render_ndjson(report: &AnalyzeReport, ratchet: &Ratchet) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let chain = f
            .chain
            .iter()
            .map(|c| format!("\"{}\"", ndjson::escape(c)))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            "{{\"kind\":\"finding\",\"tool\":\"analyze\",\"rule\":\"{}\",\"file\":\"{}\",\
             \"line\":{},\"symbol\":\"{}\",\"status\":\"{}\",\"fingerprint\":\"{}\",\
             \"chain\":[{}],\"message\":\"{}\"}}\n",
            ndjson::escape(f.rule),
            ndjson::escape(&f.file.display().to_string()),
            f.line,
            ndjson::escape(&f.symbol),
            status_of(f, ratchet),
            f.fingerprint(),
            chain,
            ndjson::escape(&f.message),
        ));
    }
    for e in &ratchet.stale {
        out.push_str(&format!(
            "{{\"kind\":\"stale-baseline\",\"tool\":\"analyze\",\"rule\":\"{}\",\
             \"file\":\"{}\",\"salient\":\"{}\",\"fingerprint\":\"{}\"}}\n",
            ndjson::escape(&e.rule),
            ndjson::escape(&e.file),
            ndjson::escape(&e.salient),
            e.fingerprint,
        ));
    }
    // Per-rule counts, one record per known rule in stable order, so
    // CI can chart finding counts without re-aggregating.
    for rule in ALL_RULES {
        let active = report
            .findings
            .iter()
            .filter(|f| f.rule == *rule && f.suppressed_at.is_none())
            .count();
        let vetted = report
            .findings
            .iter()
            .filter(|f| f.rule == *rule && f.suppressed_at.is_some())
            .count();
        out.push_str(&format!(
            "{{\"kind\":\"rule-count\",\"tool\":\"analyze\",\"rule\":\"{}\",\
             \"active\":{},\"vetted\":{}}}\n",
            ndjson::escape(rule),
            active,
            vetted,
        ));
    }
    let suppressed = report
        .findings
        .iter()
        .filter(|f| f.suppressed_at.is_some())
        .count();
    out.push_str(&format!(
        "{{\"kind\":\"summary\",\"tool\":\"analyze\",\"files\":{},\"lines\":{},\
         \"fns\":{},\"edges\":{},\"new\":{},\"baselined\":{},\"vetted\":{},\"stale\":{},\
         \"exit\":{}}}\n",
        report.files_scanned,
        report.lines_scanned,
        report.fn_count,
        report.edge_count,
        ratchet.new.len(),
        ratchet.baselined,
        suppressed,
        ratchet.stale.len(),
        ratchet.exit_code(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, salient: &str) -> Finding {
        Finding {
            rule,
            file: PathBuf::from("crates/demo/src/lib.rs"),
            line: 3,
            symbol: "demo::f".into(),
            message: "m".into(),
            chain: Vec::new(),
            salient: salient.into(),
            suppressed_at: None,
        }
    }

    #[test]
    fn fingerprint_ignores_line_numbers() {
        let a = finding(RULE_PROVENANCE, "return|f");
        let mut b = a.clone();
        b.line = 99;
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.salient = "store|f|p".into();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn ratchet_exit_codes() {
        let report = AnalyzeReport {
            findings: vec![finding(RULE_PROVENANCE, "return|f")],
            files_scanned: 1,
            lines_scanned: 1,
            fn_count: 1,
            edge_count: 0,
        };
        // Empty baseline: the finding is new.
        let r = Ratchet::compare(&report, &Baseline::default());
        assert_eq!(r.exit_code(), 1);
        // Baseline matches exactly: clean.
        let text = Baseline::render(&report);
        let dir = std::env::temp_dir().join("cscv-analyze-mod-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        std::fs::write(&path, &text).unwrap();
        let loaded = Baseline::load(&path).unwrap();
        assert_eq!(loaded.entries.len(), 1);
        let r = Ratchet::compare(&report, &loaded);
        assert_eq!(r.exit_code(), 0, "{:?}", r);
        // Finding fixed but baseline kept: stale.
        let empty = AnalyzeReport {
            findings: Vec::new(),
            files_scanned: 1,
            lines_scanned: 1,
            fn_count: 1,
            edge_count: 0,
        };
        let r = Ratchet::compare(&empty, &loaded);
        assert_eq!(r.exit_code(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_baseline_is_empty() {
        let b = Baseline::load(Path::new("/nonexistent/analyze_baseline.json")).unwrap();
        assert!(b.entries.is_empty());
    }

    #[test]
    fn suppressed_findings_do_not_gate() {
        let mut f = finding(RULE_PROVENANCE, "return|f");
        f.suppressed_at = Some(2);
        let report = AnalyzeReport {
            findings: vec![f],
            files_scanned: 1,
            lines_scanned: 1,
            fn_count: 1,
            edge_count: 0,
        };
        let r = Ratchet::compare(&report, &Baseline::default());
        assert_eq!(r.exit_code(), 0);
    }
}
