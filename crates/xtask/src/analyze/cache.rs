//! Content-hash incremental cache for `cscv-xtask analyze`.
//!
//! The analyzer is a whole-workspace inter-procedural fixpoint, so
//! partial (per-file) reuse is unsound — a one-line edit can change
//! call edges three crates away. What *is* sound is all-or-nothing
//! memoization: the cache key is an FNV-1a 64 over the rule version
//! plus the per-file content hash of every analysis input (each
//! crate's `Cargo.toml`, every `src/**.rs`, and the domain catalog).
//! On a warm run with an unchanged key the stored report is replayed
//! without re-lexing a single file; any changed, added, or removed
//! input changes the key and forces a full recompute.
//!
//! The replayed report reproduces findings byte-for-byte (order,
//! chains, suppression lines), so `analyze` output is identical cold
//! and warm — CI gates on exactly that. The cache lives in
//! `<root>/target/analyze-cache.json` (never committed) and every
//! failure mode — unreadable, stale version, unknown rule name —
//! degrades to a cold run.

use super::{domains, symbols, AnalyzeReport, Finding, ALL_RULES};
use crate::ndjson;
use cscv_trace::json::Json;
use std::path::{Path, PathBuf};

/// Bump when a rule family changes behavior: the version feeds the
/// cache key, so stale reports can never satisfy a newer analyzer.
pub const RULE_VERSION: u32 = 2;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Every file whose content feeds the analysis, sorted by relative
/// path: manifests, rust sources, the domain catalog.
fn input_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let push_if_file = |out: &mut Vec<PathBuf>, p: PathBuf| {
        if p.is_file() {
            out.push(p);
        }
    };
    push_if_file(&mut out, root.join("Cargo.toml"));
    push_if_file(&mut out, root.join("crates/xtask/domain_catalog.json"));
    let crates_dir = root.join("crates");
    let mut subdirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_dir())
                .collect()
        })
        .unwrap_or_default();
    subdirs.sort();
    for dir in subdirs {
        push_if_file(&mut out, dir.join("Cargo.toml"));
        let mut stack = vec![dir.join("src")];
        let mut files = Vec::new();
        while let Some(d) = stack.pop() {
            let Ok(rd) = std::fs::read_dir(&d) else {
                continue;
            };
            for e in rd.filter_map(Result::ok) {
                let p = e.path();
                if p.is_dir() {
                    stack.push(p);
                } else if p.extension().is_some_and(|x| x == "rs") {
                    files.push(p);
                }
            }
        }
        files.sort();
        out.extend(files);
    }
    out
}

/// The cache key over all inputs; reading (not lexing) each file is
/// the entire cost of a warm run.
pub fn cache_key(root: &Path) -> String {
    let mut acc = format!("rule-version:{RULE_VERSION}\n");
    for p in input_files(root) {
        let rel = p.strip_prefix(root).unwrap_or(&p);
        let content = std::fs::read(&p).unwrap_or_default();
        acc.push_str(&format!("{}\x00{:016x}\n", rel.display(), fnv64(&content)));
    }
    format!("{:016x}", fnv64(acc.as_bytes()))
}

fn render_cache(key: &str, report: &AnalyzeReport) -> String {
    let mut out = format!(
        "{{\n  \"version\": 1,\n  \"rule_version\": {RULE_VERSION},\n  \"key\": \"{key}\",\n  \
         \"files\": {},\n  \"lines\": {},\n  \"fns\": {},\n  \"edges\": {},\n  \"findings\": [\n",
        report.files_scanned, report.lines_scanned, report.fn_count, report.edge_count,
    );
    let rows: Vec<String> = report
        .findings
        .iter()
        .map(|f| {
            let chain = f
                .chain
                .iter()
                .map(|c| format!("\"{}\"", ndjson::escape(c)))
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"symbol\": \"{}\", \
                 \"message\": \"{}\", \"chain\": [{}], \"salient\": \"{}\", \"suppressed_at\": {}}}",
                ndjson::escape(f.rule),
                ndjson::escape(&f.file.display().to_string()),
                f.line,
                ndjson::escape(&f.symbol),
                ndjson::escape(&f.message),
                chain,
                ndjson::escape(&f.salient),
                f.suppressed_at.map_or("null".to_string(), |s| s.to_string()),
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    if !rows.is_empty() {
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parse a cached report; `None` on any mismatch (wrong key, old rule
/// version, unknown rule name, malformed JSON) — all degrade to cold.
fn parse_cache(text: &str, key: &str) -> Option<AnalyzeReport> {
    let json = Json::parse(text).ok()?;
    if json.get("rule_version")?.as_f64()? as u32 != RULE_VERSION {
        return None;
    }
    if json.get("key")?.as_str()? != key {
        return None;
    }
    let num = |k: &str| -> Option<usize> { Some(json.get(k)?.as_f64()? as usize) };
    let mut findings = Vec::new();
    for item in json.get("findings")?.as_arr()? {
        let rule_name = item.get("rule")?.as_str()?;
        let rule = ALL_RULES.iter().find(|r| **r == rule_name)?;
        let chain = item
            .get("chain")?
            .as_arr()?
            .iter()
            .filter_map(Json::as_str)
            .map(str::to_string)
            .collect();
        findings.push(Finding {
            rule,
            file: PathBuf::from(item.get("file")?.as_str()?),
            line: item.get("line")?.as_f64()? as usize,
            symbol: item.get("symbol")?.as_str()?.to_string(),
            message: item.get("message")?.as_str()?.to_string(),
            chain,
            salient: item.get("salient")?.as_str()?.to_string(),
            suppressed_at: item
                .get("suppressed_at")
                .and_then(Json::as_f64)
                .map(|v| v as usize),
        });
    }
    Some(AnalyzeReport {
        findings,
        files_scanned: num("files")?,
        lines_scanned: num("lines")?,
        fn_count: num("fns")?,
        edge_count: num("edges")?,
    })
}

fn cache_path(root: &Path) -> PathBuf {
    root.join("target/analyze-cache.json")
}

/// Analyze `root`, replaying the cached report when every input hash
/// matches. Returns the report and whether the run was warm.
pub fn analyze_root_cached(root: &Path, use_cache: bool) -> Result<(AnalyzeReport, bool), String> {
    let path = cache_path(root);
    let key = if use_cache {
        cache_key(root)
    } else {
        String::new()
    };
    if use_cache {
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Some(report) = parse_cache(&text, &key) {
                return Ok((report, true));
            }
        }
    }
    let ws = symbols::Workspace::load(root)?;
    let catalog = domains::Catalog::load(root)?;
    let report = super::analyze_workspace_with(&ws, &catalog);
    if use_cache {
        // Best-effort: an unwritable target dir must not fail analyze.
        if std::fs::create_dir_all(path.parent().unwrap_or(root)).is_ok() {
            let _ = std::fs::write(&path, render_cache(&key, &report));
        }
    }
    Ok((report, false))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_through_cache_text() {
        let report = AnalyzeReport {
            findings: vec![Finding {
                rule: super::super::RULE_INDEX_DOMAIN,
                file: PathBuf::from("crates/demo/src/lib.rs"),
                line: 7,
                symbol: "demo::f".into(),
                message: "msg with \"quotes\"".into(),
                chain: vec!["a::b".into(), "c::d".into()],
                salient: "buf|RowId|ColId|demo::f".into(),
                suppressed_at: Some(6),
            }],
            files_scanned: 3,
            lines_scanned: 120,
            fn_count: 9,
            edge_count: 4,
        };
        let text = render_cache("deadbeefdeadbeef", &report);
        let back = parse_cache(&text, "deadbeefdeadbeef").expect("parses");
        assert_eq!(back.findings.len(), 1);
        let f = &back.findings[0];
        assert_eq!(f.rule, super::super::RULE_INDEX_DOMAIN);
        assert_eq!(f.chain, vec!["a::b".to_string(), "c::d".to_string()]);
        assert_eq!(f.suppressed_at, Some(6));
        assert_eq!(f.message, "msg with \"quotes\"");
        assert_eq!(back.edge_count, 4);
        // Key mismatch and version skew degrade to cold.
        assert!(parse_cache(&text, "0000000000000000").is_none());
        let skew = text.replace(
            &format!("\"rule_version\": {RULE_VERSION}"),
            "\"rule_version\": 0",
        );
        assert!(parse_cache(&skew, "deadbeefdeadbeef").is_none());
    }
}
