//! The analyzer's rule families, over the symbol model, the call graph
//! and the dataflow facts:
//!
//! * `unsafe-provenance` — raw pointers/slices derived from
//!   `SharedSliceMut::get_raw`/`slice_mut` must not escape: returned to
//!   callers, stored into fields/statics/collections, captured by a
//!   `spawn(…)` closure, or used across a `claims_barrier()`.
//!   Suppression: `// AUDIT(escape-ok): <why>`.
//! * `panic-reachability` — hot-path functions (`kernels.rs`,
//!   `lanes.rs`, `expand.rs`, `exec.rs`) must not *transitively* reach a
//!   panicking construct through any non-test call path; the shortest
//!   witness chain is reported. Suppression: `// AUDIT(panic-ok): <why>`
//!   on the source line, or on a fn header to accept the whole subtree.
//! * `atomic-role` / `atomic-ordering` / `fence-unpaired` — every
//!   non-test atomic declaration carries an `// ATOMIC(<role>)`; ops on
//!   handoff/flag atomics must use acquire/release-or-stronger
//!   orderings; a release fence needs an acquire counterpart somewhere.
//!   Suppression for ordering: `// AUDIT(order-ok): <why>`.
//! * `ipc-cast-truncation` — the PR 5 narrowing-cast rule with the
//!   *inter-procedural* index set: flags casts the intra-procedural
//!   audit cannot see (index values that crossed a call edge, and
//!   helpers outside the hot-path files reached from them).
//!   Suppression: `// AUDIT(cast-ok): <why>` (shared with the audit).
//! * `audit-stale-annotation` — any `AUDIT(<key>)`/`ATOMIC(<role>)`
//!   annotation that no longer suppresses or classifies anything is
//!   itself a finding, so argued-away suppressions cannot rot silently.

use super::callgraph::CallGraph;
use super::dataflow::{covering_annotation_line, IndexTaint, PanicSources, RawTaint};
use super::symbols::{Role, Workspace};
use super::{
    Finding, RULE_ATOMIC_ORDERING, RULE_ATOMIC_ROLE, RULE_FENCE, RULE_IPC_CAST, RULE_PANIC_REACH,
    RULE_PROVENANCE, RULE_STALE,
};
use crate::{audit, lexer};
use std::collections::{BTreeMap, VecDeque};

fn basename(rel: &std::path::Path) -> &str {
    rel.file_name().and_then(|n| n.to_str()).unwrap_or("")
}

/// Roots of the panic-reachability walk: the audit hot-path file set.
fn is_panic_root_file(rel: &std::path::Path) -> bool {
    audit::HOT_PATH_AUDIT_FILES.contains(&basename(rel))
}

// ---------------------------------------------------------------------------
// panic-reachability
// ---------------------------------------------------------------------------

/// Functions that can reach (ignoring all suppression) a function with a
/// raw panic source — backward closure over the call graph.
pub fn reaches_raw_panic(ws: &Workspace, cg: &CallGraph, ps: &PanicSources) -> Vec<bool> {
    let mut reach = vec![false; ws.fns.len()];
    let mut queue: VecDeque<usize> = (0..ws.fns.len()).filter(|&f| ps.raw(f)).collect();
    for &f in &queue {
        reach[f] = true;
    }
    while let Some(cur) = queue.pop_front() {
        for &caller in &cg.ins[cur] {
            if !reach[caller] {
                reach[caller] = true;
                queue.push_back(caller);
            }
        }
    }
    reach
}

pub fn panic_reachability(
    ws: &Workspace,
    cg: &CallGraph,
    ps: &PanicSources,
    out: &mut Vec<Finding>,
) {
    for (root, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let sf = &ws.files[f.file];
        if !is_panic_root_file(&sf.rel) {
            continue;
        }
        if ps.blocked.contains_key(&root) {
            continue; // vetted subtree; staleness is checked separately
        }
        // BFS skipping vetted (header-annotated) functions.
        let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue = VecDeque::new();
        prev.insert(root, root);
        queue.push_back(root);
        let mut hit: Option<usize> = None;
        'bfs: while let Some(cur) = queue.pop_front() {
            if ps.effective(cur).is_some() {
                hit = Some(cur);
                break 'bfs;
            }
            for e in &cg.out[cur] {
                if prev.contains_key(&e.callee) || ps.blocked.contains_key(&e.callee) {
                    continue;
                }
                prev.insert(e.callee, cur);
                queue.push_back(e.callee);
            }
        }
        let Some(target) = hit else { continue };
        let mut chain = vec![target];
        let mut node = target;
        while node != root {
            node = prev[&node];
            chain.push(node);
        }
        chain.reverse();
        let chain_quals: Vec<String> = chain.iter().map(|&id| ws.fns[id].qual.clone()).collect();
        let src = ps.effective(target).expect("target has a source");
        let tf = &ws.fns[target];
        let t_file = &ws.files[tf.file];
        let via = if chain.len() == 1 {
            "directly".to_string()
        } else {
            format!("via {}", chain_quals.join(" → "))
        };
        let kind_tag = match &src.kind {
            super::dataflow::SourceKind::Direct(w) => w.to_string(),
            super::dataflow::SourceKind::Indexing => "indexing".to_string(),
        };
        out.push(Finding {
            rule: RULE_PANIC_REACH,
            file: sf.rel.clone(),
            line: f.line + 1,
            symbol: f.qual.clone(),
            message: format!(
                "hot-path fn `{}` can reach a panic {via}: `{}` {} at {}:{}; \
                 validate at the boundary or vet with `// AUDIT(panic-ok): <why>`",
                f.name,
                tf.name,
                src.describe(),
                t_file.rel.display(),
                src.line + 1,
            ),
            chain: chain_quals,
            salient: format!("{}|{}|{kind_tag}", f.qual, tf.qual),
            suppressed_at: None,
        });
    }
}

// ---------------------------------------------------------------------------
// unsafe-provenance
// ---------------------------------------------------------------------------

pub fn provenance(ws: &Workspace, rt: &RawTaint, out: &mut Vec<Finding>) {
    for (id, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let sf = &ws.files[f.file];
        let lines = &sf.lines;
        let end = f.end.min(lines.len().saturating_sub(1));
        let vars = &rt.vars[id];
        let mut push = |line: usize, kind: &str, what: &str, message: String| {
            let suppressed_at = covering_annotation_line(lines, line, "escape-ok")
                .or_else(|| covering_annotation_line(lines, f.line, "escape-ok"))
                .map(|l| l + 1);
            out.push(Finding {
                rule: RULE_PROVENANCE,
                file: sf.rel.clone(),
                line: line + 1,
                symbol: f.qual.clone(),
                message,
                chain: Vec::new(),
                salient: format!("{kind}|{}|{what}", f.qual),
                suppressed_at,
            });
        };
        // (a) returned: raw-returning fns that derive from the shared
        // buffer API hand their claim past its epoch.
        if rt.returns_raw[id] {
            let anchor = rt.seed_lines[id].first().copied().unwrap_or(f.line);
            push(
                anchor,
                "return",
                &f.name,
                format!(
                    "`{}` returns a raw pointer/slice derived from \
                     SharedSliceMut::get_raw/slice_mut — the claim outlives its epoch; \
                     keep the claim inside the closure or vet with \
                     `// AUDIT(escape-ok): <why>`",
                    f.name
                ),
            );
        }
        if vars.is_empty() {
            continue;
        }
        let barrier_lines: Vec<usize> = (f.line..=end)
            .filter(|&li| {
                !sf.in_test[li]
                    && !lexer::word_positions(&lines[li].code, "claims_barrier").is_empty()
            })
            .collect();
        for li in f.line..=end {
            if sf.in_test[li] || ws.enclosing_fn(f.file, li) != Some(id) {
                continue;
            }
            let code = &lines[li].code;
            // (b) stored: `field.path = tainted` / `STATIC = tainted` /
            // `coll.push(tainted)`.
            if lexer::word_positions(code, "let").is_empty() {
                if let Some(eq) = assignment_pos(code) {
                    let (lhs, rhs) = (code[..eq].trim(), code[eq + 1..].trim());
                    let stored_to_place = !lhs.starts_with('*')
                        && (lhs.contains('.')
                            || lhs
                                .chars()
                                .filter(|c| c.is_ascii_alphabetic())
                                .all(|c| c.is_ascii_uppercase()));
                    if stored_to_place {
                        if let Some(v) = first_tainted(rhs, vars) {
                            push(
                                li,
                                "store",
                                &v,
                                format!(
                                    "raw claim `{v}` is stored into `{lhs}` — it outlives the \
                                     claim epoch; copy the data, not the pointer, or vet with \
                                     `// AUDIT(escape-ok): <why>`"
                                ),
                            );
                        }
                    }
                }
            }
            for needle in [".push(", ".insert("] {
                if let Some(p) = code.find(needle) {
                    let arg = &code[p + needle.len()..];
                    let arg = arg.split(')').next().unwrap_or("");
                    for piece in arg.split(',') {
                        let piece = piece.trim();
                        if vars.contains_key(piece) {
                            push(
                                li,
                                "store",
                                piece,
                                format!(
                                    "raw claim `{piece}` is stored into a collection — it \
                                     outlives the claim epoch; vet with \
                                     `// AUDIT(escape-ok): <why>`"
                                ),
                            );
                        }
                    }
                }
            }
            // (c) sent: a `spawn(…)` closure capturing a pre-claimed
            // pointer ships it to another thread.
            for sp in lexer::word_positions(code, "spawn") {
                let after = code[sp + 5..].trim_start();
                if !after.starts_with('(') {
                    continue;
                }
                let region = gather_balanced(lines, li, code.len() - after.len());
                for (v, def) in vars {
                    if *def < li && !lexer::word_positions(&region, v).is_empty() {
                        push(
                            li,
                            "sent",
                            v,
                            format!(
                                "raw claim `{v}` (claimed at line {}) is captured by a \
                                 spawn(…) closure — claims must be taken on the receiving \
                                 thread; vet with `// AUDIT(escape-ok): <why>`",
                                def + 1
                            ),
                        );
                    }
                }
            }
        }
        // (d) used across a claims_barrier(): the barrier retires every
        // outstanding claim epoch.
        for &bl in &barrier_lines {
            for (v, def) in vars {
                if *def > bl {
                    continue;
                }
                let used_after = (bl + 1..=end).find(|&u| {
                    !sf.in_test[u]
                        && ws.enclosing_fn(f.file, u) == Some(id)
                        && !lexer::word_positions(&lines[u].code, v).is_empty()
                });
                if let Some(u) = used_after {
                    push(
                        u,
                        "barrier",
                        v,
                        format!(
                            "raw claim `{v}` (claimed at line {}) is used after the \
                             claims_barrier() at line {} — the barrier retired its epoch; \
                             re-claim after the barrier or vet with \
                             `// AUDIT(escape-ok): <why>`",
                            def + 1,
                            bl + 1
                        ),
                    );
                }
            }
        }
    }
}

/// Byte position of a plain `=` assignment operator (not `==`, `!=`,
/// `<=`, `>=`, `=>`, or compound `+=`-style operators).
fn assignment_pos(code: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    for (k, &b) in bytes.iter().enumerate() {
        if b != b'=' {
            continue;
        }
        let prev = if k > 0 { bytes[k - 1] } else { b' ' };
        let next = bytes.get(k + 1).copied().unwrap_or(b' ');
        if matches!(
            prev,
            b'=' | b'!' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^'
        ) {
            continue;
        }
        if next == b'=' || next == b'>' {
            continue;
        }
        return Some(k);
    }
    None
}

fn first_tainted(expr: &str, vars: &BTreeMap<String, usize>) -> Option<String> {
    audit::idents(&audit::strip_subscripts(expr))
        .into_iter()
        .find(|w| {
            w.chars()
                .next()
                .is_some_and(|c| c.is_lowercase() || c == '_')
                && vars.contains_key(w)
        })
}

/// Text of a balanced paren region starting at `open` on line `li`.
fn gather_balanced(lines: &[lexer::LineView], li: usize, open: usize) -> String {
    let mut text = String::new();
    let mut depth = 0i64;
    for (j, l) in lines.iter().enumerate().skip(li).take(200) {
        let start = if j == li { open } else { 0 };
        for c in l.code[start.min(l.code.len())..].chars() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return text;
                    }
                }
                _ => {}
            }
            text.push(c);
        }
        text.push(' ');
    }
    text
}

// ---------------------------------------------------------------------------
// atomic-role / atomic-ordering / fence-unpaired
// ---------------------------------------------------------------------------

const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Last identifier segment of the receiver chain before `.op(…)`:
/// `local.counters[c as usize].fetch_add` → `counters`.
fn receiver_segment(code: &str, dot: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut j = dot;
    loop {
        if j == 0 {
            break;
        }
        let c = bytes[j - 1] as char;
        if c == ')' || c == ']' {
            match audit::balance_back(bytes, j - 1) {
                Some(open) => j = open,
                None => break,
            }
        } else if lexer::is_ident_char(c) || c == '.' || c == ':' {
            j -= 1;
        } else {
            break;
        }
    }
    let chain = audit::strip_subscripts(code[j..dot].trim());
    chain
        .replace("::", ".")
        .split('.')
        .filter(|s| !s.is_empty() && s.chars().all(lexer::is_ident_char))
        .rfind(|s| *s != "self")
        .map(str::to_string)
}

/// Orderings named in a call-argument region, in textual order.
fn orderings_in(text: &str) -> Vec<&'static str> {
    let mut hits: Vec<(usize, &'static str)> = Vec::new();
    for &ord in ORDERINGS {
        for p in lexer::word_positions(text, ord) {
            hits.push((p, ord));
        }
    }
    hits.sort();
    hits.into_iter().map(|(_, o)| o).collect()
}

pub fn atomics(ws: &Workspace, out: &mut Vec<Finding>) {
    // Declarations must carry a role.
    for d in &ws.atomics {
        if d.in_test {
            continue;
        }
        let sf = &ws.files[d.file];
        if let Some(raw) = &d.role_raw {
            if Role::parse(raw).is_none() {
                out.push(Finding {
                    rule: RULE_ATOMIC_ROLE,
                    file: sf.rel.clone(),
                    line: d.line + 1,
                    symbol: d.name.clone(),
                    message: format!(
                        "unknown ATOMIC role `{raw}` on `{}` (expected statistic, handoff \
                         or flag)",
                        d.name
                    ),
                    chain: Vec::new(),
                    salient: format!("bad-role|{}|{raw}", d.name),
                    suppressed_at: None,
                });
            }
        } else if d.role.is_none() {
            out.push(Finding {
                rule: RULE_ATOMIC_ROLE,
                file: sf.rel.clone(),
                line: d.line + 1,
                symbol: d.name.clone(),
                message: format!(
                    "atomic `{}` has no declared role; classify it with \
                     `// ATOMIC(statistic|handoff|flag): <why>` so ordering discipline \
                     can be checked",
                    d.name
                ),
                chain: Vec::new(),
                salient: format!("missing-role|{}", d.name),
                suppressed_at: None,
            });
        }
    }
    // Op sites against declared roles.
    let mut fences: Vec<(usize, usize, Vec<&'static str>, Option<usize>)> = Vec::new();
    for (fi, sf) in ws.files.iter().enumerate() {
        for (li, l) in sf.lines.iter().enumerate() {
            if sf.in_test[li] {
                continue;
            }
            let code = &l.code;
            for p in lexer::word_positions(code, "fence") {
                let after = code[p + 5..].trim_start();
                if !after.starts_with('(') {
                    continue;
                }
                let region = gather_balanced(&sf.lines, li, code.len() - after.len());
                let suppressed = covering_annotation_line(&sf.lines, li, "order-ok").map(|a| a + 1);
                fences.push((fi, li, orderings_in(&region), suppressed));
            }
            for &op in ATOMIC_OPS {
                for p in lexer::word_positions(code, op) {
                    if p == 0 || code.as_bytes()[p - 1] != b'.' {
                        continue;
                    }
                    let after = code[p + op.len()..].trim_start();
                    if !after.starts_with('(') {
                        continue;
                    }
                    let Some(recv) = receiver_segment(code, p - 1) else {
                        continue;
                    };
                    let Some(decl) = resolve_atomic(ws, fi, &recv) else {
                        continue;
                    };
                    let role = match decl.role {
                        Some(r) => r,
                        None => continue, // missing-role already reported
                    };
                    if role == Role::Statistic {
                        continue;
                    }
                    let region = gather_balanced(&sf.lines, li, code.len() - after.len());
                    let ords = orderings_in(&region);
                    let Some(&first) = ords.first() else { continue };
                    let ok = match op {
                        "load" => matches!(first, "Acquire" | "SeqCst"),
                        "store" => matches!(first, "Release" | "SeqCst"),
                        _ => first != "Relaxed",
                    };
                    if ok {
                        continue;
                    }
                    let want = match op {
                        "load" => "Acquire (or SeqCst)",
                        "store" => "Release (or SeqCst)",
                        _ => "AcqRel or stronger",
                    };
                    let suppressed_at =
                        covering_annotation_line(&sf.lines, li, "order-ok").map(|a| a + 1);
                    out.push(Finding {
                        rule: RULE_ATOMIC_ORDERING,
                        file: sf.rel.clone(),
                        line: li + 1,
                        symbol: decl.name.clone(),
                        message: format!(
                            "`{recv}.{op}` uses Ordering::{first} but `{}` is declared \
                             ATOMIC({}) — {} requires {want}; fix the ordering or vet \
                             with `// AUDIT(order-ok): <why>`",
                            decl.name,
                            role.as_str(),
                            role.as_str(),
                        ),
                        chain: Vec::new(),
                        salient: format!("{}|{op}|{first}", decl.name),
                        suppressed_at,
                    });
                }
            }
        }
    }
    // Fence pairing: a release-side fence needs an acquire-side fence
    // somewhere in the workspace (and vice versa).
    let acquire_side = |ords: &[&str]| {
        ords.iter()
            .any(|o| matches!(*o, "Acquire" | "AcqRel" | "SeqCst"))
    };
    let release_side = |ords: &[&str]| {
        ords.iter()
            .any(|o| matches!(*o, "Release" | "AcqRel" | "SeqCst"))
    };
    let have_acq = fences.iter().any(|(_, _, o, _)| acquire_side(o));
    let have_rel = fences.iter().any(|(_, _, o, _)| release_side(o));
    for (fi, li, ords, suppressed_at) in &fences {
        let lonely_rel = release_side(ords) && !acquire_side(ords) && !have_acq;
        let lonely_acq = acquire_side(ords) && !release_side(ords) && !have_rel;
        if !(lonely_rel || lonely_acq) {
            continue;
        }
        let sf = &ws.files[*fi];
        let (this, wants) = if lonely_rel {
            ("Release", "Acquire")
        } else {
            ("Acquire", "Release")
        };
        out.push(Finding {
            rule: RULE_FENCE,
            file: sf.rel.clone(),
            line: li + 1,
            symbol: "fence".into(),
            message: format!(
                "{this} fence has no {wants} counterpart anywhere in the workspace — \
                 unpaired fences synchronize nothing; pair it or vet with \
                 `// AUDIT(order-ok): <why>`"
            ),
            chain: Vec::new(),
            salient: format!("fence|{}|{this}", sf.rel.display()),
            suppressed_at: *suppressed_at,
        });
    }
}

/// Resolve an op receiver to an atomic declaration: same file, then
/// same crate, then anywhere.
fn resolve_atomic<'a>(
    ws: &'a Workspace,
    file: usize,
    name: &str,
) -> Option<&'a super::symbols::AtomicDecl> {
    let crate_idx = ws.files[file].crate_idx;
    ws.atomics
        .iter()
        .filter(|d| d.name == name && !d.is_alias)
        .min_by_key(|d| {
            if d.file == file {
                0
            } else if ws.files[d.file].crate_idx == crate_idx {
                1
            } else {
                2
            }
        })
}

// ---------------------------------------------------------------------------
// ipc-cast-truncation
// ---------------------------------------------------------------------------

pub fn ipc_casts(ws: &Workspace, cg: &CallGraph, taint: &IndexTaint, out: &mut Vec<Finding>) {
    // Reachability from the hot-path files, with BFS parents for the
    // witness chain.
    let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue = VecDeque::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if !f.is_test && audit::hot_path_reachable(&ws.files[f.file].rel) {
            prev.insert(id, id);
            queue.push_back(id);
        }
    }
    while let Some(cur) = queue.pop_front() {
        for e in &cg.out[cur] {
            if let std::collections::btree_map::Entry::Vacant(slot) = prev.entry(e.callee) {
                slot.insert(cur);
                queue.push_back(e.callee);
            }
        }
    }
    for (&id, _) in prev.iter() {
        let f = &ws.fns[id];
        if f.is_test {
            continue;
        }
        let sf = &ws.files[f.file];
        let hot = audit::hot_path_reachable(&sf.rel);
        let base = &taint.base[id];
        let full = taint.full(id);
        if full.is_empty() {
            continue;
        }
        let end = f.end.min(sf.lines.len().saturating_sub(1));
        for li in f.line..=end {
            if sf.in_test[li] || ws.enclosing_fn(f.file, li) != Some(id) {
                continue;
            }
            let code = &sf.lines[li].code;
            for pos in lexer::word_positions(code, "as") {
                let rest = code[pos + 2..].trim_start();
                let ty: String = rest
                    .chars()
                    .take_while(|&c| lexer::is_ident_char(c))
                    .collect();
                if !audit::NARROW_TYPES.contains(&ty.as_str()) {
                    continue;
                }
                let operand = audit::operand_before(code, pos);
                if ["==", "!=", "<=", ">=", "&&", "||"]
                    .iter()
                    .any(|op| operand.contains(op))
                {
                    continue;
                }
                let rooted = audit::idents(&audit::strip_subscripts(&operand));
                let flow_full =
                    operand.contains(".len(") || rooted.iter().any(|w| full.contains(w));
                let flow_base =
                    operand.contains(".len(") || rooted.iter().any(|w| base.contains(w));
                // The intra-procedural audit owns hot-file findings that
                // need no call-edge facts.
                let fires = if hot {
                    flow_full && !flow_base
                } else {
                    flow_full
                };
                if !fires {
                    continue;
                }
                // Witness chain back to a hot-path root.
                let mut chain = vec![id];
                let mut node = id;
                while prev[&node] != node {
                    node = prev[&node];
                    chain.push(node);
                }
                chain.reverse();
                let chain_quals: Vec<String> =
                    chain.iter().map(|&i| ws.fns[i].qual.clone()).collect();
                let suppressed_at =
                    covering_annotation_line(&sf.lines, li, "cast-ok").map(|a| a + 1);
                out.push(Finding {
                    rule: RULE_IPC_CAST,
                    file: sf.rel.clone(),
                    line: li + 1,
                    symbol: f.qual.clone(),
                    message: format!(
                        "truncating cast `{operand} as {ty}` on an index that reached \
                         `{}` through a call edge ({}); use try_from at the boundary or \
                         vet with `// AUDIT(cast-ok): <why>`",
                        f.name,
                        chain_quals.join(" → "),
                    ),
                    chain: chain_quals,
                    salient: format!("{}|{operand} as {ty}", f.qual),
                    suppressed_at,
                });
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// audit-stale-annotation
// ---------------------------------------------------------------------------

/// Map an audit rule to the key that suppresses it.
const AUDIT_KEY_RULES: &[(&str, &str)] = &[
    ("cast-ok", audit::RULE_CAST_TRUNCATION),
    ("index-ok", audit::RULE_UNSAFE_INDEXING),
    ("cfg-ok", audit::RULE_CFG_UNDECLARED),
];

/// Rewrite every audit tag to `XUDIT(` inside comments only, so the
/// audit rules run with every suppression disabled (same byte layout,
/// same line numbers).
fn mute_annotations(sf: &super::symbols::SourceFile) -> String {
    let mut out_lines: Vec<String> = Vec::new();
    for (i, raw) in sf.source.lines().enumerate() {
        let Some(view) = sf.lines.get(i) else {
            out_lines.push(raw.to_string());
            continue;
        };
        if !view.comment.contains("AUDIT(") {
            out_lines.push(raw.to_string());
            continue;
        }
        // The views are char-synchronized with the raw line.
        let mut chars: Vec<char> = raw.chars().collect();
        let comment: Vec<char> = view.comment.chars().collect();
        let needle: Vec<char> = "AUDIT(".chars().collect();
        let mut k = 0usize;
        while k + needle.len() <= comment.len() {
            if comment[k..k + needle.len()] == needle[..] {
                if k < chars.len() {
                    chars[k] = 'X';
                }
                k += needle.len();
            } else {
                k += 1;
            }
        }
        out_lines.push(chars.into_iter().collect());
    }
    out_lines.join("\n")
}

#[allow(clippy::too_many_arguments)]
pub fn stale_annotations(
    ws: &Workspace,
    ps: &PanicSources,
    reaches_raw: &[bool],
    findings: &[Finding],
    out: &mut Vec<Finding>,
) {
    let analyze_keys = [
        "panic-ok",
        "escape-ok",
        "order-ok",
        "domain-ok",
        "protocol-ok",
    ];
    let mut new: Vec<Finding> = Vec::new();
    for (fi, sf) in ws.files.iter().enumerate() {
        // Raw audit re-run for the intra-procedural keys (lazy: only
        // when the file carries one of them).
        let has_audit_key = sf.lines.iter().enumerate().any(|(li, l)| {
            !sf.in_test[li]
                && audit::annotations_in(&l.comment)
                    .iter()
                    .any(|(k, _)| AUDIT_KEY_RULES.iter().any(|(key, _)| key == k))
        });
        let raw_audit = if has_audit_key {
            let muted = mute_annotations(sf);
            audit::audit_source(&sf.rel, &muted, &ws.crates[sf.crate_idx].features)
        } else {
            Vec::new()
        };
        for (li, l) in sf.lines.iter().enumerate() {
            if sf.in_test[li] {
                continue;
            }
            // Prose in doc comments (`///`, `//!`) documents the
            // grammar; only plain `//` comments are live suppressions.
            let c = l.comment.trim_start();
            if c.starts_with("///") || c.starts_with("//!") {
                continue;
            }
            for (key, why) in audit::annotations_in(&l.comment) {
                if why.is_none() || !audit::ANNOTATION_KEYS.contains(&key.as_str()) {
                    continue; // malformed — the audit syntax check owns it
                }
                let used = if let Some((_, rule)) = AUDIT_KEY_RULES.iter().find(|(k, _)| *k == key)
                {
                    let by_audit = raw_audit.iter().any(|d| {
                        d.rule == *rule
                            && covering_annotation_line(&sf.lines, d.line - 1, &key) == Some(li)
                    });
                    // cast-ok also serves the inter-procedural rule.
                    by_audit
                        || (key == "cast-ok"
                            && findings.iter().any(|f| {
                                f.rule == RULE_IPC_CAST
                                    && f.file == sf.rel
                                    && f.suppressed_at == Some(li + 1)
                            }))
                } else if analyze_keys.contains(&key.as_str()) {
                    match key.as_str() {
                        "panic-ok" => {
                            let covers_source = ws.fns.iter().enumerate().any(|(id, f)| {
                                f.file == fi
                                    && ps.per_fn[id].iter().any(|s| s.suppressed_at == Some(li))
                            });
                            let blocks_subtree = ps.blocked.iter().any(|(&id, &at)| {
                                ws.fns[id].file == fi && at == li && reaches_raw[id]
                            });
                            covers_source || blocks_subtree
                        }
                        _ => findings
                            .iter()
                            .any(|f| f.file == sf.rel && f.suppressed_at == Some(li + 1)),
                    }
                } else {
                    true
                };
                if !used {
                    new.push(Finding {
                        rule: RULE_STALE,
                        file: sf.rel.clone(),
                        line: li + 1,
                        symbol: key.clone(),
                        message: format!(
                            "`AUDIT({key})` (line {}) no longer suppresses anything — the \
                             vetted pattern is gone; remove the annotation",
                            li + 1
                        ),
                        chain: Vec::new(),
                        salient: format!("{key}|{}", sf.rel.display()),
                        suppressed_at: None,
                    });
                }
            }
            for (role, _) in super::symbols::atomic_annotations_in(&l.comment) {
                let used = ws
                    .atomics
                    .iter()
                    .any(|d| d.file == fi && d.role_line == Some(li));
                if !used {
                    new.push(Finding {
                        rule: RULE_STALE,
                        file: sf.rel.clone(),
                        line: li + 1,
                        symbol: format!("ATOMIC({role})"),
                        message: format!(
                            "`ATOMIC({role})` (line {}) does not classify any atomic \
                             declaration — the declaration moved or was removed; delete \
                             the annotation",
                            li + 1
                        ),
                        chain: Vec::new(),
                        salient: format!("atomic|{role}|{}", sf.rel.display()),
                        suppressed_at: None,
                    });
                }
            }
        }
    }
    out.extend(new);
}
