//! The `tune` subcommand: batch-tune a corpus of case descriptors.
//!
//! For every descriptor in the corpus (a `.case` file or a directory of
//! them, same format the fuzzer replays), the command runs the
//! `cscv-tune` search for each configured operation and then
//! *re-measures* both the chosen config and the static heuristic on the
//! full matrix with the harness's min-of-reps machinery — an
//! independent verification, not the sampled numbers the search itself
//! produced. The speedup column is heuristic-seconds over
//! tuned-seconds from that re-measurement.
//!
//! Exit-code contract (the same as `lint`/`audit`/`fuzz`): 0 when every
//! tuned config holds up, 1 when any tuned config is slower than the
//! heuristic beyond the noise band, 2 for usage/IO errors (handled in
//! `main.rs`).
//!
//! `--model` swaps the wall clock for the deterministic cost model and
//! skips the re-measurement (the model already guarantees
//! tuned ≤ heuristic); it exists so tests and smoke runs are
//! machine-independent.

use cscv_core::layout::ImageShape;
use cscv_core::{CscvExec, ExecConfig, SinoLayout};
use cscv_harness::gen::{generate, load_corpus, CaseDesc};
use cscv_harness::{measure_spmv, SpmvMeasurement};
use cscv_sparse::{Csc, ThreadPool};
use cscv_trace::json::Json;
use cscv_tune::{
    tune, CacheOutcome, ModelBench, Op, TuneCache, TuneOptions, TunedConfig, WallClockBench,
};
use std::path::PathBuf;

/// Relative slowdown vs the heuristic a tuned config may show before
/// the run is declared a regression (measurement noise band).
pub const NOISE_BAND: f64 = 0.25;

#[derive(Debug, Clone)]
pub struct TuneCmdConfig {
    /// Corpus file or directory of `.case` descriptors.
    pub corpus: PathBuf,
    /// Persisted cache path; `None` tunes into a throwaway cache.
    pub cache: Option<PathBuf>,
    /// Timed reps per candidate (and per verification measurement).
    pub reps: usize,
    pub warmup: usize,
    /// Use the deterministic cost model instead of the wall clock.
    pub model: bool,
    pub threads: usize,
}

impl Default for TuneCmdConfig {
    fn default() -> Self {
        TuneCmdConfig {
            corpus: PathBuf::from("crates/tune/tune_corpus"),
            cache: None,
            reps: 5,
            warmup: 1,
            model: false,
            threads: ThreadPool::max_parallelism(),
        }
    }
}

/// One (descriptor, operation) outcome.
#[derive(Debug, Clone)]
pub struct TuneRow {
    pub case_name: String,
    pub op: String,
    pub scalar: String,
    pub config: String,
    /// Full-matrix min-of-reps seconds of the tuned config (sampled
    /// search seconds under `--model`).
    pub tuned_secs: f64,
    /// Same measurement for the static heuristic.
    pub heuristic_secs: f64,
    pub candidates: usize,
    pub samples: usize,
    pub cache: String,
}

impl TuneRow {
    /// `heuristic / tuned`: > 1 means the search won.
    pub fn speedup(&self) -> f64 {
        if self.tuned_secs > 0.0 {
            self.heuristic_secs / self.tuned_secs
        } else {
            1.0
        }
    }

    /// Tuned slower than the heuristic beyond the noise band?
    pub fn is_regression(&self, band: f64) -> bool {
        self.tuned_secs > self.heuristic_secs * (1.0 + band)
    }
}

#[derive(Debug, Default)]
pub struct TuneOutcome {
    pub rows: Vec<TuneRow>,
}

impl TuneOutcome {
    pub fn regressions(&self) -> Vec<&TuneRow> {
        self.rows
            .iter()
            .filter(|r| r.is_regression(NOISE_BAND))
            .collect()
    }

    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:<7} {:<6} {:<34} {:>11} {:>11} {:>8} {:>6} {:>8} {:>9}\n",
            "case",
            "op",
            "scalar",
            "config",
            "tuned_s",
            "heur_s",
            "speedup",
            "cands",
            "samples",
            "cache"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<24} {:<7} {:<6} {:<34} {:>11.3e} {:>11.3e} {:>7.2}x {:>6} {:>8} {:>9}\n",
                r.case_name,
                r.op,
                r.scalar,
                r.config,
                r.tuned_secs,
                r.heuristic_secs,
                r.speedup(),
                r.candidates,
                r.samples,
                r.cache,
            ));
        }
        let n_reg = self.regressions().len();
        out.push_str(&format!(
            "cscv-xtask tune: {} — {} row(s), {} regression(s) beyond the {:.0}% band\n",
            if n_reg == 0 { "OK" } else { "FAIL" },
            self.rows.len(),
            n_reg,
            NOISE_BAND * 100.0
        ));
        out
    }

    pub fn render_ndjson(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            out.push_str(
                &Json::obj(vec![
                    ("type", "tune-row".into()),
                    ("case", r.case_name.as_str().into()),
                    ("op", r.op.as_str().into()),
                    ("scalar", r.scalar.as_str().into()),
                    ("config", r.config.as_str().into()),
                    ("tuned_secs", r.tuned_secs.into()),
                    ("heuristic_secs", r.heuristic_secs.into()),
                    ("speedup", r.speedup().into()),
                    ("candidates", (r.candidates as u64).into()),
                    ("samples", (r.samples as u64).into()),
                    ("cache", r.cache.as_str().into()),
                    ("regression", Json::Bool(r.is_regression(NOISE_BAND))),
                ])
                .to_string(),
            );
            out.push('\n');
        }
        out.push_str(
            &Json::obj(vec![
                ("type", "tune-summary".into()),
                ("rows", (self.rows.len() as u64).into()),
                ("regressions", (self.regressions().len() as u64).into()),
                ("noise_band", NOISE_BAND.into()),
            ])
            .to_string(),
        );
        out.push('\n');
        out
    }
}

fn case_name(d: &CaseDesc) -> String {
    format!("{}-{}x{}-s{}", d.kind.name(), d.n_views, d.n_bins, d.seed)
}

fn outcome_name(o: CacheOutcome) -> String {
    match o {
        CacheOutcome::HitExact => "hit".into(),
        CacheOutcome::HitNear(d) => format!("near({d:.2})"),
        CacheOutcome::Miss => "miss".into(),
    }
}

/// Full-matrix min-of-reps seconds of one config via the harness
/// measurement path (records to the manifest if `CSCV_MANIFEST_DIR` is
/// set, like every other measurement in the suite).
fn measure_config(
    csc: &Csc<f64>,
    layout: SinoLayout,
    img: ImageShape,
    cfg: ExecConfig,
    threads: usize,
    warmup: usize,
    reps: usize,
) -> Result<f64, String> {
    let exec = CscvExec::from_csc(csc, layout, img, cfg).map_err(|e| e.to_string())?;
    let pool = ThreadPool::new(threads);
    let x: Vec<f64> = (0..csc.n_cols())
        .map(|i| 0.5 + (i % 17) as f64 * 0.03125)
        .collect();
    let mut y = vec![0.0; csc.n_rows()];
    let m: SpmvMeasurement = measure_spmv(&exec, &x, &mut y, &pool, warmup, reps.max(1));
    Ok(m.secs_min)
}

/// Run the batch tune over the corpus. The per-descriptor operation
/// set is fixed (single-RHS SpMV for f64) — the quantity the paper's
/// tables key on; the library API tunes any (op, scalar) pair.
pub fn run(cfg: &TuneCmdConfig) -> Result<TuneOutcome, String> {
    let descs = load_corpus(&cfg.corpus)?;
    if descs.is_empty() {
        return Err(format!("no case descriptors in {}", cfg.corpus.display()));
    }
    let mut cache = match &cfg.cache {
        Some(p) => TuneCache::load(p),
        None => TuneCache::in_memory(),
    };
    let mut outcome = TuneOutcome::default();
    for desc in &descs {
        let layout = SinoLayout {
            n_views: desc.n_views,
            n_bins: desc.n_bins,
        };
        let img = ImageShape {
            nx: desc.nx,
            ny: desc.ny,
        };
        let csc: Csc<f64> = generate(desc).to_csc();
        let opts = TuneOptions {
            op: Op::Spmv,
            reps: cfg.reps,
            warmup: cfg.warmup,
            max_threads: cfg.threads,
            ..TuneOptions::default()
        };
        let report = if cfg.model {
            tune(&csc, layout, img, &opts, &mut cache, &mut ModelBench)?
        } else {
            tune(&csc, layout, img, &opts, &mut cache, &mut WallClockBench)?
        };

        // Independent verification on the full matrix: the search's
        // sampled numbers selected the config; these measurements judge
        // it. Skipped under --model (no wall clock to consult).
        let (tuned_secs, heuristic_secs) = if cfg.model {
            (report.tuned_secs, report.heuristic_secs)
        } else {
            let heuristic = TunedConfig::heuristic(opts.op, cfg.threads);
            (
                measure_config(
                    &csc,
                    layout,
                    img,
                    report.chosen.exec_config(),
                    report.chosen.threads,
                    cfg.warmup,
                    cfg.reps,
                )?,
                measure_config(
                    &csc,
                    layout,
                    img,
                    heuristic.exec_config(),
                    heuristic.threads,
                    cfg.warmup,
                    cfg.reps,
                )?,
            )
        };

        outcome.rows.push(TuneRow {
            case_name: case_name(desc),
            op: opts.op.key(),
            scalar: "f64".into(),
            config: report.chosen.describe(),
            tuned_secs,
            heuristic_secs,
            candidates: report.candidates_tried,
            samples: report.samples_run,
            cache: outcome_name(report.cache),
        });
    }
    cache.save();
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_corpus(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cscv-tune-cmd-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("banded.case"),
            "kind=ct-banded views=16 bins=16 nx=8 ny=8 imgb=4 vvec=8 vxg=4 seed=3\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("random.case"),
            "kind=uniform-random views=16 bins=16 nx=8 ny=8 imgb=4 vvec=8 vxg=4 seed=3\n",
        )
        .unwrap();
        dir
    }

    fn model_cfg(corpus: PathBuf) -> TuneCmdConfig {
        TuneCmdConfig {
            corpus,
            reps: 1,
            warmup: 0,
            model: true,
            threads: 2,
            ..TuneCmdConfig::default()
        }
    }

    #[test]
    fn batch_tune_produces_one_row_per_descriptor() {
        let dir = write_corpus("rows");
        let outcome = run(&model_cfg(dir.clone())).unwrap();
        assert_eq!(outcome.rows.len(), 2);
        for r in &outcome.rows {
            assert!(
                r.speedup() >= 1.0,
                "{}: model argmin cannot lose",
                r.case_name
            );
            assert_eq!(r.cache, "miss", "fresh cache, distinct structures");
            assert!(r.candidates > 1);
        }
        assert!(outcome.regressions().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_cache_second_run_skips_the_search() {
        let dir = write_corpus("warm");
        let cache = dir.join("cache.json");
        let mut cfg = model_cfg(dir.clone());
        cfg.cache = Some(cache.clone());
        run(&cfg).unwrap();
        assert!(cache.is_file(), "cache must persist between runs");
        let second = run(&cfg).unwrap();
        for r in &second.rows {
            assert_eq!(r.cache, "hit", "{}", r.case_name);
            assert_eq!(r.samples, 0, "warm run must take zero samples");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn renderers_cover_all_rows() {
        let dir = write_corpus("render");
        let outcome = run(&model_cfg(dir.clone())).unwrap();
        let table = outcome.render_table();
        assert!(table.contains("ct-banded-16x16-s3"));
        assert!(table.contains("uniform-random-16x16-s3"));
        assert!(table.contains("OK"));
        let ndjson = outcome.render_ndjson();
        let lines: Vec<&str> = ndjson.lines().collect();
        assert_eq!(lines.len(), 3, "2 rows + summary");
        let summary = Json::parse(lines[2]).unwrap();
        assert_eq!(
            summary.get("type").and_then(Json::as_str),
            Some("tune-summary")
        );
        assert_eq!(summary.get("regressions").and_then(Json::as_f64), Some(0.0));
        for line in &lines[..2] {
            let row = Json::parse(line).unwrap();
            assert_eq!(row.get("regression"), Some(&Json::Bool(false)));
            assert!(row.get("speedup").and_then(Json::as_f64).unwrap() >= 1.0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_corpus_is_an_error() {
        let cfg = model_cfg(PathBuf::from("/nonexistent/corpus"));
        assert!(run(&cfg).is_err());
    }

    #[test]
    fn regression_detection_applies_the_noise_band() {
        let row = TuneRow {
            case_name: "x".into(),
            op: "spmv".into(),
            scalar: "f64".into(),
            config: "cfg".into(),
            tuned_secs: 1.2,
            heuristic_secs: 1.0,
            candidates: 1,
            samples: 1,
            cache: "miss".into(),
        };
        assert!(!row.is_regression(NOISE_BAND), "within the band");
        let slow = TuneRow {
            tuned_secs: 1.3,
            ..row
        };
        assert!(slow.is_regression(NOISE_BAND));
    }
}
