//! The project lint rules and the directory walker.
//!
//! Four rules, all specific to this workspace's soundness posture:
//!
//! * [`RULE_SAFETY_COMMENT`] — every `unsafe` block / fn / impl must be
//!   preceded by a contiguous comment or doc block containing `SAFETY:`
//!   (or a `# Safety` doc section), or carry one on the same line.
//! * [`RULE_UNSAFE_WHITELIST`] — `unsafe` may appear only in the audited
//!   modules: `shared.rs`, `pool.rs`, `exec.rs`, `kernels.rs`,
//!   `expand.rs`, and `formats/*`. Everything else must go through the
//!   safe wrappers those modules export.
//! * [`RULE_HOT_PATH_PANIC`] — kernel hot paths (`kernels.rs`,
//!   `lanes.rs`, `expand.rs`) must not contain `.unwrap()`, `.expect(…)`,
//!   `panic!`, `todo!`, or `unimplemented!` outside `#[cfg(test)]`
//!   modules: kernels report errors through types or debug-asserts, they
//!   do not abort mid-SpMV.
//! * [`RULE_TRACE_FALLBACK`] — every `#[cfg(feature = "trace")]`-gated
//!   item (other than module declarations and imports, whose availability
//!   is feature-contingent by design) must live in a file that also
//!   provides a `#[cfg(not(feature = "trace"))]` fallback, so untraced
//!   builds keep compiling.

use crate::lexer::{analyze, word_positions, LineView};
use std::fmt;
use std::path::{Path, PathBuf};

pub const RULE_SAFETY_COMMENT: &str = "unsafe-needs-safety-comment";
pub const RULE_UNSAFE_WHITELIST: &str = "unsafe-outside-whitelist";
pub const RULE_HOT_PATH_PANIC: &str = "hot-path-panic";
pub const RULE_TRACE_FALLBACK: &str = "trace-cfg-missing-fallback";

/// Files allowed to contain `unsafe` (by basename), plus anything under
/// a `formats/` directory. Keep this list short: each entry is a module
/// someone has audited end to end.
const UNSAFE_WHITELIST: &[&str] =
    ["shared.rs", "pool.rs", "exec.rs", "kernels.rs", "expand.rs"].as_slice();

/// Kernel hot-path modules where panicking constructs are banned.
const HOT_PATH_FILES: &[&str] = ["kernels.rs", "lanes.rs", "expand.rs"].as_slice();

/// One lint finding, pointing at an exact file:line.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Path relative to the linted root.
    pub file: PathBuf,
    /// 1-indexed line number.
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Result of linting a tree: every finding plus scan statistics.
#[derive(Debug, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    pub files_scanned: usize,
    pub lines_scanned: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Lint one file's source text. `rel` is the path reported in
/// diagnostics and drives the per-module rules.
pub fn lint_source(rel: &Path, source: &str) -> Vec<Diagnostic> {
    let lines = analyze(source);
    let in_test = test_regions(&lines);
    let mut out = Vec::new();
    check_unsafe(rel, &lines, &mut out);
    check_hot_path(rel, &lines, &in_test, &mut out);
    check_trace_fallback(rel, &lines, &mut out);
    out
}

fn basename(rel: &Path) -> &str {
    rel.file_name().and_then(|n| n.to_str()).unwrap_or("")
}

fn in_formats_dir(rel: &Path) -> bool {
    rel.parent()
        .and_then(|p| p.file_name())
        .and_then(|n| n.to_str())
        == Some("formats")
}

fn unsafe_allowed(rel: &Path) -> bool {
    UNSAFE_WHITELIST.contains(&basename(rel)) || in_formats_dir(rel)
}

/// Mark lines inside `#[cfg(test)] mod … { … }` regions (brace-counted
/// on the blanked code view, so strings and comments cannot derail it).
pub(crate) fn test_regions(lines: &[LineView]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut i = 0usize;
    while i < lines.len() {
        if !lines[i].code.contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // Skip attributes/comments until the `mod` item opens.
        let mut j = i + 1;
        while j < lines.len()
            && !word_positions(&lines[j].code, "mod").iter().any(|_| true)
            && (lines[j].is_code_blank() || lines[j].is_attribute())
        {
            j += 1;
        }
        if j >= lines.len() || word_positions(&lines[j].code, "mod").is_empty() {
            i += 1;
            continue;
        }
        // Brace-count from the mod header to its closing brace.
        let mut depth = 0i64;
        let mut opened = false;
        let mut k = j;
        while k < lines.len() {
            for c in lines[k].code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            in_test[k] = true;
            if opened && depth <= 0 {
                break;
            }
            k += 1;
        }
        i = k + 1;
    }
    in_test
}

/// Whether a comment line satisfies the SAFETY requirement.
fn has_safety_marker(comment: &str) -> bool {
    comment.contains("SAFETY") || comment.contains("# Safety") || comment.contains("Soundness")
}

fn check_unsafe(rel: &Path, lines: &[LineView], out: &mut Vec<Diagnostic>) {
    let allowed = unsafe_allowed(rel);
    for (idx, line) in lines.iter().enumerate() {
        if word_positions(&line.code, "unsafe").is_empty() {
            continue;
        }
        if !allowed {
            out.push(Diagnostic {
                file: rel.to_path_buf(),
                line: idx + 1,
                rule: RULE_UNSAFE_WHITELIST,
                message: format!(
                    "`unsafe` is not allowed in `{}`; move the operation behind a safe \
                     wrapper in one of the audited modules ({}, formats/*)",
                    basename(rel),
                    UNSAFE_WHITELIST.join(", "),
                ),
            });
        }
        if !safety_comment_covers(lines, idx) {
            out.push(Diagnostic {
                file: rel.to_path_buf(),
                line: idx + 1,
                rule: RULE_SAFETY_COMMENT,
                message: "`unsafe` without a preceding `// SAFETY:` comment (or `# Safety` \
                          doc section) stating the invariant that makes it sound"
                    .to_string(),
            });
        }
    }
}

/// Walk upward from the `unsafe` line through its contiguous annotation
/// block (comments, doc comments, attributes); accept if any of it —
/// or a trailing comment on the line itself — carries a SAFETY marker.
fn safety_comment_covers(lines: &[LineView], idx: usize) -> bool {
    if has_safety_marker(&lines[idx].comment) {
        return true;
    }
    let mut k = idx;
    while k > 0 {
        k -= 1;
        let l = &lines[k];
        if l.is_comment_only() {
            if has_safety_marker(&l.comment) {
                return true;
            }
            continue;
        }
        if l.is_attribute() {
            // Attributes may carry a trailing comment.
            if has_safety_marker(&l.comment) {
                return true;
            }
            continue;
        }
        break; // blank line or real code: the annotation block ended
    }
    false
}

fn check_hot_path(rel: &Path, lines: &[LineView], in_test: &[bool], out: &mut Vec<Diagnostic>) {
    if !HOT_PATH_FILES.contains(&basename(rel)) {
        return;
    }
    const BANNED: &[(&str, &str)] = &[
        (".unwrap()", "unwrap"),
        (".expect(", "expect"),
        ("panic!", "panic!"),
        ("todo!", "todo!"),
        ("unimplemented!", "unimplemented!"),
    ];
    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        for (needle, name) in BANNED {
            if line.code.contains(needle) {
                out.push(Diagnostic {
                    file: rel.to_path_buf(),
                    line: idx + 1,
                    rule: RULE_HOT_PATH_PANIC,
                    message: format!(
                        "`{name}` in kernel hot path `{}`: hot loops must not abort — \
                         validate at the boundary or use debug_assert!",
                        basename(rel),
                    ),
                });
            }
        }
    }
}

fn check_trace_fallback(rel: &Path, lines: &[LineView], out: &mut Vec<Diagnostic>) {
    // Patterns assembled at runtime so this linter's own source (and the
    // blanked-strings code view) never matches them.
    let pos = format!("cfg(feature = {q}trace{q})", q = '"');
    let neg = format!("cfg(not(feature = {q}trace{q}))", q = '"');
    let has_fallback = lines.iter().any(|l| l.code_with_strings.contains(&neg));
    for (idx, line) in lines.iter().enumerate() {
        if !line.code_with_strings.contains(&pos) || line.code_with_strings.contains(&neg) {
            continue;
        }
        // Find the gated item: first following line with real code that
        // is not an attribute. Module declarations and imports are
        // exempt — their whole point is feature-contingent availability.
        let mut j = idx + 1;
        while j < lines.len() && (lines[j].is_code_blank() || lines[j].is_attribute()) {
            j += 1;
        }
        let gated = lines.get(j).map(|l| l.code.trim()).unwrap_or("");
        let exempt = ["mod ", "pub mod ", "pub(crate) mod ", "use ", "pub use "]
            .iter()
            .any(|p| gated.starts_with(p));
        if !exempt && !has_fallback {
            out.push(Diagnostic {
                file: rel.to_path_buf(),
                line: idx + 1,
                rule: RULE_TRACE_FALLBACK,
                message: "item gated on `feature = \"trace\"` but the file provides no \
                          `#[cfg(not(feature = \"trace\"))]` fallback — untraced builds \
                          would lose this API"
                    .to_string(),
            });
        }
    }
}

/// Lint every `crates/*/src/**.rs` file (plus the umbrella `src/`) under
/// `root`. Returns an error string on IO failure.
pub fn lint_root(root: &Path) -> Result<Report, String> {
    let mut report = Report::default();
    let mut src_dirs: Vec<PathBuf> = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let entries =
            std::fs::read_dir(&crates).map_err(|e| format!("read {}: {e}", crates.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read {}: {e}", crates.display()))?;
            let src = entry.path().join("src");
            if src.is_dir() {
                src_dirs.push(src);
            }
        }
    }
    let umbrella = root.join("src");
    if umbrella.is_dir() {
        src_dirs.push(umbrella);
    }
    if src_dirs.is_empty() {
        return Err(format!(
            "no crates/*/src directories under {}",
            root.display()
        ));
    }
    src_dirs.sort();
    let mut files = Vec::new();
    for dir in &src_dirs {
        collect_rs_files(dir, &mut files)?;
    }
    files.sort();
    for file in files {
        let source =
            std::fs::read_to_string(&file).map_err(|e| format!("read {}: {e}", file.display()))?;
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        report.files_scanned += 1;
        report.lines_scanned += source.lines().count();
        report.diagnostics.extend(lint_source(&rel, &source));
    }
    Ok(report)
}

pub(crate) fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag_rules(rel: &str, src: &str) -> Vec<&'static str> {
        lint_source(Path::new(rel), src)
            .into_iter()
            .map(|d| d.rule)
            .collect()
    }

    #[test]
    fn commented_unsafe_in_whitelisted_file_is_clean() {
        let src = "fn f(p: *mut u8) {\n    // SAFETY: p is valid for writes.\n    unsafe { *p = 0 };\n}\n";
        assert!(diag_rules("crates/sparse/src/shared.rs", src).is_empty());
    }

    #[test]
    fn uncommented_unsafe_flagged_with_line() {
        let src = "fn f(p: *mut u8) {\n    unsafe { *p = 0 };\n}\n";
        let diags = lint_source(Path::new("crates/sparse/src/shared.rs"), src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE_SAFETY_COMMENT);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn safety_comment_seen_through_attributes() {
        let src = "// SAFETY: the referent outlives all uses.\n#[allow(clippy::mut_from_ref)]\nunsafe impl Send for X {}\n";
        assert!(diag_rules("crates/sparse/src/pool.rs", src).is_empty());
    }

    #[test]
    fn doc_safety_section_accepted() {
        let src = "/// Does things.\n///\n/// # Safety\n/// Caller must uphold X.\npub unsafe fn f() {}\n";
        assert!(diag_rules("crates/simd/src/expand.rs", src).is_empty());
    }

    #[test]
    fn blank_line_breaks_the_annotation_block() {
        let src = "// SAFETY: stale comment.\n\nunsafe fn f() {}\n";
        assert_eq!(
            diag_rules("crates/sparse/src/pool.rs", src),
            vec![RULE_SAFETY_COMMENT]
        );
    }

    #[test]
    fn unsafe_outside_whitelist_flagged() {
        let src = "fn f(p: *mut u8) {\n    // SAFETY: fine.\n    unsafe { *p = 0 };\n}\n";
        assert_eq!(
            diag_rules("crates/recon/src/sirt.rs", src),
            vec![RULE_UNSAFE_WHITELIST]
        );
    }

    #[test]
    fn formats_dir_is_whitelisted() {
        let src = "// SAFETY: fine.\nunsafe fn f() {}\n";
        assert!(diag_rules("crates/sparse/src/formats/anything.rs", src).is_empty());
    }

    #[test]
    fn unsafe_in_string_or_comment_ignored() {
        let src = "// this mentions unsafe code\nlet s = \"unsafe\";\n";
        assert!(diag_rules("crates/recon/src/sirt.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_kernel_hot_path_flagged() {
        let src = "pub fn kernel(v: &[f64]) -> f64 {\n    *v.first().unwrap()\n}\n";
        let diags = lint_source(Path::new("crates/core/src/kernels.rs"), src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE_HOT_PATH_PANIC);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn unwrap_in_test_module_allowed() {
        let src = "pub fn kernel() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1).unwrap();\n    }\n}\n";
        assert!(diag_rules("crates/core/src/kernels.rs", src).is_empty());
    }

    #[test]
    fn unwrap_outside_hot_path_allowed() {
        let src = "pub fn setup() { Some(1).unwrap(); }\n";
        assert!(diag_rules("crates/harness/src/suite.rs", src).is_empty());
    }

    #[test]
    fn trace_cfg_without_fallback_flagged() {
        let src = format!(
            "#[cfg(feature = {q}trace{q})]\npub fn traced() {{}}\n",
            q = '"'
        );
        assert_eq!(
            diag_rules("crates/trace/src/span.rs", &src),
            vec![RULE_TRACE_FALLBACK]
        );
    }

    #[test]
    fn trace_cfg_with_fallback_clean() {
        let src = format!(
            "#[cfg(feature = {q}trace{q})]\npub fn traced() {{}}\n#[cfg(not(feature = {q}trace{q}))]\npub fn traced() {{}}\n",
            q = '"'
        );
        assert!(diag_rules("crates/trace/src/span.rs", &src).is_empty());
    }

    #[test]
    fn trace_gated_module_declaration_exempt() {
        let src = format!(
            "#[cfg(feature = {q}trace{q})]\npub(crate) mod registry;\n",
            q = '"'
        );
        assert!(diag_rules("crates/trace/src/lib.rs", &src).is_empty());
    }
}
