//! `cscv-xtask shard` — sharded-vs-single-process equivalence driver.
//!
//! Assembles a CT system matrix from a committed case file, simulates a
//! Shepp-Logan sinogram, then runs each requested solver twice per
//! worker count: once on the single-process [`LocalOperator`] reference
//! and once on a [`ShardedOperator`] over a freshly launched cluster
//! (real worker processes by default — `cscv-xtask shard-worker`
//! children over Unix sockets). The gate:
//!
//! * `workers = 1` must be **byte-identical** to the reference (the
//!   forward gather is placement-only and a one-shard adjoint merge is
//!   a copy — no arithmetic happens that could differ);
//! * `workers > 1` must keep the residual trajectory within `--tol`
//!   (default `1e-10` relative, per iteration) of the reference — the
//!   fixed-order tree reduction is the only floating-point difference.
//!
//! Iteration depth defaults per solver (see [`default_iters`]): the
//! stationary iterations run 12 steps, CGLS runs 8. A Krylov recurrence
//! amplifies the tree-reduction's reassociation perturbation by roughly
//! two orders of magnitude *per iteration* (measured on the committed
//! case: rel diff 7e-15 at iteration 8 grows to 2e-7 by iteration 11),
//! so deep CGLS trajectories cannot meet a 1e-10 gate *in principle* —
//! not a sharding bug, a property of conjugate-gradient arithmetic.
//! `--iters N` overrides the depth for every solver.
//!
//! Exit codes follow the xtask contract: 0 = all runs passed, 1 = an
//! equivalence gate failed, 2 = usage/IO error. Every run is also
//! recorded to the NDJSON manifest (`type: "shard"`) when
//! `CSCV_MANIFEST_DIR` is set — the artifact the `shard-smoke` CI job
//! uploads.

use cscv_core::layout::ImageShape;
use cscv_core::SinoLayout;
use cscv_ct::geometry::CtGeometry;
use cscv_ct::phantom::Phantom;
use cscv_ct::system::SystemMatrix;
use cscv_harness::manifest::{record_shard, ShardRunRecord};
use cscv_recon::driver::{bitwise_equal, run_solver, trajectory_max_rel_diff, Solver};
use cscv_shard::{Cluster, Launch, LocalOperator, PartitionMethod, ShardPlan, ShardedOperator};
use cscv_sparse::{Csr, ThreadPool};
use cscv_trace::json::Json;
use std::path::PathBuf;

/// The committed default case (embedded so the command works from any
/// working directory; `--case FILE` overrides).
pub const DEFAULT_CASE: &str = include_str!("../../shard/cases/shepp-logan-smoke.case");

/// Configuration for one `shard` invocation.
#[derive(Debug, Clone)]
pub struct ShardCmdConfig {
    /// Case file path; `None` uses the embedded default.
    pub case: Option<PathBuf>,
    /// Worker counts to exercise (e.g. `[1, 2, 4]`).
    pub workers: Vec<usize>,
    /// Solvers to run (default: all).
    pub solvers: Vec<Solver>,
    /// Solver iterations per run; `None` = per-solver [`default_iters`].
    pub iters: Option<usize>,
    /// Partitioner.
    pub method: PartitionMethod,
    /// Threads per worker pool.
    pub threads: usize,
    /// Launch in-process worker threads instead of processes.
    pub threads_launch: bool,
    /// Relative per-iteration trajectory tolerance for `workers > 1`.
    pub tol: f64,
    /// Write a merged multi-process Chrome trace (coordinator lane plus
    /// one lane per worker of the **last** run) to this path.
    pub trace_export: Option<PathBuf>,
    /// Write per-worker telemetry NDJSON (`type: "telemetry"`, one row
    /// per worker per run) to this path.
    pub telemetry_out: Option<PathBuf>,
}

impl Default for ShardCmdConfig {
    fn default() -> Self {
        ShardCmdConfig {
            case: None,
            workers: vec![1, 2, 4],
            solvers: Solver::ALL.to_vec(),
            iters: None,
            method: PartitionMethod::Stripe,
            threads: 1,
            threads_launch: false,
            tol: 1e-10,
            trace_export: None,
            telemetry_out: None,
        }
    }
}

/// Default iteration depth per solver. Stationary iterations (SIRT,
/// Landweber) are contractive fixed-point maps — a rounding-level
/// perturbation from the shards' fixed-order tree reduction stays at
/// rounding level, so they run deeper. The CGLS recurrence amplifies
/// that same perturbation ~10²× per iteration, so its default stops
/// while the `1e-10` gate still has four orders of margin.
pub fn default_iters(solver: Solver) -> usize {
    match solver {
        Solver::Cgls => 8,
        Solver::Sirt | Solver::Landweber => 12,
    }
}

/// A parsed case file (`key = value` lines, `#` comments).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCase {
    pub name: String,
    pub img: usize,
    pub bins: usize,
    pub views: usize,
    pub delta_deg: f64,
}

impl ShardCase {
    /// Parse the `key = value` format of `crates/shard/cases/*.case`.
    pub fn parse(text: &str) -> Result<ShardCase, String> {
        let mut name = None;
        let mut img = None;
        let mut bins = None;
        let mut views = None;
        let mut delta = None;
        for (ln, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| format!("case line {}: expected key = value", ln + 1))?;
            let (k, v) = (k.trim(), v.trim());
            let bad = |what: &str| format!("case line {}: bad {what}: {v}", ln + 1);
            match k {
                "name" => name = Some(v.to_string()),
                "img" => img = Some(v.parse().map_err(|_| bad("img"))?),
                "bins" => bins = Some(v.parse().map_err(|_| bad("bins"))?),
                "views" => views = Some(v.parse().map_err(|_| bad("views"))?),
                "delta" => delta = Some(v.parse().map_err(|_| bad("delta"))?),
                other => return Err(format!("case line {}: unknown key {other}", ln + 1)),
            }
        }
        let req = |o: Option<usize>, k: &str| o.ok_or_else(|| format!("case: missing {k}"));
        Ok(ShardCase {
            name: name.ok_or("case: missing name")?,
            img: req(img, "img")?,
            bins: req(bins, "bins")?,
            views: req(views, "views")?,
            delta_deg: delta.ok_or("case: missing delta")?,
        })
    }
}

/// One (solver, worker-count) run's figures and verdict.
#[derive(Debug, Clone)]
pub struct ShardRun {
    pub solver: &'static str,
    pub workers: usize,
    pub iters: usize,
    pub secs: f64,
    pub ref_secs: f64,
    pub max_rel_diff: f64,
    pub bitwise: bool,
    pub pass: bool,
    pub bytes_tx: u64,
    pub bytes_rx: u64,
    pub reduce_ns: u64,
    pub worker_busy_ns: u64,
    pub wall_ns: u64,
    /// Telemetry frames the coordinator received from workers (0 in
    /// untraced builds).
    pub trace_frames: u64,
    /// Workers whose final stats had to be recovered from their last
    /// streamed snapshot (abnormal death / desync).
    pub degraded_workers: u64,
    pub execs: String,
}

/// The full invocation's results.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    pub case: ShardCase,
    pub method: PartitionMethod,
    pub runs: Vec<ShardRun>,
}

impl ShardOutcome {
    /// Runs that failed their equivalence gate.
    pub fn failures(&self) -> Vec<&ShardRun> {
        self.runs.iter().filter(|r| !r.pass).collect()
    }

    /// Human-readable fixed-width table.
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "case {} ({}² image, {} views × {} bins), {} partitioning\n",
            self.case.name,
            self.case.img,
            self.case.views,
            self.case.bins,
            self.method.name()
        );
        out.push_str(&format!(
            "{:<10} {:>7} {:>5} {:>9} {:>9} {:>12} {:>8} {:>10} {:>10} {:>9} {:>6}  {}\n",
            "solver",
            "workers",
            "iters",
            "secs",
            "ref-secs",
            "max-rel-diff",
            "bitwise",
            "tx-bytes",
            "rx-bytes",
            "reduce-ms",
            "pass",
            "execs"
        ));
        for r in &self.runs {
            out.push_str(&format!(
                "{:<10} {:>7} {:>5} {:>9.4} {:>9.4} {:>12.3e} {:>8} {:>10} {:>10} {:>9.3} {:>6}  {}\n",
                r.solver,
                r.workers,
                r.iters,
                r.secs,
                r.ref_secs,
                r.max_rel_diff,
                if r.bitwise { "yes" } else { "no" },
                r.bytes_tx,
                r.bytes_rx,
                r.reduce_ns as f64 / 1e6,
                if r.pass { "ok" } else { "FAIL" },
                r.execs,
            ));
        }
        let fails = self.failures().len();
        out.push_str(&format!(
            "cscv-xtask shard: {} — {} run(s), {} failure(s)\n",
            if fails == 0 { "OK" } else { "FAIL" },
            self.runs.len(),
            fails
        ));
        out
    }

    /// One JSON object per run, newline-delimited.
    pub fn render_ndjson(&self) -> String {
        let mut out = String::new();
        for r in &self.runs {
            let obj = Json::obj(vec![
                ("type", "shard".into()),
                ("case", self.case.name.as_str().into()),
                ("solver", r.solver.into()),
                ("method", self.method.name().into()),
                ("workers", (r.workers as u64).into()),
                ("iterations", (r.iters as u64).into()),
                ("secs", r.secs.into()),
                ("ref_secs", r.ref_secs.into()),
                ("max_rel_diff", r.max_rel_diff.into()),
                ("bitwise", r.bitwise.into()),
                ("pass", r.pass.into()),
                ("bytes_tx", r.bytes_tx.into()),
                ("bytes_rx", r.bytes_rx.into()),
                ("reduce_ns", r.reduce_ns.into()),
                ("worker_busy_ns", r.worker_busy_ns.into()),
                ("wall_ns", r.wall_ns.into()),
                ("trace_frames", r.trace_frames.into()),
                ("degraded_workers", r.degraded_workers.into()),
                ("execs", r.execs.as_str().into()),
            ]);
            out.push_str(&obj.to_string());
            out.push('\n');
        }
        out
    }
}

/// Execute the equivalence matrix described by `cfg`.
pub fn run(cfg: &ShardCmdConfig) -> Result<ShardOutcome, String> {
    let text = match &cfg.case {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?
        }
        None => DEFAULT_CASE.to_string(),
    };
    let case = ShardCase::parse(&text)?;
    if cfg.workers.is_empty() || cfg.iters == Some(0) {
        return Err("need at least one worker count and one iteration".into());
    }

    // Assemble the system and simulate the measurement.
    let geom = CtGeometry::standard(case.img, case.bins, case.views, 0.0, case.delta_deg);
    let csc = SystemMatrix::assemble_csc::<f64>(&geom);
    let csr: Csr<f64> = csc.to_csr();
    let layout = SinoLayout {
        n_views: case.views,
        n_bins: case.bins,
    };
    let img = ImageShape {
        nx: case.img,
        ny: case.img,
    };
    let truth = Phantom::shepp_logan().rasterize(&geom.grid);
    let mut sino = vec![0.0; csr.n_rows()];
    csr.spmv_serial(&truth, &mut sino);

    // Single-process reference: the same backend code path the workers
    // run, same tuning-cache source — byte-identity's other half.
    let mut cache = cscv_shard::worker::env_cache();
    let local = LocalOperator::new(csr.clone(), Some(layout), img, cfg.threads, &mut cache);
    let pool = ThreadPool::new(1); // operators ignore it; see cscv-shard
    let row_nnz: Vec<usize> = (0..csr.n_rows()).map(|r| csr.row(r).0.len()).collect();

    let launch = if cfg.threads_launch {
        Launch::Threads
    } else {
        let exe = std::env::current_exe()
            .map_err(|e| format!("current_exe: {e}"))?
            .to_string_lossy()
            .into_owned();
        Launch::Process {
            cmd: vec![exe, "shard-worker".into()],
        }
    };

    let mut runs = Vec::new();
    let mut telemetry_lines = String::new();
    // Worker lanes for the merged Chrome trace: each run starts a fresh
    // cluster (its own workers and clock offsets), so the export keeps
    // the last run's lanes — with one solver and one worker count (the
    // traced CI leg) that is simply "the run".
    let mut last_traces: Vec<cscv_trace::export::ProcessTrace> = Vec::new();
    let mut last_traces_workers = 0usize;
    for &solver in &cfg.solvers {
        let iters = cfg.iters.unwrap_or_else(|| default_iters(solver));
        let t0 = std::time::Instant::now();
        let reference = run_solver(solver, &local, &sino, iters, &pool);
        let ref_secs = t0.elapsed().as_secs_f64();
        for &w in &cfg.workers {
            let plan = ShardPlan::new(&row_nnz, w, case.bins, cfg.method);
            let cluster = Cluster::start(&csr, &plan, layout, img, cfg.threads, &launch)
                .map_err(|e| format!("cluster start ({w} workers): {e}"))?;
            let execs = cluster.exec_names().join(",");
            let sharded =
                ShardedOperator::new(cluster).map_err(|e| format!("abs-sums collective: {e}"))?;
            let t0 = std::time::Instant::now();
            let result = run_solver(solver, &sharded, &sino, iters, &pool);
            let secs = t0.elapsed().as_secs_f64();
            let report = sharded
                .shutdown_full()
                .map_err(|e| format!("cluster shutdown ({w} workers): {e}"))?;
            let stats = report.stats;
            for wh in &report.telemetry.workers {
                let row = Json::obj(vec![
                    ("type", "telemetry".into()),
                    ("case", case.name.as_str().into()),
                    ("solver", solver.name().into()),
                    ("workers", (w as u64).into()),
                    ("shard", (wh.shard as u64).into()),
                    ("pid", wh.pid.into()),
                    ("requests", wh.requests.into()),
                    ("bytes_tx", wh.bytes_tx.into()),
                    ("bytes_rx", wh.bytes_rx.into()),
                    ("busy_ns", wh.busy_ns.into()),
                    ("spmv_calls", wh.spmv_calls.into()),
                    ("spmv_t_calls", wh.spmv_t_calls.into()),
                    ("trace_frames", wh.trace_frames.into()),
                    ("trace_bytes", wh.trace_bytes.into()),
                    ("last_seen_ns", wh.last_seen_ns.into()),
                    ("clock_offset_ns", Json::Num(wh.clock_offset_ns as f64)),
                    ("clock_rtt_ns", wh.clock_rtt_ns.into()),
                    ("degraded", wh.degraded.into()),
                ]);
                telemetry_lines.push_str(&row.to_string());
                telemetry_lines.push('\n');
            }
            last_traces = report.traces;
            last_traces_workers = w;
            let telemetry = report.telemetry;

            let max_rel_diff =
                trajectory_max_rel_diff(&reference.residual_history, &result.residual_history);
            let bitwise = bitwise_equal(&reference, &result);
            let pass = if w == 1 {
                bitwise
            } else {
                max_rel_diff <= cfg.tol
            };
            let run = ShardRun {
                solver: solver.name(),
                workers: w,
                iters,
                secs,
                ref_secs,
                max_rel_diff,
                bitwise,
                pass,
                bytes_tx: stats.bytes_tx,
                bytes_rx: stats.bytes_rx,
                reduce_ns: stats.reduce_ns,
                worker_busy_ns: stats.workers.iter().map(|x| x.busy_ns).sum(),
                wall_ns: stats.wall_ns,
                trace_frames: telemetry.workers.iter().map(|x| x.trace_frames).sum(),
                degraded_workers: stats.workers.iter().filter(|x| x.degraded).count() as u64,
                execs,
            };
            record_shard(&ShardRunRecord {
                case: &case.name,
                solver: run.solver,
                method: cfg.method.name(),
                workers: w,
                iterations: iters,
                secs,
                max_rel_diff,
                bitwise,
                bytes_tx: run.bytes_tx,
                bytes_rx: run.bytes_rx,
                reduce_ns: run.reduce_ns,
                worker_busy_ns: run.worker_busy_ns,
                execs: &run.execs,
            });
            runs.push(run);
        }
    }
    if let Some(path) = &cfg.telemetry_out {
        write_out(path, &telemetry_lines)?;
    }
    if let Some(path) = &cfg.trace_export {
        let doc = merged_chrome_trace(last_traces, last_traces_workers);
        write_out(path, &doc.to_string())?;
        if !cscv_trace::ENABLED {
            eprintln!(
                "cscv-xtask shard: note: built without --features trace, \
                 {} contains empty lanes",
                path.display()
            );
        }
    }
    Ok(ShardOutcome {
        case,
        method: cfg.method,
        runs,
    })
}

/// Assemble the merged multi-process Chrome trace: the coordinator's own
/// registry snapshot as pid 1 plus the last run's worker lanes (pids
/// `shard + 2`). With `--launch threads` the workers' serve threads live
/// in the coordinator's registry too — those events already stream back
/// through the worker lanes, so they are filtered out of the coordinator
/// lane rather than drawn twice.
fn merged_chrome_trace(
    worker_traces: Vec<cscv_trace::export::ProcessTrace>,
    workers: usize,
) -> Json {
    let coord_events: Vec<_> = cscv_trace::export::snapshot()
        .into_iter()
        .filter(|e| !e.thread.starts_with("cscv-shard-serve-"))
        .collect();
    let mut procs = vec![cscv_trace::export::ProcessTrace {
        pid: 1,
        label: format!("cscv-coordinator (pid {})", std::process::id()),
        offset: cscv_trace::clock::OffsetEstimate::default(),
        events: coord_events,
    }];
    procs.extend(worker_traces);
    debug_assert_eq!(procs.len(), workers + 1);
    cscv_trace::export::chrome_trace_merged(&procs)
}

/// Write `text` to `path`, creating parent directories.
fn write_out(path: &PathBuf, text: &str) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        }
    }
    std::fs::write(path, text).map_err(|e| format!("write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_case_parses() {
        let c = ShardCase::parse(DEFAULT_CASE).unwrap();
        assert_eq!(c.name, "shepp-logan-smoke");
        assert_eq!(c.img, 48);
        assert_eq!(c.bins, 70);
        assert_eq!(c.views, 48);
        // Full angular coverage keeps the reconstruction well-posed.
        assert!((c.views as f64 * c.delta_deg - 180.0).abs() < 1e-9);
    }

    #[test]
    fn case_parser_rejects_malformed_input() {
        assert!(ShardCase::parse("img = 32").is_err(), "missing keys");
        assert!(ShardCase::parse("name = x\nimg = y\nbins = 1\nviews = 1\ndelta = 1").is_err());
        assert!(ShardCase::parse("bogus-line\n").is_err());
        assert!(ShardCase::parse("name=x\nimg=2\nbins=3\nviews=4\ndelta=45\nextra=1").is_err());
    }

    #[test]
    fn case_parser_handles_comments_and_spacing() {
        let c = ShardCase::parse("# hi\nname= t \n img =8\nbins=11 # inline\nviews=6\ndelta=30\n")
            .unwrap();
        assert_eq!(c.name, "t");
        assert_eq!((c.img, c.bins, c.views), (8, 11, 6));
        assert_eq!(c.delta_deg, 30.0);
    }

    /// End-to-end over thread-launched workers: small enough for a unit
    /// test, still covers partition → protocol → solve → gate.
    #[test]
    fn thread_launch_equivalence_matrix_passes() {
        let cfg = ShardCmdConfig {
            case: None,
            workers: vec![1, 2],
            solvers: vec![Solver::Sirt],
            iters: Some(4),
            threads_launch: true,
            ..ShardCmdConfig::default()
        };
        let outcome = run(&cfg).unwrap();
        assert_eq!(outcome.runs.len(), 2);
        assert!(outcome.failures().is_empty(), "{}", outcome.render_table());
        let one = &outcome.runs[0];
        assert_eq!(one.workers, 1);
        assert!(one.bitwise, "workers=1 must be byte-identical");
        // View-aligned shards must have built CSCV executors.
        assert!(one.execs.contains("CSCV"), "execs: {}", one.execs);
        let table = outcome.render_table();
        assert!(table.contains("shepp-logan-smoke"));
        let ndjson = outcome.render_ndjson();
        assert_eq!(ndjson.lines().count(), 2);
        let first = Json::parse(ndjson.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("type").and_then(Json::as_str), Some("shard"));
        assert_eq!(first.get("bitwise"), Some(&Json::Bool(true)));
    }

    /// `--telemetry` / `--trace-export` write per-worker health rows and
    /// one merged Chrome trace with a lane per process. With the `trace`
    /// feature off the files still appear (valid, empty-ish) so scripts
    /// need not branch on the build.
    #[test]
    fn telemetry_and_trace_export_write_files() {
        let dir = std::env::temp_dir().join(format!("cscv-shard-telem-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ShardCmdConfig {
            workers: vec![2],
            solvers: vec![Solver::Sirt],
            iters: Some(3),
            threads_launch: true,
            telemetry_out: Some(dir.join("telemetry").join("shard.ndjson")),
            trace_export: Some(dir.join("merged.chrome.json")),
            ..ShardCmdConfig::default()
        };
        let outcome = run(&cfg).unwrap();
        assert!(outcome.failures().is_empty(), "{}", outcome.render_table());

        let telem = std::fs::read_to_string(dir.join("telemetry").join("shard.ndjson")).unwrap();
        let rows: Vec<Json> = telem.lines().map(|l| Json::parse(l).unwrap()).collect();
        assert_eq!(rows.len(), 2, "one row per worker: {telem}");
        for (shard, row) in rows.iter().enumerate() {
            assert_eq!(row.get("type").and_then(Json::as_str), Some("telemetry"));
            assert_eq!(row.get("shard").and_then(Json::as_f64), Some(shard as f64));
            assert_eq!(row.get("degraded"), Some(&Json::Bool(false)));
            // Matrix + AbsSums + forward/adjoint per iteration + Stats.
            assert!(row.get("requests").and_then(Json::as_f64).unwrap() >= 3.0);
        }

        let merged = std::fs::read_to_string(dir.join("merged.chrome.json")).unwrap();
        let doc = Json::parse(&merged).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let lane = |label: &str| {
            events.iter().any(|e| {
                e.get("name").and_then(Json::as_str) == Some("process_name")
                    && e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        .is_some_and(|n| n.starts_with(label))
            })
        };
        assert!(lane("cscv-coordinator"), "coordinator lane missing");
        assert!(
            lane("cscv-worker-0") && lane("cscv-worker-1"),
            "worker lanes missing"
        );
        if cscv_trace::ENABLED {
            // Worker compute spans parented by coordinator dispatch spans.
            assert!(
                events.iter().any(|e| {
                    e.get("name").and_then(Json::as_str) == Some("shard.worker.spmv")
                        && e.get("args").and_then(|a| a.get("parent_span")).is_some()
                }),
                "no parented worker span in merged trace"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
