//! Structure-aware differential fuzzing of the sparse-format stack.
//!
//! Each case is a [`CaseDesc`]: a generator kind (randomized CT-like
//! geometry or a degenerate family — empty columns, a single row,
//! maximum curve-offset skew, tall-skinny, oversized-dimension
//! rejection), the geometry dimensions, the CSCV blocking parameters,
//! and a PRNG seed. A case is fully deterministic: the same descriptor
//! always builds the same matrix, which is what makes shrinking and
//! the committed regression corpus possible with zero dependencies.
//!
//! For every case the harness:
//!
//! 1. round-trips COO → CSR → CSC → COO and transposes, running the
//!    [`cscv_sparse::invariants`] validators after every conversion and
//!    comparing densifications exactly (conversions permute, they never
//!    re-associate arithmetic);
//! 2. builds CSCV-Z and CSCV-M via [`cscv_core::try_build`] and runs
//!    the full invariant catalog ([`CscvMatrix::validate_full`]);
//! 3. differentially checks every executor — CSR (serial + parallel),
//!    CSC (serial + parallel), CSCV-Z/M under both parallel strategies,
//!    through `spmv`, `spmv_multi` and the transpose paths — against
//!    the dense reference within accumulation-order tolerance.
//!
//! A failing case is shrunk by greedy per-dimension halving until no
//! single reduction reproduces the failure, then reported as (and
//! optionally dumped to) a replayable `.case` line. Committed
//! reproducers live in `crates/xtask/fuzz_corpus/` and are replayed by
//! `tests/fuzz_corpus.rs` and every `fuzz --corpus` run.

use cscv_core::layout::ImageShape;
use cscv_core::{
    try_build, CscvExec, CscvMatrix, CscvParams, ParallelStrategy, SinoLayout, Variant,
};
// The descriptor/generator layer moved to `cscv_harness::gen` so the
// autotuner corpus shares it; re-exported here to keep `.case` tooling
// paths stable.
pub use cscv_harness::gen::{generate, random_desc, CaseDesc, GenKind};
use cscv_simd::rng::XorShift64;
use cscv_sparse::formats::csc_exec::{CscParallelExec, CscSerialExec};
use cscv_sparse::formats::csr_exec::{CsrExec, CsrSerialExec};
use cscv_sparse::invariants::{validate_csc, validate_csr};
use cscv_sparse::{Coo, Csc, SpmvExecutor, ThreadPool};
use std::path::PathBuf;

/// What one fuzzing session runs.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Random cases to generate.
    pub iters: u64,
    /// Session seed; case seeds derive from it.
    pub seed: u64,
    /// `.case` file or directory of `.case` files to replay first;
    /// shrunk failures are dumped here when set.
    pub corpus: Option<PathBuf>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            iters: 200,
            seed: 0x0C5C_F00D,
            corpus: None,
        }
    }
}

/// One reproducible failure.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Shrunk (minimal) descriptor that still reproduces.
    pub desc: CaseDesc,
    /// Original (pre-shrink) descriptor.
    pub original: CaseDesc,
    pub detail: String,
}

/// Session result.
#[derive(Debug, Clone, Default)]
pub struct Outcome {
    pub random_cases: u64,
    pub corpus_cases: usize,
    pub session_seed: u64,
    pub failures: Vec<Failure>,
    /// Files written for shrunk reproducers (corpus dir configured).
    pub dumped: Vec<PathBuf>,
}

impl Outcome {
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.failures.is_empty() {
            out.push_str(&format!(
                "cscv-xtask fuzz: OK — {} random case(s) (seed {}) + {} corpus case(s), 0 failures\n",
                self.random_cases, self.session_seed, self.corpus_cases
            ));
            return out;
        }
        for f in &self.failures {
            out.push_str(&format!(
                "FAIL {}\n     {}\n     shrunk from: {}\n",
                f.desc.serialize(),
                f.detail,
                f.original.serialize()
            ));
        }
        for p in &self.dumped {
            out.push_str(&format!("wrote reproducer {}\n", p.display()));
        }
        out.push_str(&format!(
            "cscv-xtask fuzz: FAIL — {} random case(s) (seed {}) + {} corpus case(s), {} failure(s)\n",
            self.random_cases, self.session_seed, self.corpus_cases,
            self.failures.len()
        ));
        out
    }
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

fn compare(tag: &str, got: &[f64], want: &[f64]) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!(
            "{tag}: length mismatch {} vs {}",
            got.len(),
            want.len()
        ));
    }
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        if !close(g, w) {
            return Err(format!("{tag}: element {i} differs: got {g}, want {w}"));
        }
    }
    Ok(())
}

/// Dense reference `y = A x` straight off the triplets.
fn dense_spmv(coo: &Coo<f64>, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; coo.n_rows()];
    coo.spmv_reference(x, &mut y);
    y
}

fn dense_transpose_spmv(coo: &Coo<f64>, y: &[f64]) -> Vec<f64> {
    let mut x = vec![0.0; coo.n_cols()];
    for &(r, c, v) in coo.entries() {
        x[c as usize] += v * y[r as usize];
    }
    x
}

fn violations_err(tag: &str, v: Vec<impl std::fmt::Display>) -> Result<(), String> {
    if v.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{tag}: {}",
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        ))
    }
}

/// Run one case end to end. `Err` carries the first divergence.
pub fn run_case(desc: &CaseDesc) -> Result<(), String> {
    if desc.kind == GenKind::OversizeReject {
        return run_oversize_reject();
    }
    let coo = generate(desc);
    let layout = SinoLayout {
        n_views: desc.n_views,
        n_bins: desc.n_bins,
    };
    let img = ImageShape {
        nx: desc.nx,
        ny: desc.ny,
    };

    // --- format round-trips with invariant validation ------------------
    let csr = coo.to_csr();
    violations_err("Coo::to_csr", validate_csr(&csr))?;
    let csc = coo.to_csc();
    violations_err("Coo::to_csc", validate_csc(&csc))?;
    let csr_via_csc = csc.to_csr();
    violations_err("Csc::to_csr", validate_csr(&csr_via_csc))?;
    let dense = coo.to_dense();
    compare("csr round-trip dense", &csr.to_coo().to_dense(), &dense)?;
    compare(
        "csc round-trip dense",
        &csr_via_csc.to_coo().to_dense(),
        &dense,
    )?;
    let csr_t = csr.transpose();
    violations_err("Csr::transpose", validate_csr(&csr_t))?;
    let mut dense_t = vec![0.0; dense.len()];
    for r in 0..coo.n_rows() {
        for c in 0..coo.n_cols() {
            dense_t[c * coo.n_rows() + r] = dense[r * coo.n_cols() + c];
        }
    }
    compare("transpose dense", &csr_t.to_coo().to_dense(), &dense_t)?;

    // --- differential executor checks ----------------------------------
    let mut rng = XorShift64::new(desc.seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    let x: Vec<f64> = (0..coo.n_cols())
        .map(|_| rng.range_f64(-1.0, 1.0))
        .collect();
    let y_ref = dense_spmv(&coo, &x);
    let pool = ThreadPool::new(2);
    let mut y = vec![0.0; coo.n_rows()];

    let execs: Vec<Box<dyn SpmvExecutor<f64>>> = vec![
        Box::new(CsrSerialExec::new(coo.to_csr())),
        Box::new(CsrExec::new(coo.to_csr())),
        Box::new(CscSerialExec::new(coo.to_csc())),
        Box::new(CscParallelExec::new(coo.to_csc())),
    ];
    for e in &execs {
        y.iter_mut().for_each(|v| *v = 0.0);
        e.spmv(&x, &mut y, &pool);
        compare(&format!("{} spmv", e.name()), &y, &y_ref)?;
    }

    // Batched path (k = 3) against per-RHS dense references.
    let k = 3usize;
    let xs: Vec<f64> = (0..k * coo.n_cols())
        .map(|_| rng.range_f64(-1.0, 1.0))
        .collect();
    let mut ys = vec![0.0; k * coo.n_rows()];
    for e in &execs {
        ys.iter_mut().for_each(|v| *v = 0.0);
        e.spmv_multi(&xs, k, &mut ys, &pool);
        for i in 0..k {
            let want = dense_spmv(&coo, &xs[i * coo.n_cols()..(i + 1) * coo.n_cols()]);
            compare(
                &format!("{} spmv_multi rhs {i}", e.name()),
                &ys[i * coo.n_rows()..(i + 1) * coo.n_rows()],
                &want,
            )?;
        }
    }

    // --- CSCV: build, validate the catalog, differential paths ---------
    let s_vxg = desc.s_vxg.min(cscv_core::kernels::MAX_VXG);
    let params = CscvParams::new(desc.s_imgb, desc.s_vvec, s_vxg);
    for variant in [Variant::Z, Variant::M] {
        let m: CscvMatrix<f64> = try_build(&csc, layout, img, params, variant)
            .map_err(|e| format!("{variant} try_build: {e}"))?;
        if let Err(v) = m.validate_full() {
            return violations_err(&format!("{variant} validate_full"), v);
        }
        for strategy in [ParallelStrategy::ViewGroups, ParallelStrategy::LocalCopies] {
            let exec = CscvExec::with_strategy(m.clone(), strategy);
            let tag = format!("{variant}/{strategy:?}");
            y.iter_mut().for_each(|v| *v = 0.0);
            exec.spmv(&x, &mut y, &pool);
            compare(&format!("{tag} spmv"), &y, &y_ref)?;

            ys.iter_mut().for_each(|v| *v = 0.0);
            exec.spmv_multi(&xs, k, &mut ys, &pool);
            for i in 0..k {
                let want = dense_spmv(&coo, &xs[i * coo.n_cols()..(i + 1) * coo.n_cols()]);
                compare(
                    &format!("{tag} spmv_multi rhs {i}"),
                    &ys[i * coo.n_rows()..(i + 1) * coo.n_rows()],
                    &want,
                )?;
            }

            let yt: Vec<f64> = (0..coo.n_rows())
                .map(|_| rng.range_f64(-1.0, 1.0))
                .collect();
            let mut xt = vec![0.0; coo.n_cols()];
            exec.spmv_transpose(&yt, &mut xt, &pool);
            compare(
                &format!("{tag} spmv_transpose"),
                &xt,
                &dense_transpose_spmv(&coo, &yt),
            )?;
        }
    }
    Ok(())
}

/// Oversized dimensions must be rejected with a typed error before any
/// index narrowing happens (satellite of invariant CSCV-U32-FIT). The
/// matrices are empty, so nothing big is allocated.
fn run_oversize_reject() -> Result<(), String> {
    let layout = SinoLayout {
        n_views: i32::MAX as usize / 2 + 1,
        n_bins: 2,
    };
    let img = ImageShape { nx: 1, ny: 1 };
    let csc: Csc<f64> = Csc::from_parts(layout.n_rows(), 1, vec![0, 0], vec![], vec![]);
    let params = CscvParams::new(1, 4, 1);
    match try_build(&csc, layout, img, params, Variant::Z) {
        Err(cscv_core::BuildError::RowsExceedIndexRange { .. }) => Ok(()),
        Err(e) => Err(format!("oversize rows: wrong error {e}")),
        Ok(_) => Err("oversize rows: build accepted i32::MAX+ rows".into()),
    }
}

/// Candidate one-step reductions of a descriptor, largest first.
fn shrink_candidates(d: &CaseDesc) -> Vec<CaseDesc> {
    let mut out = Vec::new();
    let mut push = |mutated: CaseDesc| {
        if mutated != *d {
            out.push(mutated);
        }
    };
    push(CaseDesc {
        n_views: (d.n_views / 2).max(1),
        ..*d
    });
    push(CaseDesc {
        n_bins: (d.n_bins / 2).max(1),
        ..*d
    });
    push(CaseDesc {
        nx: (d.nx / 2).max(1),
        ..*d
    });
    push(CaseDesc {
        ny: (d.ny / 2).max(1),
        ..*d
    });
    push(CaseDesc {
        s_imgb: (d.s_imgb / 2).max(1),
        ..*d
    });
    push(CaseDesc {
        s_vxg: (d.s_vxg / 2).max(1),
        ..*d
    });
    if d.s_vvec > 4 {
        push(CaseDesc {
            s_vvec: d.s_vvec / 2,
            ..*d
        });
    }
    out
}

/// Greedy shrink: repeatedly adopt the first single-dimension reduction
/// that still fails, until none does (bounded by the log-sum of dims).
pub fn shrink(desc: &CaseDesc) -> CaseDesc {
    let mut cur = *desc;
    let mut budget = 64usize;
    'outer: while budget > 0 {
        for cand in shrink_candidates(&cur) {
            budget -= 1;
            if run_case(&cand).is_err() {
                cur = cand;
                continue 'outer;
            }
            if budget == 0 {
                break;
            }
        }
        break;
    }
    cur
}

fn corpus_files(path: &PathBuf) -> Result<Vec<PathBuf>, String> {
    if path.is_file() {
        return Ok(vec![path.clone()]);
    }
    if !path.is_dir() {
        return Err(format!("corpus {} does not exist", path.display()));
    }
    let mut files: Vec<PathBuf> = std::fs::read_dir(path)
        .map_err(|e| format!("read {}: {e}", path.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("case"))
        .collect();
    files.sort();
    Ok(files)
}

/// Run the whole session: corpus replay, then random cases, shrinking
/// and dumping failures.
pub fn run(cfg: &FuzzConfig) -> Result<Outcome, String> {
    let mut outcome = Outcome {
        session_seed: cfg.seed,
        ..Outcome::default()
    };

    if let Some(corpus) = &cfg.corpus {
        for file in corpus_files(corpus)? {
            let text = std::fs::read_to_string(&file)
                .map_err(|e| format!("read {}: {e}", file.display()))?;
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let desc = CaseDesc::parse(line).map_err(|e| format!("{}: {e}", file.display()))?;
                outcome.corpus_cases += 1;
                if let Err(detail) = run_case(&desc) {
                    outcome.failures.push(Failure {
                        desc,
                        original: desc,
                        detail: format!("corpus {}: {detail}", file.display()),
                    });
                }
            }
        }
    }

    let mut session = XorShift64::new(cfg.seed);
    for _ in 0..cfg.iters {
        let desc = random_desc(session.next_u64());
        outcome.random_cases += 1;
        if let Err(detail) = run_case(&desc) {
            let min = shrink(&desc);
            let detail = run_case(&min).err().unwrap_or(detail);
            if let Some(dir) = cfg.corpus.as_ref().filter(|p| p.is_dir()) {
                let path = dir.join(format!("shrunk-{}.case", min.seed));
                if std::fs::write(&path, format!("{}\n", min.serialize())).is_ok() {
                    outcome.dumped.push(path);
                }
            }
            outcome.failures.push(Failure {
                desc: min,
                original: desc,
                detail,
            });
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moved_generator_api_stays_reachable_here() {
        // The descriptor layer lives in cscv_harness::gen now; this
        // re-export is what keeps old `cscv_xtask::fuzz::CaseDesc`
        // paths (tests, docs, replay snippets) compiling.
        let d = random_desc(1234);
        assert_eq!(CaseDesc::parse(&d.serialize()).unwrap(), d);
    }

    #[test]
    fn every_kind_passes_one_case() {
        for (i, &kind) in GenKind::ALL.iter().enumerate() {
            let mut d = random_desc(1000 + i as u64);
            d.kind = kind;
            if kind == GenKind::SingleRow {
                d.n_views = 1;
                d.n_bins = 1;
            }
            run_case(&d).unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        }
    }

    #[test]
    fn short_session_is_clean() {
        let out = run(&FuzzConfig {
            iters: 10,
            seed: 42,
            corpus: None,
        })
        .unwrap();
        assert_eq!(out.random_cases, 10);
        assert!(out.failures.is_empty(), "{}", out.render());
        assert!(out.render().contains("OK"));
    }

    #[test]
    fn shrink_candidates_reduce_dimensions() {
        let d =
            CaseDesc::parse("kind=ct-banded views=16 bins=16 nx=8 ny=8 imgb=4 vvec=8 vxg=4 seed=5")
                .unwrap();
        let cands = shrink_candidates(&d);
        assert!(!cands.is_empty());
        for c in &cands {
            let size = c.n_views * c.n_bins * c.nx * c.ny * c.s_imgb * c.s_vvec * c.s_vxg;
            let orig = d.n_views * d.n_bins * d.nx * d.ny * d.s_imgb * d.s_vvec * d.s_vxg;
            assert!(size < orig);
        }
        // A fully minimized descriptor yields no candidates.
        let min =
            CaseDesc::parse("kind=single-row views=1 bins=1 nx=1 ny=1 imgb=1 vvec=4 vxg=1 seed=5")
                .unwrap();
        assert!(shrink_candidates(&min).is_empty());
    }

    #[test]
    fn oversize_dimensions_are_rejected_with_typed_error() {
        run_oversize_reject().unwrap();
    }
}
