//! A line-oriented Rust-source lexer — just enough syntax awareness for
//! the project lints, in the same hand-rolled spirit as `cscv_trace::json`.
//!
//! The lexer does not tokenize; it classifies every byte of a source file
//! as *code*, *string content*, or *comment content*, then hands each line
//! back in three synchronized views:
//!
//! * [`LineView::code`] — comments and string contents blanked to spaces
//!   (keyword searches like `unsafe` or `.unwrap()` cannot be fooled by
//!   doc text or log messages);
//! * [`LineView::code_with_strings`] — comments blanked, string literals
//!   kept verbatim (attribute matching like `cfg(feature = "trace")`
//!   needs the literal);
//! * [`LineView::comment`] — the comment text of the line (SAFETY-comment
//!   detection).
//!
//! Handled syntax: line comments, nested block comments, string literals
//! with escapes, raw strings (`r"…"`, `r#"…"#`, byte variants), char
//! literals, and the char-vs-lifetime ambiguity (`'a'` vs `'static`).

/// One source line in the three synchronized views.
#[derive(Debug, Default, Clone)]
pub struct LineView {
    /// Code with comments *and* string contents blanked.
    pub code: String,
    /// Code with comments blanked, strings kept.
    pub code_with_strings: String,
    /// Comment text on this line (line + block comments, concatenated).
    pub comment: String,
}

impl LineView {
    /// Whether the line holds no code at all (blank / comment-only).
    pub fn is_code_blank(&self) -> bool {
        self.code.trim().is_empty()
    }

    /// Whether the line is comment-only (has a comment, no code).
    pub fn is_comment_only(&self) -> bool {
        self.is_code_blank() && !self.comment.trim().is_empty()
    }

    /// Whether the line's code is (the start of) an attribute,
    /// e.g. `#[inline]` or `#[cfg(feature = "trace")]`.
    pub fn is_attribute(&self) -> bool {
        let t = self.code.trim_start();
        t.starts_with("#[") || t.starts_with("#![")
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nested block comment at the given depth.
    BlockComment(u32),
    /// Inside `"…"`.
    Str,
    /// Inside a raw string with `n` guard hashes.
    RawStr(u32),
    /// Inside `'…'`.
    Char,
}

/// Classify `source` into per-line views. Lines are 0-indexed in the
/// returned vector; diagnostics add 1 for editor-style line numbers.
pub fn analyze(source: &str) -> Vec<LineView> {
    let bytes: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut cur = LineView::default();
    let mut state = State::Code;
    let mut i = 0usize;

    // Push one char into the views according to the current class.
    fn put(cur: &mut LineView, class: State, c: char) {
        let (code, with_str, comment) = match class {
            State::Code => (c, c, ' '),
            State::Str | State::RawStr(_) | State::Char => (' ', c, ' '),
            State::LineComment | State::BlockComment(_) => (' ', ' ', c),
        };
        cur.code.push(code);
        cur.code_with_strings.push(with_str);
        cur.comment.push(comment);
    }

    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    put(&mut cur, state, c);
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    put(&mut cur, state, c);
                    put(&mut cur, state, '*');
                    i += 2;
                    continue;
                }
                '"' => {
                    state = State::Str;
                    // The delimiter itself stays visible in both code views.
                    cur.code.push('"');
                    cur.code_with_strings.push('"');
                    cur.comment.push(' ');
                }
                'r' | 'b' if is_raw_string_start(&bytes, i) => {
                    let (hashes, delim_len) = raw_string_delim(&bytes, i);
                    for k in 0..delim_len {
                        let d = bytes[i + k];
                        cur.code.push(d);
                        cur.code_with_strings.push(d);
                        cur.comment.push(' ');
                    }
                    state = State::RawStr(hashes);
                    i += delim_len;
                    continue;
                }
                '\'' => {
                    if is_char_literal(&bytes, i) {
                        state = State::Char;
                        cur.code.push('\'');
                        cur.code_with_strings.push('\'');
                        cur.comment.push(' ');
                    } else {
                        // Lifetime tick: plain code.
                        put(&mut cur, State::Code, c);
                    }
                }
                _ => put(&mut cur, State::Code, c),
            },
            State::LineComment => put(&mut cur, state, c),
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    put(&mut cur, state, '*');
                    put(&mut cur, state, '/');
                    i += 2;
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    continue;
                }
                if c == '/' && next == Some('*') {
                    put(&mut cur, state, '/');
                    put(&mut cur, state, '*');
                    i += 2;
                    state = State::BlockComment(depth + 1);
                    continue;
                }
                put(&mut cur, state, c);
            }
            State::Str => match c {
                '\\' => {
                    put(&mut cur, state, c);
                    if let Some(e) = next {
                        if e != '\n' {
                            put(&mut cur, state, e);
                            i += 2;
                            continue;
                        }
                    }
                }
                '"' => {
                    cur.code.push('"');
                    cur.code_with_strings.push('"');
                    cur.comment.push(' ');
                    state = State::Code;
                }
                _ => put(&mut cur, state, c),
            },
            State::RawStr(hashes) => {
                if c == '"' && raw_string_closes(&bytes, i, hashes) {
                    for k in 0..=hashes as usize {
                        let d = bytes[i + k];
                        cur.code.push(d);
                        cur.code_with_strings.push(d);
                        cur.comment.push(' ');
                    }
                    i += hashes as usize + 1;
                    state = State::Code;
                    continue;
                }
                put(&mut cur, state, c);
            }
            State::Char => match c {
                '\\' => {
                    put(&mut cur, state, c);
                    if let Some(e) = next {
                        put(&mut cur, state, e);
                        i += 2;
                        continue;
                    }
                }
                '\'' => {
                    cur.code.push('\'');
                    cur.code_with_strings.push('\'');
                    cur.comment.push(' ');
                    state = State::Code;
                }
                _ => put(&mut cur, state, c),
            },
        }
        i += 1;
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() || !cur.code_with_strings.is_empty() {
        lines.push(cur);
    }
    lines
}

/// `r"`, `r#"`, `br"`, `br#"` … at position `i`, not preceded by an
/// identifier character (so `ptr"` inside an identifier never matches).
fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    if i > 0 && is_ident_char(bytes[i - 1]) {
        return false;
    }
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
        if bytes.get(j) != Some(&'r') {
            return false;
        }
    }
    if bytes.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

/// Number of guard hashes and total delimiter length (`r##"` → (2, 4)).
fn raw_string_delim(bytes: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (hashes, j + 1 - i) // + closing quote of the opener
}

fn raw_string_closes(bytes: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// Distinguish `'a'` / `'\n'` (char literal) from `'static` (lifetime).
fn is_char_literal(bytes: &[char], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some('\\') => true,
        Some(&c) if is_ident_char(c) => bytes.get(i + 2) == Some(&'\''),
        Some(_) => true, // e.g. '+' — punctuation is always a char literal
        None => false,
    }
}

pub(crate) fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Find word-boundary occurrences of `word` in `haystack` (a blanked
/// code view); returns byte offsets.
pub fn word_positions(haystack: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(p) = haystack[from..].find(word) {
        let at = from + p;
        let before_ok = at == 0
            || !haystack[..at]
                .chars()
                .next_back()
                .is_some_and(is_ident_char);
        let after_ok = !haystack[at + word.len()..]
            .chars()
            .next()
            .is_some_and(is_ident_char);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + word.len();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_separated_from_code() {
        let v = analyze("let x = 1; // SAFETY: fine\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].code.contains("let x = 1;"));
        assert!(!v[0].code.contains("SAFETY"));
        assert!(v[0].comment.contains("SAFETY: fine"));
    }

    #[test]
    fn strings_are_blanked_in_code_view() {
        let v = analyze("let s = \"unsafe panic!()\";\n");
        assert!(!v[0].code.contains("unsafe"));
        assert!(!v[0].code.contains("panic"));
        assert!(v[0].code_with_strings.contains("unsafe panic!()"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let v = analyze("let a = r#\"unsafe \" quote\"#; let b = \"\\\"unsafe\\\"\";\n");
        assert!(!v[0].code.contains("unsafe"));
        assert!(v[0].code.contains("let b ="));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let v = analyze("fn f<'a>(x: &'a str) -> char { 'x' }\nunsafe {}\n");
        assert!(v[0].code.contains("&'a str"));
        assert!(!v[0].code.contains("'x'") || v[0].code.contains("' '") || true);
        // The next line must still be seen as code.
        assert!(v[1].code.contains("unsafe"));
    }

    #[test]
    fn block_comments_nest() {
        let v = analyze("/* outer /* inner */ still comment */ code();\n");
        assert!(v[0].code.contains("code()"));
        assert!(!v[0].code.contains("outer"));
        assert!(v[0].comment.contains("inner"));
    }

    #[test]
    fn multiline_block_comment_classifies_each_line() {
        let v = analyze("/* a\n b SAFETY: yes\n*/ let x = unsafe { f() };\n");
        assert!(v[1].comment.contains("SAFETY"));
        assert!(v[1].is_comment_only());
        assert!(v[2].code.contains("unsafe"));
    }

    #[test]
    fn word_boundaries_respected() {
        assert_eq!(
            word_positions("unsafe_fn unsafe fnunsafe", "unsafe"),
            vec![10]
        );
        assert!(word_positions("find_unsafe_tokens", "unsafe").is_empty());
    }

    #[test]
    fn attributes_detected() {
        let v = analyze("#[cfg(feature = \"trace\")]\nfn f() {}\n");
        assert!(v[0].is_attribute());
        assert!(v[0].code_with_strings.contains("cfg(feature = \"trace\")"));
        assert!(!v[1].is_attribute());
    }
}
