//! A minimal exhaustive-interleaving explorer — the suite's vendored
//! stand-in for loom, with the same division of labor as the linter:
//! zero dependencies, small enough to audit in one sitting.
//!
//! Concurrency protocols are expressed as *models*: a cloneable state
//! plus one action list per model thread. Each action is atomic (between
//! actions is exactly where a real scheduler could preempt), mutates the
//! state, and either completes (`Step::Done`) or reports it cannot run
//! yet (`Step::Blocked`, e.g. a receive on an empty channel). The
//! explorer then drives a depth-first search over *every* schedule —
//! every order in which runnable threads can take their next action —
//! and checks an invariant at each terminal state.
//!
//! Blocked actions must leave the state untouched (checked when the
//! state is `PartialEq`); a state where no unfinished thread can run is
//! reported as a deadlock with the stuck thread names.
//!
//! This checks the *protocol*, not the compiled code: the pool model in
//! `tests/models.rs` mirrors `cscv_sparse::pool`'s dispatch/ack barrier
//! step for step, so an ordering bug in the protocol design shows up
//! here deterministically even though the real crossbeam-style code path
//! is only exercised stochastically by the thread tests.

/// Outcome of attempting one model action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The action ran; the thread advances to its next action.
    Done,
    /// The action cannot run in this state; the thread stays put and the
    /// state must be unchanged.
    Blocked,
}

/// One atomic model action: mutate the state or report `Blocked`.
pub type Action<S> = Box<dyn Fn(&mut S) -> Step>;

/// One model thread: a name (for deadlock reports) and its actions.
pub struct ModelThread<S> {
    pub name: &'static str,
    pub actions: Vec<Action<S>>,
}

impl<S> ModelThread<S> {
    pub fn new(name: &'static str) -> Self {
        ModelThread {
            name,
            actions: Vec::new(),
        }
    }

    /// Append an action; builder-style.
    pub fn then(mut self, f: impl Fn(&mut S) -> Step + 'static) -> Self {
        self.actions.push(Box::new(f));
        self
    }
}

/// Exploration statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Complete schedules explored (terminal states checked).
    pub schedules: u64,
    /// Total actions executed across all branches.
    pub steps: u64,
}

/// Hard cap on executed actions — a runaway model errors out instead of
/// hanging the test suite.
const STEP_CAP: u64 = 50_000_000;

/// Exhaustively explore every interleaving of `threads` from `initial`,
/// calling `invariant` on each terminal state. Returns the first
/// violation (invariant error, deadlock, blocked-action mutation, or
/// step-cap blowout) or exploration statistics.
pub fn explore<S: Clone + PartialEq + std::fmt::Debug>(
    initial: &S,
    threads: &[ModelThread<S>],
    invariant: &dyn Fn(&S) -> Result<(), String>,
) -> Result<Stats, String> {
    let mut stats = Stats::default();
    let pos = vec![0usize; threads.len()];
    dfs(initial, threads, &pos, invariant, &mut stats)?;
    Ok(stats)
}

fn dfs<S: Clone + PartialEq + std::fmt::Debug>(
    state: &S,
    threads: &[ModelThread<S>],
    pos: &[usize],
    invariant: &dyn Fn(&S) -> Result<(), String>,
    stats: &mut Stats,
) -> Result<(), String> {
    if pos.iter().zip(threads).all(|(&p, t)| p >= t.actions.len()) {
        stats.schedules += 1;
        return invariant(state).map_err(|e| format!("invariant violated: {e}\nstate: {state:?}"));
    }
    let mut progressed = false;
    let mut stuck: Vec<&str> = Vec::new();
    for (ti, thread) in threads.iter().enumerate() {
        if pos[ti] >= thread.actions.len() {
            continue;
        }
        stats.steps += 1;
        if stats.steps > STEP_CAP {
            return Err(format!("model too large: exceeded {STEP_CAP} steps"));
        }
        let mut next = state.clone();
        match (thread.actions[pos[ti]])(&mut next) {
            Step::Blocked => {
                if &next != state {
                    return Err(format!(
                        "blocked action of thread `{}` (step {}) mutated the state:\n  \
                         before: {state:?}\n  after:  {next:?}",
                        thread.name, pos[ti]
                    ));
                }
                stuck.push(thread.name);
            }
            Step::Done => {
                progressed = true;
                let mut next_pos = pos.to_vec();
                next_pos[ti] += 1;
                dfs(&next, threads, &next_pos, invariant, stats)?;
            }
        }
    }
    if !progressed {
        return Err(format!(
            "deadlock: threads {stuck:?} all blocked\nstate: {state:?}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_increments_explore_both_orders() {
        #[derive(Clone, PartialEq, Debug)]
        struct S {
            trace: Vec<u8>,
        }
        let threads = vec![
            ModelThread::new("a").then(|s: &mut S| {
                s.trace.push(1);
                Step::Done
            }),
            ModelThread::new("b").then(|s: &mut S| {
                s.trace.push(2);
                Step::Done
            }),
        ];
        let stats = explore(&S { trace: vec![] }, &threads, &|s| {
            if s.trace.len() == 2 {
                Ok(())
            } else {
                Err("lost update".into())
            }
        })
        .unwrap();
        assert_eq!(stats.schedules, 2); // [1,2] and [2,1]
    }

    #[test]
    fn blocking_enforces_ordering() {
        // Consumer blocks until the producer has stored a value; the only
        // admissible schedules are those where produce precedes consume.
        #[derive(Clone, PartialEq, Debug)]
        struct S {
            chan: Option<u32>,
            got: Option<u32>,
        }
        let threads = vec![
            ModelThread::new("producer").then(|s: &mut S| {
                s.chan = Some(42);
                Step::Done
            }),
            ModelThread::new("consumer").then(|s: &mut S| match s.chan.take() {
                Some(v) => {
                    s.got = Some(v);
                    Step::Done
                }
                None => Step::Blocked,
            }),
        ];
        let stats = explore(
            &S {
                chan: None,
                got: None,
            },
            &threads,
            &|s| {
                if s.got == Some(42) {
                    Ok(())
                } else {
                    Err("consumer finished without the value".into())
                }
            },
        )
        .unwrap();
        assert_eq!(stats.schedules, 1);
    }

    #[test]
    fn deadlock_is_reported_with_thread_names() {
        #[derive(Clone, PartialEq, Debug)]
        struct S;
        let threads = vec![ModelThread::new("waiter").then(|_: &mut S| Step::Blocked)];
        let err = explore(&S, &threads, &|_| Ok(())).unwrap_err();
        assert!(err.contains("deadlock"), "{err}");
        assert!(err.contains("waiter"), "{err}");
    }

    #[test]
    fn racy_model_is_caught() {
        // Classic lost update: both threads read-modify-write a counter
        // with the read and write as separate atomic actions.
        #[derive(Clone, PartialEq, Debug)]
        struct S {
            mem: u32,
            reg: [u32; 2],
        }
        let mk = |i: usize| {
            ModelThread::new(if i == 0 { "t0" } else { "t1" })
                .then(move |s: &mut S| {
                    s.reg[i] = s.mem;
                    Step::Done
                })
                .then(move |s: &mut S| {
                    s.mem = s.reg[i] + 1;
                    Step::Done
                })
        };
        let err = explore(
            &S {
                mem: 0,
                reg: [0, 0],
            },
            &[mk(0), mk(1)],
            &|s| {
                if s.mem == 2 {
                    Ok(())
                } else {
                    Err(format!("lost update: counter = {}", s.mem))
                }
            },
        )
        .unwrap_err();
        assert!(err.contains("lost update"), "{err}");
    }

    #[test]
    fn blocked_mutation_is_a_model_bug() {
        #[derive(Clone, PartialEq, Debug)]
        struct S {
            x: u32,
        }
        let threads = vec![ModelThread::new("bad").then(|s: &mut S| {
            s.x += 1; // mutate *and* claim to be blocked
            Step::Blocked
        })];
        let err = explore(&S { x: 0 }, &threads, &|_| Ok(())).unwrap_err();
        assert!(err.contains("mutated the state"), "{err}");
    }
}
