//! Minimal NDJSON emission for lint diagnostics — same output contract
//! as the run manifests (`cscv-harness`) so downstream tooling can parse
//! both with one reader. Writer-only: the linter never parses JSON.

use crate::lint::{Diagnostic, Report};

/// Escape a string for a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One diagnostic as a single NDJSON record.
pub fn diagnostic_line(d: &Diagnostic) -> String {
    format!(
        "{{\"kind\":\"diagnostic\",\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
        escape(&d.file.display().to_string()),
        d.line,
        escape(d.rule),
        escape(&d.message),
    )
}

/// The trailing summary record.
pub fn summary_line(report: &Report) -> String {
    format!(
        "{{\"kind\":\"summary\",\"files\":{},\"lines\":{},\"violations\":{}}}",
        report.files_scanned,
        report.lines_scanned,
        report.diagnostics.len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn escaping_covers_quotes_and_control() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn diagnostic_record_shape() {
        let d = Diagnostic {
            file: PathBuf::from("crates/x/src/a.rs"),
            line: 7,
            rule: "hot-path-panic",
            message: "no \"panics\"".into(),
        };
        let line = diagnostic_line(&d);
        assert!(line.starts_with("{\"kind\":\"diagnostic\""));
        assert!(line.contains("\"line\":7"));
        assert!(line.contains("no \\\"panics\\\""));
    }
}
