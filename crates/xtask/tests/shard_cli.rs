//! CLI contract for `cscv-xtask shard` / `shard-worker`: real process
//! launch (the binary re-execs itself as socket-connected workers),
//! output formats, and the 0/1/2 exit-code contract.

use std::path::PathBuf;
use std::process::Command;

fn run(args: &[&str], envs: &[(&str, &str)]) -> (i32, String, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_cscv-xtask"));
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn cscv-xtask");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Scratch directory (removed on drop), for manifests and case files.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let p = std::env::temp_dir().join(format!("cscv-shard-cli-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        Scratch(p)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// End to end with *process* workers — the default launch mode: the
/// coordinator spawns `cscv-xtask shard-worker --socket …` children and
/// the whole equivalence matrix must pass.
#[test]
fn process_launch_matrix_passes_and_exits_zero() {
    let (code, stdout, stderr) = run(
        &[
            "shard",
            "--workers",
            "1,2",
            "--solver",
            "sirt",
            "--iters",
            "4",
        ],
        &[],
    );
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("shepp-logan-smoke"));
    assert!(stdout.contains("OK — 2 run(s), 0 failure(s)"), "{stdout}");
    // workers=1 row must report byte-identity.
    let one = stdout
        .lines()
        .find(|l| l.starts_with("sirt") && l.contains(" 1 "))
        .expect("workers=1 row");
    assert!(one.contains("yes"), "workers=1 not bitwise: {one}");
}

#[test]
fn ndjson_format_emits_one_valid_object_per_run() {
    let scratch = Scratch::new("ndjson");
    let manifest_dir = scratch.0.join("manifests");
    let (code, stdout, _) = run(
        &[
            "shard",
            "--workers",
            "1,2",
            "--solver",
            "cgls",
            "--iters",
            "3",
            "--launch",
            "threads",
            "--format",
            "ndjson",
        ],
        &[("CSCV_MANIFEST_DIR", manifest_dir.to_str().unwrap())],
    );
    assert_eq!(code, 0, "{stdout}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2);
    for line in &lines {
        assert!(line.starts_with("{\"type\":\"shard\""), "line: {line}");
        assert!(line.contains("\"solver\":\"cgls\""));
        assert!(line.contains("\"iterations\":3"));
        assert!(line.contains("\"pass\":true"));
    }
    // The run also records type:"shard" rows into the manifest dir.
    let mut recorded = String::new();
    for entry in std::fs::read_dir(&manifest_dir).expect("manifest dir written") {
        recorded.push_str(&std::fs::read_to_string(entry.unwrap().path()).unwrap());
    }
    assert_eq!(
        recorded
            .lines()
            .filter(|l| l.contains("\"type\":\"shard\""))
            .count(),
        2,
        "manifest rows:\n{recorded}"
    );
}

#[test]
fn impossible_tolerance_fails_the_gate_with_exit_one() {
    // workers=2 has a genuine ~1e-16 reduction difference; a 1e-30
    // tolerance must therefore fail, and the failure must be visible.
    let (code, stdout, _) = run(
        &[
            "shard",
            "--workers",
            "2",
            "--solver",
            "sirt",
            "--iters",
            "3",
            "--launch",
            "threads",
            "--tol",
            "1e-30",
        ],
        &[],
    );
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("FAIL"), "{stdout}");
}

#[test]
fn custom_case_file_is_honored() {
    let scratch = Scratch::new("case");
    let case = scratch.0.join("tiny.case");
    std::fs::write(
        &case,
        "name = tiny\nimg = 16\nbins = 24\nviews = 12\ndelta = 15\n",
    )
    .unwrap();
    let (code, stdout, _) = run(
        &[
            "shard",
            "--case",
            case.to_str().unwrap(),
            "--workers",
            "2",
            "--solver",
            "sirt",
            "--iters",
            "2",
            "--launch",
            "threads",
            "--method",
            "bisect",
        ],
        &[],
    );
    assert_eq!(code, 0, "{stdout}");
    assert!(
        stdout.contains("case tiny (16² image, 12 views × 24 bins)"),
        "{stdout}"
    );
    assert!(stdout.contains("bisect partitioning"), "{stdout}");
}

#[test]
fn usage_errors_exit_two() {
    // Unknown flag.
    let (code, _, stderr) = run(&["shard", "--bogus"], &[]);
    assert_eq!(code, 2);
    assert!(stderr.contains("usage:"), "{stderr}");
    // Malformed worker list.
    let (code, _, _) = run(&["shard", "--workers", "2,zero"], &[]);
    assert_eq!(code, 2);
    // Zero workers are meaningless.
    let (code, _, _) = run(&["shard", "--workers", "0"], &[]);
    assert_eq!(code, 2);
    // Unknown solver.
    let (code, _, _) = run(&["shard", "--solver", "jacobi"], &[]);
    assert_eq!(code, 2);
    // Missing case file is an I/O error (also 2 by the contract).
    let (code, _, stderr) = run(&["shard", "--case", "/nonexistent.case"], &[]);
    assert_eq!(code, 2);
    assert!(stderr.contains("cscv-xtask shard:"), "{stderr}");
    // Worker mode without its socket.
    let (code, _, _) = run(&["shard-worker"], &[]);
    assert_eq!(code, 2);
    // Worker mode with a dead socket path: connection refused → 2.
    let (code, _, _) = run(&["shard-worker", "--socket", "/nonexistent.sock"], &[]);
    assert_eq!(code, 2);
}
