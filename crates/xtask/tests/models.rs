//! Exhaustive-interleaving checks of the suite's two hand-rolled
//! concurrency protocols, driven by the vendored model checker
//! (`cscv_xtask::sched`).
//!
//! Each model mirrors the real implementation step for step — the pool's
//! dispatch/ack barrier (`cscv_sparse::pool`) and the trace registry's
//! register-then-shard-locally protocol (`cscv-trace`'s registry) — so a
//! protocol-level ordering bug shows up here deterministically, under
//! *every* schedule, instead of stochastically in the thread tests. Each
//! model is paired with a deliberately broken variant to prove the
//! checker actually has teeth for that bug class.

use cscv_xtask::sched::{explore, ModelThread, Step};

// ---------------------------------------------------------------------------
// Pool dispatch/ack barrier (mirrors cscv_sparse::pool::ThreadPool::dispatch)
// ---------------------------------------------------------------------------

/// The pool protocol state, for two workers. Channels are modeled at the
/// granularity the real code uses them: one job slot per worker (each
/// worker has a private mpsc receiver) and a shared ack counter (all
/// workers clone one ack sender).
#[derive(Clone, PartialEq, Debug)]
struct PoolState {
    /// Per-worker job inbox (`job_txs[w].send(..)` → `Some`).
    job: [bool; 2],
    /// Task executions recorded by each worker.
    executed: [bool; 2],
    /// Acks sent and not yet received by the coordinator.
    acks: usize,
    /// Acks the coordinator has drained.
    collected: usize,
    /// `dispatch` returned — past this point the task closure's borrow
    /// has ended and the stack slot may be dead.
    returned: bool,
    /// Executions observed strictly after `returned` (use-after-free in
    /// the real code, since the closure lives on `dispatch`'s stack).
    executed_after_return: usize,
}

impl PoolState {
    fn start() -> PoolState {
        PoolState {
            job: [false; 2],
            executed: [false; 2],
            acks: 0,
            collected: 0,
            returned: false,
            executed_after_return: 0,
        }
    }
}

fn pool_worker(w: usize) -> ModelThread<PoolState> {
    ModelThread::new(if w == 0 { "worker-0" } else { "worker-1" })
        // rx.iter(): block until a job lands in our private inbox.
        .then(
            move |s: &mut PoolState| {
                if s.job[w] {
                    Step::Done
                } else {
                    Step::Blocked
                }
            },
        )
        // Run the borrowed closure.
        .then(move |s: &mut PoolState| {
            s.executed[w] = true;
            if s.returned {
                s.executed_after_return += 1;
            }
            Step::Done
        })
        // ack.send(res)
        .then(move |s: &mut PoolState| {
            s.acks += 1;
            Step::Done
        })
}

/// The coordinator as written: send both jobs, then drain exactly
/// `n_threads` acks before returning.
fn pool_coordinator(acks_to_wait: usize) -> ModelThread<PoolState> {
    let mut t = ModelThread::new("dispatch")
        .then(|s: &mut PoolState| {
            s.job[0] = true;
            Step::Done
        })
        .then(|s: &mut PoolState| {
            s.job[1] = true;
            Step::Done
        });
    // `for _ in 0..n_threads { ack_rx.recv() }`, one recv per action.
    for _ in 0..acks_to_wait {
        t = t.then(|s: &mut PoolState| {
            if s.acks > 0 {
                s.acks -= 1;
                s.collected += 1;
                Step::Done
            } else {
                Step::Blocked
            }
        });
    }
    t.then(|s: &mut PoolState| {
        s.returned = true;
        Step::Done
    })
}

fn pool_invariant(s: &PoolState) -> Result<(), String> {
    if !(s.executed[0] && s.executed[1]) {
        return Err("a worker never executed its job".into());
    }
    if s.executed_after_return > 0 {
        return Err(format!(
            "{} execution(s) of the borrowed closure after dispatch returned",
            s.executed_after_return
        ));
    }
    if s.collected != 2 {
        return Err(format!(
            "coordinator drained {} acks, wanted 2",
            s.collected
        ));
    }
    Ok(())
}

#[test]
fn pool_barrier_holds_under_every_schedule() {
    let threads = [pool_worker(0), pool_worker(1), pool_coordinator(2)];
    let stats = explore(&PoolState::start(), &threads, &pool_invariant).unwrap();
    // The blocking recv loop prunes most orders, but exploration still
    // branches into dozens of schedules — sanity-check it did.
    assert!(stats.schedules > 50, "{stats:?}");
}

/// Teeth: a coordinator that waits for only ONE ack (an off-by-one in the
/// recv loop) lets `dispatch` return while the other worker still holds
/// the borrowed closure — the checker must find such a schedule.
#[test]
fn pool_barrier_off_by_one_is_caught() {
    let threads = [pool_worker(0), pool_worker(1), pool_coordinator(1)];
    let err = explore(&PoolState::start(), &threads, &|s| {
        if s.executed_after_return > 0 {
            Err("borrowed closure used after dispatch returned".into())
        } else {
            Ok(())
        }
    })
    .unwrap_err();
    assert!(err.contains("after dispatch returned"), "{err}");
}

// ---------------------------------------------------------------------------
// Trace registry: register-once, shard-locally, fold-any-time
// (mirrors cscv-trace's registry)
// ---------------------------------------------------------------------------

/// Registry model: a slot list guarded by one lock, workers that register
/// their shard exactly once and then bump it lock-free, and an aggregator
/// that folds the registered shards both mid-flight and at the end.
#[derive(Clone, PartialEq, Debug)]
struct RegState {
    /// The mutex: thread index currently inside `slots()`, if any.
    lock: Option<usize>,
    /// Registered shard values, in registration order.
    shards: Vec<u64>,
    /// Each worker's slot index once registered.
    slot_of: [Option<usize>; 2],
    /// Workers that finished all increments.
    finished: usize,
    /// Fold observed while workers were still running.
    fold_mid: Option<u64>,
    /// Fold observed after all workers finished.
    fold_final: Option<u64>,
}

impl RegState {
    fn start() -> RegState {
        RegState {
            lock: None,
            shards: Vec::new(),
            slot_of: [None; 2],
            finished: 0,
            fold_mid: None,
            fold_final: None,
        }
    }

    fn fold(&self) -> u64 {
        self.shards.iter().sum()
    }
}

const INCS_PER_WORKER: u64 = 2;

/// A worker in registration order: lock, append shard, unlock, then
/// `INCS_PER_WORKER` lock-free increments on its own shard.
fn reg_worker(w: usize, register_first: bool) -> ModelThread<RegState> {
    let mut t = ModelThread::new(if w == 0 { "shard-0" } else { "shard-1" });
    let register = move |s: &mut RegState| {
        if s.lock.is_some() {
            return Step::Blocked;
        }
        // Lock, push, unlock — one atomic model action: nothing else in
        // the protocol can observe a half-registered slot because the
        // real push happens entirely under the mutex.
        s.slot_of[w] = Some(s.shards.len());
        s.shards.push(0);
        Step::Done
    };
    let increment = move |s: &mut RegState| {
        match s.slot_of[w] {
            // Lock-free shard bump (atomic add in the real code).
            Some(slot) => {
                s.shards[slot] += 1;
                Step::Done
            }
            // Buggy variant only: count bumps before registration vanish.
            None => Step::Done,
        }
    };
    if register_first {
        t = t.then(register);
        for _ in 0..INCS_PER_WORKER {
            t = t.then(increment);
        }
    } else {
        // Deliberately broken ordering for the teeth test.
        for _ in 0..INCS_PER_WORKER {
            t = t.then(increment);
        }
        t = t.then(register);
    }
    t.then(move |s: &mut RegState| {
        s.finished += 1;
        Step::Done
    })
}

fn reg_aggregator() -> ModelThread<RegState> {
    ModelThread::new("aggregator")
        // A fold may run at ANY point — emitters call it mid-flight.
        .then(|s: &mut RegState| {
            if s.lock.is_some() {
                return Step::Blocked;
            }
            s.fold_mid = Some(s.fold());
            Step::Done
        })
        // The end-of-run fold (after pool.run returned ⇒ workers done).
        .then(|s: &mut RegState| {
            if s.finished < 2 {
                return Step::Blocked;
            }
            s.fold_final = Some(s.fold());
            Step::Done
        })
}

#[test]
fn registry_folds_are_monotonic_and_final_is_complete() {
    let threads = [reg_worker(0, true), reg_worker(1, true), reg_aggregator()];
    let stats = explore(&RegState::start(), &threads, &|s| {
        let (mid, fin) = (s.fold_mid.unwrap(), s.fold_final.unwrap());
        if fin != 2 * INCS_PER_WORKER {
            return Err(format!("final fold {fin}, wanted {}", 2 * INCS_PER_WORKER));
        }
        if mid > fin {
            return Err(format!("mid-flight fold {mid} exceeds final {fin}"));
        }
        Ok(())
    })
    .unwrap();
    assert!(stats.schedules > 100, "{stats:?}");
}

/// Teeth: incrementing before registering (the bug the thread-local
/// `register()`-on-first-use design rules out) loses counts in every
/// schedule — the final fold comes up short.
#[test]
fn registry_increment_before_register_is_caught() {
    let threads = [reg_worker(0, false), reg_worker(1, true), reg_aggregator()];
    let err = explore(&RegState::start(), &threads, &|s| {
        if s.fold_final.unwrap() != 2 * INCS_PER_WORKER {
            Err("lost shard increments".into())
        } else {
            Ok(())
        }
    })
    .unwrap_err();
    assert!(err.contains("lost shard increments"), "{err}");
}
