//! End-to-end audit tests over on-disk fixture workspaces, plus the
//! acceptance check that the real workspace audits clean and the CLI's
//! exit code / NDJSON contract for the `audit` subcommand.

use cscv_xtask::audit::{
    audit_root, RULE_BAD_ANNOTATION, RULE_CAST_TRUNCATION, RULE_CFG_UNDECLARED, RULE_LAYERING,
    RULE_UNSAFE_INDEXING,
};
use std::path::{Path, PathBuf};

/// A throwaway workspace tree under the target dir, removed on drop.
/// Each test passes a unique name, so tests can run concurrently.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("auditfix-{name}"));
        // Wipe any residue from an interrupted previous run.
        let _ = std::fs::remove_dir_all(&root);
        Fixture { root }
    }

    /// Write `source` at `<root>/<rel>`, creating parents.
    fn file(&self, rel: &str, source: &str) -> &Self {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, source).unwrap();
        self
    }

    /// A minimal manifest for `crates/demo` using a DAG-registered crate
    /// name so layering stays quiet in tests about other rules.
    fn demo_manifest(&self, features: &[&str]) -> &Self {
        let mut toml = String::from("[package]\nname = \"cscv-sparse\"\n");
        if !features.is_empty() {
            toml.push_str("\n[features]\n");
            for f in features {
                toml.push_str(&format!("{f} = []\n"));
            }
        }
        self.file("crates/demo/Cargo.toml", &toml)
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

const CAST_SOURCE: &str = concat!(
    "pub fn f(xs: &[f64], i: usize) -> u32 {\n",
    "    let idx = i + xs.len();\n",
    "    idx as u32\n",
    "}\n",
);

#[test]
fn truncating_index_cast_in_hot_file_is_flagged() {
    let fx = Fixture::new("cast-hot");
    fx.demo_manifest(&[])
        .file("crates/demo/src/kernels.rs", CAST_SOURCE);
    let report = audit_root(&fx.root).unwrap();
    assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert_eq!(d.rule, RULE_CAST_TRUNCATION);
    assert_eq!(d.file, Path::new("crates/demo/src/kernels.rs"));
    assert_eq!(d.line, 3);
}

#[test]
fn cast_annotation_suppresses_the_diagnostic() {
    let fx = Fixture::new("cast-annotated");
    fx.demo_manifest(&[]).file(
        "crates/demo/src/kernels.rs",
        concat!(
            "pub fn f(xs: &[f64], i: usize) -> u32 {\n",
            "    let idx = i + xs.len();\n",
            "    // AUDIT(cast-ok): idx is bounded by the slice length.\n",
            "    idx as u32\n",
            "}\n",
        ),
    );
    let report = audit_root(&fx.root).unwrap();
    assert!(report.is_clean(), "{:?}", report.diagnostics);
}

#[test]
fn cast_rule_only_applies_to_hot_path_files() {
    let fx = Fixture::new("cast-cold");
    fx.demo_manifest(&[])
        .file("crates/demo/src/io.rs", CAST_SOURCE);
    let report = audit_root(&fx.root).unwrap();
    assert!(report.is_clean(), "{:?}", report.diagnostics);
}

#[test]
fn unchecked_index_inside_unsafe_is_flagged() {
    let fx = Fixture::new("unsafe-index");
    fx.demo_manifest(&[]).file(
        "crates/demo/src/pool.rs",
        concat!(
            "pub fn f(v: &[u32], i: usize) -> u32 {\n",
            "    unsafe { v[i] }\n",
            "}\n",
        ),
    );
    let report = audit_root(&fx.root).unwrap();
    let hits: Vec<_> = report
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.line))
        .collect();
    assert_eq!(hits, [(RULE_UNSAFE_INDEXING, 2)]);
}

#[test]
fn index_annotation_suppresses_the_diagnostic() {
    let fx = Fixture::new("unsafe-index-annotated");
    fx.demo_manifest(&[]).file(
        "crates/demo/src/pool.rs",
        concat!(
            "pub fn f(v: &[u32], i: usize) -> u32 {\n",
            "    // AUDIT(index-ok): caller guarantees i < v.len().\n",
            "    unsafe { v[i] }\n",
            "}\n",
        ),
    );
    let report = audit_root(&fx.root).unwrap();
    assert!(report.is_clean(), "{:?}", report.diagnostics);
}

#[test]
fn undeclared_cfg_feature_is_flagged_against_the_owning_manifest() {
    let fx = Fixture::new("cfg-undeclared");
    let source = concat!(
        "#[cfg(feature = \"fast-math\")]\n",
        "pub fn f() -> u32 {\n",
        "    1\n",
        "}\n",
        "#[cfg(not(feature = \"fast-math\"))]\n",
        "pub fn f() -> u32 {\n",
        "    0\n",
        "}\n",
    );
    fx.demo_manifest(&[]).file("crates/demo/src/io.rs", source);
    let report = audit_root(&fx.root).unwrap();
    let hits: Vec<_> = report
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.line))
        .collect();
    assert_eq!(
        hits,
        [(RULE_CFG_UNDECLARED, 1), (RULE_CFG_UNDECLARED, 5)],
        "{:?}",
        report.diagnostics
    );

    // Declaring the feature in the owning manifest clears the rule.
    let fx2 = Fixture::new("cfg-declared");
    fx2.demo_manifest(&["fast-math"])
        .file("crates/demo/src/io.rs", source);
    let report = audit_root(&fx2.root).unwrap();
    assert!(report.is_clean(), "{:?}", report.diagnostics);
}

#[test]
fn layering_dag_violation_is_flagged_at_the_dependency_line() {
    let fx = Fixture::new("layering-violation");
    fx.file(
        "crates/trace/Cargo.toml",
        concat!(
            "[package]\n",
            "name = \"cscv-trace\"\n",
            "\n",
            "[dependencies]\n",
            "cscv-core = { path = \"../core\" }\n",
        ),
    );
    let report = audit_root(&fx.root).unwrap();
    assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert_eq!(d.rule, RULE_LAYERING);
    assert_eq!(d.file, Path::new("crates/trace/Cargo.toml"));
    assert_eq!(d.line, 5);
    assert!(d.message.contains("cscv-trace"), "{}", d.message);
}

#[test]
fn unregistered_crate_name_is_a_layering_violation() {
    let fx = Fixture::new("layering-unregistered");
    fx.file(
        "crates/rogue/Cargo.toml",
        "[package]\nname = \"cscv-rogue\"\n",
    );
    let report = audit_root(&fx.root).unwrap();
    let rules: Vec<_> = report.diagnostics.iter().map(|d| d.rule).collect();
    assert_eq!(rules, [RULE_LAYERING]);
    assert!(
        report.diagnostics[0].message.contains("not part of"),
        "{}",
        report.diagnostics[0].message
    );
}

#[test]
fn dev_dependencies_are_exempt_from_the_dag() {
    let fx = Fixture::new("layering-devdep");
    fx.file(
        "crates/trace/Cargo.toml",
        concat!(
            "[package]\n",
            "name = \"cscv-trace\"\n",
            "\n",
            "[dev-dependencies]\n",
            "cscv-core = { path = \"../core\" }\n",
        ),
    );
    let report = audit_root(&fx.root).unwrap();
    assert!(report.is_clean(), "{:?}", report.diagnostics);
}

#[test]
fn unknown_annotation_key_and_empty_reason_are_flagged() {
    let fx = Fixture::new("bad-annotation");
    fx.demo_manifest(&[]).file(
        "crates/demo/src/io.rs",
        concat!(
            "// AUDIT(totally-new-key): not a registered key.\n",
            "pub fn f() {}\n",
            "// AUDIT(cast-ok):\n",
            "pub fn g() {}\n",
        ),
    );
    let report = audit_root(&fx.root).unwrap();
    let hits: Vec<_> = report
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.line))
        .collect();
    assert_eq!(
        hits,
        [(RULE_BAD_ANNOTATION, 1), (RULE_BAD_ANNOTATION, 3)],
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn missing_root_is_an_error() {
    let fx = Fixture::new("empty");
    fx.file("README.md", "not a workspace\n");
    assert!(audit_root(&fx.root).is_err());
}

/// The acceptance criterion: the shipped workspace audits clean.
#[test]
fn real_workspace_is_audit_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = audit_root(&root).unwrap();
    let rendered: Vec<String> = report
        .diagnostics
        .iter()
        .map(|d| format!("{}:{} {} {}", d.file.display(), d.line, d.rule, d.message))
        .collect();
    assert!(
        report.is_clean(),
        "workspace has audit violations:\n{}",
        rendered.join("\n")
    );
    assert!(report.files_scanned > 50, "{} files", report.files_scanned);
}

mod cli {
    //! Exit-code and output contract of the `audit` subcommand.
    use super::Fixture;
    use std::process::Command;

    fn run(args: &[&str]) -> (Option<i32>, String, String) {
        let out = Command::new(env!("CARGO_BIN_EXE_cscv-xtask"))
            .args(args)
            .output()
            .expect("spawn cscv-xtask");
        (
            out.status.code(),
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    }

    #[test]
    fn clean_tree_exits_zero() {
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let (code, stdout, _) = run(&["audit", "--root", root]);
        assert_eq!(code, Some(0), "{stdout}");
        assert!(stdout.contains("OK"), "{stdout}");
    }

    #[test]
    fn violations_exit_one_with_file_line_diagnostics() {
        let fx = Fixture::new("cli-violation");
        fx.demo_manifest(&[])
            .file("crates/demo/src/kernels.rs", super::CAST_SOURCE);
        let (code, stdout, _) = run(&["audit", "--root", fx.root.to_str().unwrap()]);
        assert_eq!(code, Some(1), "{stdout}");
        let line = format!(
            "{}:3",
            std::path::Path::new("crates/demo/src/kernels.rs").display()
        );
        assert!(stdout.contains(&line), "{stdout}");
        assert!(stdout.contains("cast-truncation"), "{stdout}");
    }

    #[test]
    fn ndjson_output_is_line_per_record() {
        let fx = Fixture::new("cli-ndjson");
        fx.demo_manifest(&[])
            .file("crates/demo/src/kernels.rs", super::CAST_SOURCE);
        let (code, stdout, _) = run(&["audit", "--ndjson", "--root", fx.root.to_str().unwrap()]);
        assert_eq!(code, Some(1), "{stdout}");
        let lines: Vec<&str> = stdout.lines().collect();
        assert_eq!(lines.len(), 2, "{stdout}");
        assert!(lines[0].starts_with("{\"kind\":\"diagnostic\""), "{stdout}");
        assert!(lines[1].starts_with("{\"kind\":\"summary\""), "{stdout}");
        assert!(lines[1].contains("\"violations\":1"), "{stdout}");
    }

    #[test]
    fn bad_root_exits_two() {
        let fx = Fixture::new("cli-badroot");
        fx.file("README.md", "no crates here\n");
        let (code, _, stderr) = run(&["audit", "--root", fx.root.to_str().unwrap()]);
        assert_eq!(code, Some(2), "{stderr}");
        assert!(stderr.contains("no Cargo.toml"), "{stderr}");
    }
}
