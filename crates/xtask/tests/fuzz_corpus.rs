//! Tier-1 replay of the committed fuzz regression corpus, plus a short
//! fixed-seed random run so the generator/oracle stack itself stays
//! exercised in CI. Heavy exploration lives in the nightly
//! `fuzz --iters 5000` job; this test pins the known-tricky structural
//! families in `crates/xtask/fuzz_corpus/`.

use cscv_xtask::fuzz::{run, CaseDesc, FuzzConfig};
use std::path::Path;

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fuzz_corpus")
}

#[test]
fn committed_corpus_replays_clean() {
    let out = run(&FuzzConfig {
        iters: 0,
        seed: 1,
        corpus: Some(corpus_dir()),
    })
    .unwrap();
    assert_eq!(out.random_cases, 0);
    assert!(
        out.corpus_cases >= 7,
        "expected the committed corpus families, got {}",
        out.corpus_cases
    );
    assert!(out.failures.is_empty(), "{}", out.render());
}

#[test]
fn corpus_descriptors_round_trip_through_the_serializer() {
    // Guards the corpus files against format drift: every descriptor must
    // parse and re-serialize to itself, so `shrunk-*.case` dumps written
    // by a future fuzz run stay replayable.
    let mut checked = 0;
    for entry in std::fs::read_dir(corpus_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("case") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let desc = CaseDesc::parse(line).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            assert_eq!(desc.serialize(), line, "{}", path.display());
            checked += 1;
        }
    }
    assert!(checked >= 7, "only {checked} descriptors checked");
}

#[test]
fn short_fixed_seed_random_run_is_clean() {
    let out = run(&FuzzConfig {
        iters: 25,
        seed: 0xC5C7,
        corpus: None,
    })
    .unwrap();
    assert_eq!(out.random_cases, 25);
    assert_eq!(out.session_seed, 0xC5C7);
    assert!(out.failures.is_empty(), "{}", out.render());
}
