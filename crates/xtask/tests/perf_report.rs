//! End-to-end tests of the `perf-report` CLI: exit codes and output
//! formats, driving the real binary on crafted manifest directories.

use cscv_trace::json::Json;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Scratch result directory (removed on drop).
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let p = std::env::temp_dir().join(format!("cscv-perf-cli-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(p.join("manifests")).unwrap();
        Scratch(p)
    }

    fn manifest(&self, file: &str, lines: &[String]) -> &Self {
        std::fs::write(self.0.join("manifests").join(file), lines.join("\n") + "\n").unwrap();
        self
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn spmv_line(name: &str, secs: f64, samples: &[f64]) -> String {
    Json::obj(vec![
        ("type", Json::from("spmv")),
        ("schema", Json::from(2u64)),
        ("driver", Json::from("cli")),
        ("name", Json::from(name)),
        ("threads", Json::from(1u64)),
        ("k", Json::from(1u64)),
        ("secs_min", Json::from(secs)),
        ("gflops", Json::from(1.0 / secs / 1e9)),
        ("mem_bytes", Json::from(1000u64)),
        ("eff_bw_gbs", Json::from(1e-6 / secs)),
        (
            "samples",
            Json::Arr(samples.iter().map(|&s| Json::Num(s)).collect()),
        ),
    ])
    .to_string()
}

fn run(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_cscv-xtask"))
        .args(args)
        .output()
        .expect("spawn cscv-xtask");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn path(p: &Path) -> &str {
    p.to_str().unwrap()
}

#[test]
fn report_classifies_and_exits_zero() {
    let s = Scratch::new("report");
    s.manifest(
        "a.ndjson",
        &[
            spmv_line("alpha", 0.010, &[0.010, 0.011]),
            spmv_line("beta", 0.002, &[0.002, 0.003]),
        ],
    );
    let (code, stdout, stderr) = run(&["perf-report", path(&s.0), "--peak-gbs", "4.0"]);
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(stdout.contains("cli/alpha/t1/k1"), "{stdout}");
    // Every kernel row carries a bound classification.
    for key in ["cli/alpha/t1/k1", "cli/beta/t1/k1"] {
        let row = stdout.lines().find(|l| l.contains(key)).unwrap();
        assert!(
            row.contains("latency-bound") || row.contains("bandwidth-bound"),
            "{row}"
        );
    }
    assert!(stdout.contains("--peak-gbs flag"), "{stdout}");
}

#[test]
fn ndjson_format_parses_back() {
    let s = Scratch::new("ndjson");
    s.manifest("a.ndjson", &[spmv_line("alpha", 0.010, &[0.010])]);
    let (code, stdout, _) = run(&["perf-report", path(&s.0), "--format", "ndjson"]);
    assert_eq!(code, 0);
    let mut kinds = Vec::new();
    for line in stdout.lines() {
        kinds.push(
            Json::parse(line)
                .unwrap()
                .get("type")
                .and_then(Json::as_str)
                .unwrap()
                .to_string(),
        );
    }
    assert_eq!(kinds, ["report", "roofline"]);
}

#[test]
fn diff_exit_codes_clean_and_regressed() {
    let a = Scratch::new("diff-a");
    let clean = Scratch::new("diff-clean");
    let regressed = Scratch::new("diff-reg");
    a.manifest("m.ndjson", &[spmv_line("kern", 0.010, &[0.010, 0.012])]);
    // +3% best-of-reps: inside the 5% default threshold.
    clean.manifest("m.ndjson", &[spmv_line("kern", 0.0103, &[0.0103, 0.015])]);
    // +50%: a real regression.
    regressed.manifest("m.ndjson", &[spmv_line("kern", 0.015, &[0.015, 0.016])]);

    let (code, stdout, _) = run(&["perf-report", "--diff", path(&a.0), path(&clean.0)]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("perf-diff: OK"), "{stdout}");

    let (code, stdout, _) = run(&["perf-report", "--diff", path(&a.0), path(&regressed.0)]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("REGRESSION"), "{stdout}");

    // A looser threshold lets the same pair pass.
    let (code, _, _) = run(&[
        "perf-report",
        "--diff",
        path(&a.0),
        path(&regressed.0),
        "--threshold",
        "0.6",
    ]);
    assert_eq!(code, 0);
}

#[test]
fn missing_directory_is_a_usage_error() {
    let s = Scratch::new("missing");
    let bogus = s.0.join("does-not-exist");
    let (code, _, stderr) = run(&["perf-report", path(&bogus)]);
    assert_eq!(code, 2, "{stderr}");
    let (code, _, _) = run(&["perf-report"]);
    assert_eq!(code, 2);
    let (code, _, _) = run(&["perf-report", "--diff", path(&s.0)]);
    assert_eq!(code, 2);
}

#[test]
fn export_dir_writes_chrome_and_collapsed() {
    let s = Scratch::new("export");
    s.manifest("m.ndjson", &[spmv_line("kern", 0.010, &[0.010])]);
    let tdir = s.0.join("trace");
    std::fs::create_dir_all(&tdir).unwrap();
    std::fs::write(
        tdir.join("run.ndjson"),
        concat!(
            "{\"type\":\"meta\",\"enabled\":true,\"threads\":1}\n",
            "{\"type\":\"span\",\"name\":\"solver.sirt\",\"thread\":\"main\",\"depth\":0,\"t_ns\":0,\"dur_ns\":5000}\n",
            "{\"type\":\"event\",\"name\":\"sirt.iter\",\"thread\":\"main\",\"depth\":1,\"t_ns\":2500,\"iter\":1,\"iter_ms\":0.002}\n",
        ),
    )
    .unwrap();
    let out = s.0.join("exported");
    let (code, _, stderr) = run(&[
        "perf-report",
        path(&s.0),
        "--peak-gbs",
        "4.0",
        "--export-dir",
        path(&out),
    ]);
    assert_eq!(code, 0, "{stderr}");
    let chrome = std::fs::read_to_string(out.join("run.chrome.json")).unwrap();
    let doc = Json::parse(&chrome).unwrap();
    assert!(doc.get("traceEvents").and_then(Json::as_arr).is_some());
    let collapsed = std::fs::read_to_string(out.join("run.collapsed")).unwrap();
    assert!(collapsed.contains("main;solver.sirt 5000"), "{collapsed}");
}
