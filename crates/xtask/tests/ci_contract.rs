//! Shell-entrypoint contract tests: `ci.sh` flag handling and
//! `run_experiments.sh` driver-failure propagation. Both scripts are
//! exercised without invoking the toolchain — the flag parse happens
//! before any cargo work, and the experiment script runs against a stub
//! `cargo` in a sandbox copy so the repo's bench_results/ stay
//! untouched.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf()
}

#[test]
fn ci_sh_rejects_unknown_flags_with_exit_two() {
    let out = Command::new("bash")
        .arg(repo_root().join("ci.sh"))
        .arg("--bogus")
        .output()
        .expect("run ci.sh");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag: --bogus"), "stderr: {stderr}");
    // The rejection must precede any build output.
    assert!(out.stdout.is_empty(), "flag parse ran toolchain work");
}

#[test]
fn ci_sh_advertises_every_stage_flag() {
    // The header comment is the CLI reference; every recognized flag
    // must appear there (and --shard-smoke specifically is the gate this
    // PR adds).
    let text = std::fs::read_to_string(repo_root().join("ci.sh")).unwrap();
    for flag in [
        "--perf-smoke",
        "--update-perf-baseline",
        "--miri",
        "--fuzz",
        "--shard-smoke",
        "--sanitizers",
    ] {
        let mentions = text.matches(flag).count();
        assert!(
            mentions >= 2,
            "{flag}: expected both a header mention and a case arm, found {mentions}"
        );
    }
}

#[test]
fn ci_sh_runs_the_analyze_ratchet_unconditionally() {
    // The inter-procedural analysis gate is part of the core stage
    // list, not an opt-in flag: a new finding (exit 1) or a stale
    // baseline entry (exit 2) must fail plain `ci.sh` under `set -e`.
    let text = std::fs::read_to_string(repo_root().join("ci.sh")).unwrap();
    let analyze_pos = text
        .find("cargo run -q -p cscv-xtask -- analyze")
        .expect("ci.sh must invoke the analyze gate");
    let first_conditional = text.find("if [ \"$").unwrap_or(text.len());
    assert!(
        analyze_pos < first_conditional,
        "analyze must run in the unconditional core gate, not behind a flag"
    );
}

#[test]
fn sanitizer_stage_is_deterministic_and_uses_vetted_suppressions() {
    let text = std::fs::read_to_string(repo_root().join("ci.sh")).unwrap();
    let stage = text
        .split("if [ \"$SANITIZERS\" = 1 ]")
        .nth(1)
        .expect("ci.sh must have a --sanitizers stage");
    let stage = stage.split("\nfi\n").next().unwrap();
    for needle in [
        "CSCV_NUMA=0",
        "sanitizer_suppressions.txt",
        "halt_on_error=1",
        "-Zsanitizer=thread",
        "-Zsanitizer=address",
        "-p cscv-sparse -p cscv-core --lib",
    ] {
        assert!(stage.contains(needle), "sanitizer stage missing {needle}");
    }
}

#[test]
fn sanitizer_suppressions_all_carry_justifications() {
    let path = repo_root().join("crates/xtask/sanitizer_suppressions.txt");
    let text = std::fs::read_to_string(&path).unwrap();
    let mut prev_was_comment = false;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            prev_was_comment = false;
        } else if line.starts_with('#') {
            prev_was_comment = true;
        } else {
            assert!(
                line.contains(':'),
                "not a <kind>:<pattern> suppression: {line}"
            );
            assert!(
                prev_was_comment,
                "suppression without a justification comment above it: {line}"
            );
        }
    }
}

#[test]
fn scripts_parse_under_bash_noexec() {
    for script in ["ci.sh", "run_experiments.sh"] {
        let out = Command::new("bash")
            .arg("-n")
            .arg(repo_root().join(script))
            .output()
            .expect("bash -n");
        assert!(
            out.status.success(),
            "{script}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

/// Sandbox for run_experiments.sh: a temp dir holding a copy of the
/// script plus a stub `cargo` with a chosen exit code on PATH.
struct Sandbox {
    dir: PathBuf,
}

impl Sandbox {
    fn new(tag: &str, stub_exit: i32) -> Sandbox {
        let dir =
            std::env::temp_dir().join(format!("cscv-ci-contract-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("bin")).unwrap();
        std::fs::copy(
            repo_root().join("run_experiments.sh"),
            dir.join("run_experiments.sh"),
        )
        .unwrap();
        std::fs::write(
            dir.join("bin/cargo"),
            format!("#!/bin/sh\nexit {stub_exit}\n"),
        )
        .unwrap();
        #[cfg(unix)]
        {
            use std::os::unix::fs::PermissionsExt;
            std::fs::set_permissions(
                dir.join("bin/cargo"),
                std::fs::Permissions::from_mode(0o755),
            )
            .unwrap();
        }
        Sandbox { dir }
    }

    fn run_smoke(&self) -> std::process::Output {
        let path = format!(
            "{}:{}",
            self.dir.join("bin").display(),
            std::env::var("PATH").unwrap_or_default()
        );
        Command::new("bash")
            .arg(self.dir.join("run_experiments.sh"))
            .arg("--smoke")
            .env("PATH", path)
            .output()
            .expect("run run_experiments.sh")
    }
}

impl Drop for Sandbox {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn run_experiments_propagates_driver_failure() {
    let sandbox = Sandbox::new("fail", 7);
    let out = sandbox.run_smoke();
    assert_eq!(
        out.status.code(),
        Some(7),
        "driver exit code must propagate, got stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("driver 'table1' failed with exit 7"),
        "failure must name the driver on the console: {stdout}"
    );
    assert!(
        !stdout.contains("SMOKE_DONE"),
        "script must not continue past a failed driver"
    );
}

#[test]
fn run_experiments_smoke_completes_when_drivers_succeed() {
    let sandbox = Sandbox::new("ok", 0);
    let out = sandbox.run_smoke();
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("SMOKE_DONE"));
}
