//! Fixture tests for the inter-procedural analyze engine: every rule
//! family has a firing case, a suppressed case, and (where the rule is
//! inter-procedural) a cross-crate case, plus a call-graph snapshot and
//! the ratchet exit-code contract driven through the real binary.
//!
//! Pure-analysis fixtures go through `Workspace::from_sources` — no
//! disk, no cargo, so fixture crates can never collide with the real
//! workspace's `crates/*` members glob. Only the binary contract tests
//! materialize a fixture workspace, and they do it under a temp dir.

use cscv_xtask::analyze::symbols::Workspace;
use cscv_xtask::analyze::{
    self, analyze_workspace, Baseline, Ratchet, RULE_ATOMIC_ORDERING, RULE_ATOMIC_ROLE, RULE_FENCE,
    RULE_IPC_CAST, RULE_PANIC_REACH, RULE_PROVENANCE, RULE_STALE,
};
use std::path::{Path, PathBuf};

fn active<'a>(report: &'a analyze::AnalyzeReport, rule: &str) -> Vec<&'a analyze::Finding> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule && f.suppressed_at.is_none())
        .collect()
}

fn suppressed<'a>(report: &'a analyze::AnalyzeReport, rule: &str) -> Vec<&'a analyze::Finding> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule && f.suppressed_at.is_some())
        .collect()
}

// ---------------------------------------------------------------------------
// Call graph snapshot.
// ---------------------------------------------------------------------------

#[test]
fn callgraph_snapshot_cross_crate() {
    let ws = Workspace::from_sources(&[
        (
            "demo-a",
            "crates/a/src/exec.rs",
            "use demo_b::mesh::refine;\n\
             pub fn drive() {\n    refine();\n    local_step();\n}\n\
             fn local_step() {\n    demo_b::mesh::coarsen();\n}\n",
        ),
        (
            "demo-b",
            "crates/b/src/mesh.rs",
            "pub fn refine() {\n    coarsen();\n}\n\
             pub fn coarsen() {}\n",
        ),
    ]);
    let cg = cscv_xtask::analyze::callgraph::build(&ws);
    assert_eq!(
        cg.render(&ws),
        "demo_a::exec::drive -> demo_a::exec::local_step\n\
         demo_a::exec::drive -> demo_b::mesh::refine\n\
         demo_a::exec::local_step -> demo_b::mesh::coarsen\n\
         demo_b::mesh::refine -> demo_b::mesh::coarsen"
    );
}

// ---------------------------------------------------------------------------
// panic-reachability.
// ---------------------------------------------------------------------------

#[test]
fn panic_reachability_fires_cross_crate_with_chain() {
    let ws = Workspace::from_sources(&[
        (
            "demo-a",
            "crates/a/src/exec.rs",
            "pub fn hot_step() {\n    demo_b::depths::probe(3);\n}\n",
        ),
        (
            "demo-b",
            "crates/b/src/depths.rs",
            "pub fn probe(d: usize) {\n    let v = vec![1, 2];\n    \
             let _ = v.first().expect(\"non-empty\");\n    let _ = d;\n}\n",
        ),
    ]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_PANIC_REACH);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert_eq!(hits[0].file, PathBuf::from("crates/a/src/exec.rs"));
    assert_eq!(
        hits[0].chain,
        vec![
            "demo_a::exec::hot_step".to_string(),
            "demo_b::depths::probe".to_string()
        ]
    );
    assert!(
        hits[0].message.contains("crates/b/src/depths.rs:3"),
        "{}",
        hits[0].message
    );
}

#[test]
fn panic_reachability_header_annotation_vets_the_subtree() {
    let ws = Workspace::from_sources(&[
        (
            "demo-a",
            "crates/a/src/exec.rs",
            "// AUDIT(panic-ok): probe panics only on a poisoned fixture.\n\
             pub fn hot_step() {\n    demo_b::depths::probe(3);\n}\n",
        ),
        (
            "demo-b",
            "crates/b/src/depths.rs",
            "pub fn probe(d: usize) {\n    let v = vec![1, 2];\n    \
             let _ = v.first().expect(\"non-empty\");\n    let _ = d;\n}\n",
        ),
    ]);
    let report = analyze_workspace(&ws);
    assert!(
        active(&report, RULE_PANIC_REACH).is_empty(),
        "{:?}",
        report.findings
    );
    // The annotation blocks a subtree that genuinely reaches a panic,
    // so it is used, not stale.
    assert!(
        active(&report, RULE_STALE).is_empty(),
        "{:?}",
        report.findings
    );
}

#[test]
fn panic_reachability_line_annotation_suppresses_one_source() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/kernels.rs",
        "pub fn kernel_step(v: &[u32]) -> u32 {\n    \
         // AUDIT(panic-ok): v is non-empty by kernel contract.\n    \
         *v.first().expect(\"non-empty\")\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    assert!(
        active(&report, RULE_PANIC_REACH).is_empty(),
        "{:?}",
        report.findings
    );
    assert!(
        active(&report, RULE_STALE).is_empty(),
        "{:?}",
        report.findings
    );
}

#[test]
fn panic_reachability_ignores_test_code() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/lanes.rs",
        "pub fn safe_lane() -> u32 {\n    7\n}\n\
         #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
         let v: Vec<u32> = vec![];\n        v.first().unwrap();\n    }\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    assert!(
        active(&report, RULE_PANIC_REACH).is_empty(),
        "{:?}",
        report.findings
    );
}

// ---------------------------------------------------------------------------
// unsafe-provenance.
// ---------------------------------------------------------------------------

#[test]
fn provenance_flags_returned_raw_claim() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/buffers.rs",
        "pub fn leak_claim(buf: &Shared) -> *mut f64 {\n    \
         let p = buf.get_raw(0);\n    p\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_PROVENANCE);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert!(
        hits[0].salient.starts_with("return|"),
        "{}",
        hits[0].salient
    );
}

#[test]
fn provenance_flags_claim_stored_into_field() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/buffers.rs",
        "pub fn stash(state: &mut State, buf: &Shared) {\n    \
         let p = buf.slice_mut(0, 8);\n    state.window = p;\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_PROVENANCE);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert!(hits[0].salient.starts_with("store|"), "{}", hits[0].salient);
}

#[test]
fn provenance_flags_claim_captured_by_spawn() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/buffers.rs",
        "pub fn ship(buf: &Shared) {\n    \
         let p = buf.get_raw(0);\n    \
         std::thread::spawn(move || {\n        let _ = p;\n    });\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_PROVENANCE);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert!(hits[0].salient.starts_with("sent|"), "{}", hits[0].salient);
}

#[test]
fn provenance_flags_claim_used_across_barrier() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/buffers.rs",
        "pub fn straddle(buf: &Shared) {\n    \
         let p = buf.get_raw(0);\n    \
         buf.claims_barrier();\n    \
         unsafe { *p = 1.0; }\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_PROVENANCE);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert!(
        hits[0].salient.starts_with("barrier|"),
        "{}",
        hits[0].salient
    );
}

#[test]
fn provenance_tracks_taint_across_call_edges() {
    // `hand_out` returns a claim; the caller stores what it got. The
    // escape is only visible inter-procedurally.
    let ws = Workspace::from_sources(&[
        (
            "demo-a",
            "crates/a/src/give.rs",
            "// AUDIT(escape-ok): callers immediately re-scope the claim.\n\
             pub fn hand_out(buf: &Shared) -> *mut f64 {\n    buf.get_raw(0)\n}\n",
        ),
        (
            "demo-a",
            "crates/a/src/take.rs",
            "pub fn keep(state: &mut State, buf: &Shared) {\n    \
             let p = demo_a::give::hand_out(buf);\n    state.window = p;\n}\n",
        ),
    ]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_PROVENANCE);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert_eq!(hits[0].file, PathBuf::from("crates/a/src/take.rs"));
    assert!(hits[0].salient.starts_with("store|"), "{}", hits[0].salient);
    // The annotated return escape in give.rs is vetted, not active.
    assert_eq!(suppressed(&report, RULE_PROVENANCE).len(), 1);
}

#[test]
fn provenance_escape_ok_suppresses() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/buffers.rs",
        "pub fn stash(state: &mut State, buf: &Shared) {\n    \
         let p = buf.slice_mut(0, 8);\n    \
         // AUDIT(escape-ok): state outlives the pool; claims retired in drop.\n    \
         state.window = p;\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    assert!(
        active(&report, RULE_PROVENANCE).is_empty(),
        "{:?}",
        report.findings
    );
    assert_eq!(suppressed(&report, RULE_PROVENANCE).len(), 1);
    assert!(
        active(&report, RULE_STALE).is_empty(),
        "{:?}",
        report.findings
    );
}

// ---------------------------------------------------------------------------
// atomic-role / atomic-ordering / fence-unpaired.
// ---------------------------------------------------------------------------

#[test]
fn atomic_without_role_is_flagged() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/state.rs",
        "use std::sync::atomic::AtomicUsize;\n\
         static PENDING: AtomicUsize = AtomicUsize::new(0);\n",
    )]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_ATOMIC_ROLE);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert_eq!(hits[0].symbol, "PENDING");
}

#[test]
fn handoff_atomic_with_relaxed_load_is_flagged() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/state.rs",
        "use std::sync::atomic::{AtomicUsize, Ordering};\n\
         // ATOMIC(handoff): publishes the ready slot index.\n\
         static READY: AtomicUsize = AtomicUsize::new(0);\n\
         pub fn peek() -> usize {\n    READY.load(Ordering::Relaxed)\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_ATOMIC_ORDERING);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert_eq!(hits[0].symbol, "READY");
    assert!(hits[0].message.contains("Relaxed"), "{}", hits[0].message);
    assert!(active(&report, RULE_ATOMIC_ROLE).is_empty());
}

#[test]
fn statistic_atomic_allows_relaxed() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/state.rs",
        "use std::sync::atomic::{AtomicU64, Ordering};\n\
         // ATOMIC(statistic): best-effort hit counter.\n\
         static HITS: AtomicU64 = AtomicU64::new(0);\n\
         pub fn bump() {\n    HITS.fetch_add(1, Ordering::Relaxed);\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    assert!(
        active(&report, RULE_ATOMIC_ORDERING).is_empty(),
        "{:?}",
        report.findings
    );
    assert!(active(&report, RULE_ATOMIC_ROLE).is_empty());
    assert!(active(&report, RULE_STALE).is_empty());
}

#[test]
fn atomic_ordering_cross_file_resolution() {
    // The op site and the declaration live in different files of the
    // same crate.
    let ws = Workspace::from_sources(&[
        (
            "demo-a",
            "crates/a/src/decl.rs",
            "use std::sync::atomic::AtomicBool;\n\
             // ATOMIC(flag): set once when the worker finishes.\n\
             pub static DONE: AtomicBool = AtomicBool::new(false);\n",
        ),
        (
            "demo-a",
            "crates/a/src/user.rs",
            "use std::sync::atomic::Ordering;\n\
             pub fn finish() {\n    crate::decl::DONE.store(true, Ordering::Relaxed);\n}\n",
        ),
    ]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_ATOMIC_ORDERING);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert_eq!(hits[0].symbol, "DONE");
    assert_eq!(hits[0].file, PathBuf::from("crates/a/src/user.rs"));
}

#[test]
fn order_ok_suppresses_ordering_finding() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/state.rs",
        "use std::sync::atomic::{AtomicBool, Ordering};\n\
         // ATOMIC(flag): checked before shutdown.\n\
         static LIVE: AtomicBool = AtomicBool::new(true);\n\
         pub fn probe() -> bool {\n    \
         // AUDIT(order-ok): monotonic flag, the caller re-checks under the lock.\n    \
         LIVE.load(Ordering::Relaxed)\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    assert!(
        active(&report, RULE_ATOMIC_ORDERING).is_empty(),
        "{:?}",
        report.findings
    );
    assert_eq!(suppressed(&report, RULE_ATOMIC_ORDERING).len(), 1);
    assert!(
        active(&report, RULE_STALE).is_empty(),
        "{:?}",
        report.findings
    );
}

#[test]
fn alias_annotation_confers_role_on_fields() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/shards.rs",
        "use std::sync::atomic::AtomicU64;\n\
         // ATOMIC(statistic): per-thread counter shard.\n\
         pub type Shard = [AtomicU64; 4];\n\
         pub struct Slot {\n    pub counters: std::sync::Arc<Shard>,\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    assert!(
        active(&report, RULE_ATOMIC_ROLE).is_empty(),
        "{:?}",
        report.findings
    );
    assert!(
        active(&report, RULE_STALE).is_empty(),
        "{:?}",
        report.findings
    );
}

#[test]
fn unpaired_release_fence_is_flagged() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/sync.rs",
        "use std::sync::atomic::{fence, Ordering};\n\
         pub fn publish() {\n    fence(Ordering::Release);\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_FENCE);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
}

#[test]
fn paired_fences_are_clean() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/sync.rs",
        "use std::sync::atomic::{fence, Ordering};\n\
         pub fn publish() {\n    fence(Ordering::Release);\n}\n\
         pub fn observe() {\n    fence(Ordering::Acquire);\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    assert!(
        active(&report, RULE_FENCE).is_empty(),
        "{:?}",
        report.findings
    );
}

// ---------------------------------------------------------------------------
// ipc-cast-truncation.
// ---------------------------------------------------------------------------

#[test]
fn cast_fires_when_index_crosses_call_edge() {
    // The helper is outside the hot-path files; only the call edge from
    // kernels.rs makes its cast index-tainted.
    let ws = Workspace::from_sources(&[
        (
            "demo-a",
            "crates/a/src/kernels.rs",
            "pub fn hot(rows: &[f64]) {\n    for i in 0..rows.len() {\n        \
             demo_a::pack::compress(i);\n    }\n}\n",
        ),
        (
            "demo-a",
            "crates/a/src/pack.rs",
            "pub fn compress(i: usize) -> u32 {\n    i as u32\n}\n",
        ),
    ]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_IPC_CAST);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert_eq!(hits[0].file, PathBuf::from("crates/a/src/pack.rs"));
    assert_eq!(
        hits[0].chain,
        vec![
            "demo_a::kernels::hot".to_string(),
            "demo_a::pack::compress".to_string()
        ]
    );
}

#[test]
fn cast_ok_suppresses_interprocedural_cast() {
    let ws = Workspace::from_sources(&[
        (
            "demo-a",
            "crates/a/src/kernels.rs",
            "pub fn hot(rows: &[f64]) {\n    for i in 0..rows.len() {\n        \
             demo_a::pack::compress(i);\n    }\n}\n",
        ),
        (
            "demo-a",
            "crates/a/src/pack.rs",
            "pub fn compress(i: usize) -> u32 {\n    \
             // AUDIT(cast-ok): i < 2^20 rows by geometry validation.\n    \
             i as u32\n}\n",
        ),
    ]);
    let report = analyze_workspace(&ws);
    assert!(
        active(&report, RULE_IPC_CAST).is_empty(),
        "{:?}",
        report.findings
    );
    assert_eq!(suppressed(&report, RULE_IPC_CAST).len(), 1);
    assert!(
        active(&report, RULE_STALE).is_empty(),
        "{:?}",
        report.findings
    );
}

#[test]
fn unreachable_helper_cast_is_not_flagged() {
    // No call path from a hot-path file: the helper's cast is not an
    // inter-procedural index hazard.
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/pack.rs",
        "pub fn compress(i: usize) -> u32 {\n    i as u32\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    assert!(
        active(&report, RULE_IPC_CAST).is_empty(),
        "{:?}",
        report.findings
    );
}

// ---------------------------------------------------------------------------
// audit-stale-annotation.
// ---------------------------------------------------------------------------

#[test]
fn stale_audit_annotation_is_flagged() {
    // cast-ok with no narrowing cast left under it.
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/kernels.rs",
        "pub fn hot(i: usize) -> usize {\n    \
         // AUDIT(cast-ok): vetted long ago; the cast is gone.\n    \
         i + 1\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_STALE);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert_eq!(hits[0].symbol, "cast-ok");
}

#[test]
fn stale_panic_ok_on_panicless_fn_is_flagged() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/exec.rs",
        "// AUDIT(panic-ok): stale — nothing below panics anymore.\n\
         pub fn hot_step() -> u32 {\n    41 + 1\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_STALE);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert_eq!(hits[0].symbol, "panic-ok");
}

#[test]
fn stale_atomic_annotation_is_flagged() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/state.rs",
        "// ATOMIC(statistic): the counter moved elsewhere.\n\
         pub fn plain() {}\n",
    )]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_STALE);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert!(hits[0].symbol.contains("ATOMIC"), "{}", hits[0].symbol);
}

#[test]
fn doc_comment_grammar_prose_is_not_stale() {
    // Module docs explaining the annotation grammar must not register
    // as live (and therefore stale) suppressions.
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/lib.rs",
        "//! Vet sites with `// AUDIT(cast-ok): why` annotations.\n\
         /// See `// ATOMIC(statistic)` for counter classification.\n\
         pub fn documented() {}\n",
    )]);
    let report = analyze_workspace(&ws);
    assert!(
        active(&report, RULE_STALE).is_empty(),
        "{:?}",
        report.findings
    );
}

// ---------------------------------------------------------------------------
// Ratchet contract through the real binary.
// ---------------------------------------------------------------------------

struct FixtureWorkspace {
    root: PathBuf,
}

impl FixtureWorkspace {
    /// Materialize a minimal analyzable workspace in a temp dir: a
    /// virtual root manifest plus one crate with the given lib.rs.
    fn new(tag: &str, lib_rs: &str) -> FixtureWorkspace {
        let root =
            std::env::temp_dir().join(format!("cscv-analyze-fixture-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("crates/demo/src")).unwrap();
        std::fs::write(
            root.join("Cargo.toml"),
            "[workspace]\nmembers = [\"crates/*\"]\n",
        )
        .unwrap();
        std::fs::write(
            root.join("crates/demo/Cargo.toml"),
            "[package]\nname = \"demo\"\nversion = \"0.1.0\"\n",
        )
        .unwrap();
        std::fs::write(root.join("crates/demo/src/lib.rs"), lib_rs).unwrap();
        FixtureWorkspace { root }
    }

    fn analyze(&self, extra: &[&str]) -> std::process::Output {
        let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_cscv-xtask"));
        cmd.arg("analyze")
            .arg("--root")
            .arg(&self.root)
            .arg("--baseline")
            .arg(self.root.join("baseline.json"));
        for a in extra {
            cmd.arg(a);
        }
        cmd.output().unwrap()
    }
}

impl Drop for FixtureWorkspace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

const DIRTY_LIB: &str = "use std::sync::atomic::AtomicUsize;\n\
                         static PENDING: AtomicUsize = AtomicUsize::new(0);\n";

#[test]
fn ratchet_new_finding_exits_1() {
    let fx = FixtureWorkspace::new("new", DIRTY_LIB);
    let out = fx.analyze(&[]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("[new] atomic-role"), "{text}");
}

#[test]
fn ratchet_baselined_finding_exits_0_and_fixed_exits_2() {
    let fx = FixtureWorkspace::new("cycle", DIRTY_LIB);
    // Adopt the finding.
    let out = fx.analyze(&["--write-baseline"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Same workspace, committed baseline: clean.
    let out = fx.analyze(&[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("1 baselined"));
    // Fix the finding but keep the baseline entry: stale, exit 2.
    std::fs::write(
        fx.root.join("crates/demo/src/lib.rs"),
        "use std::sync::atomic::AtomicUsize;\n\
         // ATOMIC(statistic): request tally, aggregation-only reads.\n\
         static PENDING: AtomicUsize = AtomicUsize::new(0);\n",
    )
    .unwrap();
    let out = fx.analyze(&[]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("stale-baseline"));
}

#[test]
fn ratchet_clean_workspace_exits_0() {
    let fx = FixtureWorkspace::new("clean", "pub fn tidy() {}\n");
    let out = fx.analyze(&[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn ndjson_output_carries_fingerprints_and_summary() {
    let fx = FixtureWorkspace::new("ndjson", DIRTY_LIB);
    let out = fx.analyze(&["--format", "ndjson"]);
    let text = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"kind\":\"finding\"") && l.contains("\"fingerprint\":\"")),
        "{text}"
    );
    assert!(
        lines.last().unwrap().contains("\"kind\":\"summary\""),
        "{text}"
    );
    assert!(lines.last().unwrap().contains("\"exit\":1"), "{text}");
}

// ---------------------------------------------------------------------------
// Workspace acceptance: the real repo is clean under its committed
// baseline.
// ---------------------------------------------------------------------------

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf()
}

#[test]
fn workspace_is_clean_under_committed_baseline() {
    let root = repo_root();
    let report = analyze::analyze_root(&root).unwrap();
    let baseline = Baseline::load(&root.join("crates/xtask/analyze_baseline.json")).unwrap();
    let ratchet = Ratchet::compare(&report, &baseline);
    assert_eq!(
        ratchet.exit_code(),
        0,
        "new: {:?}\nstale: {:?}",
        ratchet.new.iter().map(|f| &f.message).collect::<Vec<_>>(),
        ratchet.stale
    );
    // The engine actually saw the workspace.
    assert!(report.fn_count > 500, "{}", report.fn_count);
    assert!(report.edge_count > 1000, "{}", report.edge_count);
}
