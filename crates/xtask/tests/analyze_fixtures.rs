//! Fixture tests for the inter-procedural analyze engine: every rule
//! family has a firing case, a suppressed case, and (where the rule is
//! inter-procedural) a cross-crate case, plus a call-graph snapshot and
//! the ratchet exit-code contract driven through the real binary.
//!
//! Pure-analysis fixtures go through `Workspace::from_sources` — no
//! disk, no cargo, so fixture crates can never collide with the real
//! workspace's `crates/*` members glob. Only the binary contract tests
//! materialize a fixture workspace, and they do it under a temp dir.

use cscv_xtask::analyze::symbols::Workspace;
use cscv_xtask::analyze::{
    self, analyze_workspace, Baseline, Ratchet, RULE_ATOMIC_ORDERING, RULE_ATOMIC_ROLE, RULE_FENCE,
    RULE_INDEX_DOMAIN, RULE_IPC_CAST, RULE_PANIC_REACH, RULE_PROTOCOL, RULE_PROVENANCE, RULE_STALE,
};
use std::path::{Path, PathBuf};

fn active<'a>(report: &'a analyze::AnalyzeReport, rule: &str) -> Vec<&'a analyze::Finding> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule && f.suppressed_at.is_none())
        .collect()
}

fn suppressed<'a>(report: &'a analyze::AnalyzeReport, rule: &str) -> Vec<&'a analyze::Finding> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule && f.suppressed_at.is_some())
        .collect()
}

// ---------------------------------------------------------------------------
// Call graph snapshot.
// ---------------------------------------------------------------------------

#[test]
fn callgraph_snapshot_cross_crate() {
    let ws = Workspace::from_sources(&[
        (
            "demo-a",
            "crates/a/src/exec.rs",
            "use demo_b::mesh::refine;\n\
             pub fn drive() {\n    refine();\n    local_step();\n}\n\
             fn local_step() {\n    demo_b::mesh::coarsen();\n}\n",
        ),
        (
            "demo-b",
            "crates/b/src/mesh.rs",
            "pub fn refine() {\n    coarsen();\n}\n\
             pub fn coarsen() {}\n",
        ),
    ]);
    let cg = cscv_xtask::analyze::callgraph::build(&ws);
    assert_eq!(
        cg.render(&ws),
        "demo_a::exec::drive -> demo_a::exec::local_step\n\
         demo_a::exec::drive -> demo_b::mesh::refine\n\
         demo_a::exec::local_step -> demo_b::mesh::coarsen\n\
         demo_b::mesh::refine -> demo_b::mesh::coarsen"
    );
}

// ---------------------------------------------------------------------------
// panic-reachability.
// ---------------------------------------------------------------------------

#[test]
fn panic_reachability_fires_cross_crate_with_chain() {
    let ws = Workspace::from_sources(&[
        (
            "demo-a",
            "crates/a/src/exec.rs",
            "pub fn hot_step() {\n    demo_b::depths::probe(3);\n}\n",
        ),
        (
            "demo-b",
            "crates/b/src/depths.rs",
            "pub fn probe(d: usize) {\n    let v = vec![1, 2];\n    \
             let _ = v.first().expect(\"non-empty\");\n    let _ = d;\n}\n",
        ),
    ]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_PANIC_REACH);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert_eq!(hits[0].file, PathBuf::from("crates/a/src/exec.rs"));
    assert_eq!(
        hits[0].chain,
        vec![
            "demo_a::exec::hot_step".to_string(),
            "demo_b::depths::probe".to_string()
        ]
    );
    assert!(
        hits[0].message.contains("crates/b/src/depths.rs:3"),
        "{}",
        hits[0].message
    );
}

#[test]
fn panic_reachability_header_annotation_vets_the_subtree() {
    let ws = Workspace::from_sources(&[
        (
            "demo-a",
            "crates/a/src/exec.rs",
            "// AUDIT(panic-ok): probe panics only on a poisoned fixture.\n\
             pub fn hot_step() {\n    demo_b::depths::probe(3);\n}\n",
        ),
        (
            "demo-b",
            "crates/b/src/depths.rs",
            "pub fn probe(d: usize) {\n    let v = vec![1, 2];\n    \
             let _ = v.first().expect(\"non-empty\");\n    let _ = d;\n}\n",
        ),
    ]);
    let report = analyze_workspace(&ws);
    assert!(
        active(&report, RULE_PANIC_REACH).is_empty(),
        "{:?}",
        report.findings
    );
    // The annotation blocks a subtree that genuinely reaches a panic,
    // so it is used, not stale.
    assert!(
        active(&report, RULE_STALE).is_empty(),
        "{:?}",
        report.findings
    );
}

#[test]
fn panic_reachability_line_annotation_suppresses_one_source() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/kernels.rs",
        "pub fn kernel_step(v: &[u32]) -> u32 {\n    \
         // AUDIT(panic-ok): v is non-empty by kernel contract.\n    \
         *v.first().expect(\"non-empty\")\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    assert!(
        active(&report, RULE_PANIC_REACH).is_empty(),
        "{:?}",
        report.findings
    );
    assert!(
        active(&report, RULE_STALE).is_empty(),
        "{:?}",
        report.findings
    );
}

#[test]
fn panic_reachability_ignores_test_code() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/lanes.rs",
        "pub fn safe_lane() -> u32 {\n    7\n}\n\
         #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
         let v: Vec<u32> = vec![];\n        v.first().unwrap();\n    }\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    assert!(
        active(&report, RULE_PANIC_REACH).is_empty(),
        "{:?}",
        report.findings
    );
}

// ---------------------------------------------------------------------------
// unsafe-provenance.
// ---------------------------------------------------------------------------

#[test]
fn provenance_flags_returned_raw_claim() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/buffers.rs",
        "pub fn leak_claim(buf: &Shared) -> *mut f64 {\n    \
         let p = buf.get_raw(0);\n    p\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_PROVENANCE);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert!(
        hits[0].salient.starts_with("return|"),
        "{}",
        hits[0].salient
    );
}

#[test]
fn provenance_flags_claim_stored_into_field() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/buffers.rs",
        "pub fn stash(state: &mut State, buf: &Shared) {\n    \
         let p = buf.slice_mut(0, 8);\n    state.window = p;\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_PROVENANCE);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert!(hits[0].salient.starts_with("store|"), "{}", hits[0].salient);
}

#[test]
fn provenance_flags_claim_captured_by_spawn() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/buffers.rs",
        "pub fn ship(buf: &Shared) {\n    \
         let p = buf.get_raw(0);\n    \
         std::thread::spawn(move || {\n        let _ = p;\n    });\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_PROVENANCE);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert!(hits[0].salient.starts_with("sent|"), "{}", hits[0].salient);
}

#[test]
fn provenance_flags_claim_used_across_barrier() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/buffers.rs",
        "pub fn straddle(buf: &Shared) {\n    \
         let p = buf.get_raw(0);\n    \
         buf.claims_barrier();\n    \
         unsafe { *p = 1.0; }\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_PROVENANCE);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert!(
        hits[0].salient.starts_with("barrier|"),
        "{}",
        hits[0].salient
    );
}

#[test]
fn provenance_tracks_taint_across_call_edges() {
    // `hand_out` returns a claim; the caller stores what it got. The
    // escape is only visible inter-procedurally.
    let ws = Workspace::from_sources(&[
        (
            "demo-a",
            "crates/a/src/give.rs",
            "// AUDIT(escape-ok): callers immediately re-scope the claim.\n\
             pub fn hand_out(buf: &Shared) -> *mut f64 {\n    buf.get_raw(0)\n}\n",
        ),
        (
            "demo-a",
            "crates/a/src/take.rs",
            "pub fn keep(state: &mut State, buf: &Shared) {\n    \
             let p = demo_a::give::hand_out(buf);\n    state.window = p;\n}\n",
        ),
    ]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_PROVENANCE);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert_eq!(hits[0].file, PathBuf::from("crates/a/src/take.rs"));
    assert!(hits[0].salient.starts_with("store|"), "{}", hits[0].salient);
    // The annotated return escape in give.rs is vetted, not active.
    assert_eq!(suppressed(&report, RULE_PROVENANCE).len(), 1);
}

#[test]
fn provenance_escape_ok_suppresses() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/buffers.rs",
        "pub fn stash(state: &mut State, buf: &Shared) {\n    \
         let p = buf.slice_mut(0, 8);\n    \
         // AUDIT(escape-ok): state outlives the pool; claims retired in drop.\n    \
         state.window = p;\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    assert!(
        active(&report, RULE_PROVENANCE).is_empty(),
        "{:?}",
        report.findings
    );
    assert_eq!(suppressed(&report, RULE_PROVENANCE).len(), 1);
    assert!(
        active(&report, RULE_STALE).is_empty(),
        "{:?}",
        report.findings
    );
}

// ---------------------------------------------------------------------------
// atomic-role / atomic-ordering / fence-unpaired.
// ---------------------------------------------------------------------------

#[test]
fn atomic_without_role_is_flagged() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/state.rs",
        "use std::sync::atomic::AtomicUsize;\n\
         static PENDING: AtomicUsize = AtomicUsize::new(0);\n",
    )]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_ATOMIC_ROLE);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert_eq!(hits[0].symbol, "PENDING");
}

#[test]
fn handoff_atomic_with_relaxed_load_is_flagged() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/state.rs",
        "use std::sync::atomic::{AtomicUsize, Ordering};\n\
         // ATOMIC(handoff): publishes the ready slot index.\n\
         static READY: AtomicUsize = AtomicUsize::new(0);\n\
         pub fn peek() -> usize {\n    READY.load(Ordering::Relaxed)\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_ATOMIC_ORDERING);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert_eq!(hits[0].symbol, "READY");
    assert!(hits[0].message.contains("Relaxed"), "{}", hits[0].message);
    assert!(active(&report, RULE_ATOMIC_ROLE).is_empty());
}

#[test]
fn statistic_atomic_allows_relaxed() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/state.rs",
        "use std::sync::atomic::{AtomicU64, Ordering};\n\
         // ATOMIC(statistic): best-effort hit counter.\n\
         static HITS: AtomicU64 = AtomicU64::new(0);\n\
         pub fn bump() {\n    HITS.fetch_add(1, Ordering::Relaxed);\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    assert!(
        active(&report, RULE_ATOMIC_ORDERING).is_empty(),
        "{:?}",
        report.findings
    );
    assert!(active(&report, RULE_ATOMIC_ROLE).is_empty());
    assert!(active(&report, RULE_STALE).is_empty());
}

#[test]
fn atomic_ordering_cross_file_resolution() {
    // The op site and the declaration live in different files of the
    // same crate.
    let ws = Workspace::from_sources(&[
        (
            "demo-a",
            "crates/a/src/decl.rs",
            "use std::sync::atomic::AtomicBool;\n\
             // ATOMIC(flag): set once when the worker finishes.\n\
             pub static DONE: AtomicBool = AtomicBool::new(false);\n",
        ),
        (
            "demo-a",
            "crates/a/src/user.rs",
            "use std::sync::atomic::Ordering;\n\
             pub fn finish() {\n    crate::decl::DONE.store(true, Ordering::Relaxed);\n}\n",
        ),
    ]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_ATOMIC_ORDERING);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert_eq!(hits[0].symbol, "DONE");
    assert_eq!(hits[0].file, PathBuf::from("crates/a/src/user.rs"));
}

#[test]
fn order_ok_suppresses_ordering_finding() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/state.rs",
        "use std::sync::atomic::{AtomicBool, Ordering};\n\
         // ATOMIC(flag): checked before shutdown.\n\
         static LIVE: AtomicBool = AtomicBool::new(true);\n\
         pub fn probe() -> bool {\n    \
         // AUDIT(order-ok): monotonic flag, the caller re-checks under the lock.\n    \
         LIVE.load(Ordering::Relaxed)\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    assert!(
        active(&report, RULE_ATOMIC_ORDERING).is_empty(),
        "{:?}",
        report.findings
    );
    assert_eq!(suppressed(&report, RULE_ATOMIC_ORDERING).len(), 1);
    assert!(
        active(&report, RULE_STALE).is_empty(),
        "{:?}",
        report.findings
    );
}

#[test]
fn alias_annotation_confers_role_on_fields() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/shards.rs",
        "use std::sync::atomic::AtomicU64;\n\
         // ATOMIC(statistic): per-thread counter shard.\n\
         pub type Shard = [AtomicU64; 4];\n\
         pub struct Slot {\n    pub counters: std::sync::Arc<Shard>,\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    assert!(
        active(&report, RULE_ATOMIC_ROLE).is_empty(),
        "{:?}",
        report.findings
    );
    assert!(
        active(&report, RULE_STALE).is_empty(),
        "{:?}",
        report.findings
    );
}

#[test]
fn unpaired_release_fence_is_flagged() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/sync.rs",
        "use std::sync::atomic::{fence, Ordering};\n\
         pub fn publish() {\n    fence(Ordering::Release);\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_FENCE);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
}

#[test]
fn paired_fences_are_clean() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/sync.rs",
        "use std::sync::atomic::{fence, Ordering};\n\
         pub fn publish() {\n    fence(Ordering::Release);\n}\n\
         pub fn observe() {\n    fence(Ordering::Acquire);\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    assert!(
        active(&report, RULE_FENCE).is_empty(),
        "{:?}",
        report.findings
    );
}

// ---------------------------------------------------------------------------
// ipc-cast-truncation.
// ---------------------------------------------------------------------------

#[test]
fn cast_fires_when_index_crosses_call_edge() {
    // The helper is outside the hot-path files; only the call edge from
    // kernels.rs makes its cast index-tainted.
    let ws = Workspace::from_sources(&[
        (
            "demo-a",
            "crates/a/src/kernels.rs",
            "pub fn hot(rows: &[f64]) {\n    for i in 0..rows.len() {\n        \
             demo_a::pack::compress(i);\n    }\n}\n",
        ),
        (
            "demo-a",
            "crates/a/src/pack.rs",
            "pub fn compress(i: usize) -> u32 {\n    i as u32\n}\n",
        ),
    ]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_IPC_CAST);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert_eq!(hits[0].file, PathBuf::from("crates/a/src/pack.rs"));
    assert_eq!(
        hits[0].chain,
        vec![
            "demo_a::kernels::hot".to_string(),
            "demo_a::pack::compress".to_string()
        ]
    );
}

#[test]
fn cast_ok_suppresses_interprocedural_cast() {
    let ws = Workspace::from_sources(&[
        (
            "demo-a",
            "crates/a/src/kernels.rs",
            "pub fn hot(rows: &[f64]) {\n    for i in 0..rows.len() {\n        \
             demo_a::pack::compress(i);\n    }\n}\n",
        ),
        (
            "demo-a",
            "crates/a/src/pack.rs",
            "pub fn compress(i: usize) -> u32 {\n    \
             // AUDIT(cast-ok): i < 2^20 rows by geometry validation.\n    \
             i as u32\n}\n",
        ),
    ]);
    let report = analyze_workspace(&ws);
    assert!(
        active(&report, RULE_IPC_CAST).is_empty(),
        "{:?}",
        report.findings
    );
    assert_eq!(suppressed(&report, RULE_IPC_CAST).len(), 1);
    assert!(
        active(&report, RULE_STALE).is_empty(),
        "{:?}",
        report.findings
    );
}

#[test]
fn unreachable_helper_cast_is_not_flagged() {
    // No call path from a hot-path file: the helper's cast is not an
    // inter-procedural index hazard.
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/pack.rs",
        "pub fn compress(i: usize) -> u32 {\n    i as u32\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    assert!(
        active(&report, RULE_IPC_CAST).is_empty(),
        "{:?}",
        report.findings
    );
}

// ---------------------------------------------------------------------------
// audit-stale-annotation.
// ---------------------------------------------------------------------------

#[test]
fn stale_audit_annotation_is_flagged() {
    // cast-ok with no narrowing cast left under it.
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/kernels.rs",
        "pub fn hot(i: usize) -> usize {\n    \
         // AUDIT(cast-ok): vetted long ago; the cast is gone.\n    \
         i + 1\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_STALE);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert_eq!(hits[0].symbol, "cast-ok");
}

#[test]
fn stale_panic_ok_on_panicless_fn_is_flagged() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/exec.rs",
        "// AUDIT(panic-ok): stale — nothing below panics anymore.\n\
         pub fn hot_step() -> u32 {\n    41 + 1\n}\n",
    )]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_STALE);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert_eq!(hits[0].symbol, "panic-ok");
}

#[test]
fn stale_atomic_annotation_is_flagged() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/state.rs",
        "// ATOMIC(statistic): the counter moved elsewhere.\n\
         pub fn plain() {}\n",
    )]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_STALE);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert!(hits[0].symbol.contains("ATOMIC"), "{}", hits[0].symbol);
}

#[test]
fn doc_comment_grammar_prose_is_not_stale() {
    // Module docs explaining the annotation grammar must not register
    // as live (and therefore stale) suppressions.
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/lib.rs",
        "//! Vet sites with `// AUDIT(cast-ok): why` annotations.\n\
         /// See `// ATOMIC(statistic)` for counter classification.\n\
         pub fn documented() {}\n",
    )]);
    let report = analyze_workspace(&ws);
    assert!(
        active(&report, RULE_STALE).is_empty(),
        "{:?}",
        report.findings
    );
}

// ---------------------------------------------------------------------------
// index-domain.
// ---------------------------------------------------------------------------

#[test]
fn index_domain_mismatch_fires_and_domain_ok_suppresses() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/exec.rs",
        "pub fn hot() {\n\
         \x20   // DOMAIN(NnzIdx)\n\
         \x20   let p = 3;\n\
         \x20   // DOMAIN(RowId)\n\
         \x20   let rows = vec![0.0; 8];\n\
         \x20   let bad = rows[p];\n\
         \x20   // AUDIT(domain-ok): nnz offsets double as row ids in this toy.\n\
         \x20   let vetted = rows[p];\n\
         \x20   let _ = (bad, vetted);\n\
         }\n",
    )]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_INDEX_DOMAIN);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert_eq!(hits[0].line, 6);
    assert!(
        hits[0].message.contains("`RowId`-indexed") && hits[0].message.contains("`NnzIdx` index"),
        "{}",
        hits[0].message
    );
    assert_eq!(suppressed(&report, RULE_INDEX_DOMAIN).len(), 1);
    // The annotations all attached — nothing stale.
    assert!(
        active(&report, RULE_STALE).is_empty(),
        "{:?}",
        report.findings
    );
}

#[test]
fn index_domain_translator_array_legalizes_permuted_access() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/exec.rs",
        "pub fn gather() {\n\
         \x20   // DOMAIN(PermutedPos)\n\
         \x20   let slot = 2;\n\
         \x20   // DOMAIN(PermutedPos -> RowId)\n\
         \x20   let perm = vec![0usize; 8];\n\
         \x20   // DOMAIN(RowId)\n\
         \x20   let rows = vec![0.0; 8];\n\
         \x20   let r = perm[slot];\n\
         \x20   let good = rows[r];\n\
         \x20   let bad = rows[slot];\n\
         \x20   let _ = (good, bad);\n\
         }\n",
    )]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_INDEX_DOMAIN);
    // Only the untranslated subscript fires; `perm[slot]` and
    // `rows[perm[slot]]` are legal.
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert_eq!(hits[0].line, 10);
    assert!(
        hits[0].salient.contains("|RowId|PermutedPos|"),
        "{}",
        hits[0].salient
    );
}

#[test]
fn index_domain_offset_arithmetic_translates() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/shard.rs",
        "pub fn rebase() {\n\
         \x20   // DOMAIN(RowId)\n\
         \x20   let row = 9;\n\
         \x20   // DOMAIN(RowId)\n\
         \x20   let row0 = 4;\n\
         \x20   // DOMAIN(ShardLocalRow)\n\
         \x20   let local = vec![0.0; 8];\n\
         \x20   let good = local[row - row0];\n\
         \x20   let bad = local[row];\n\
         \x20   let _ = (good, bad);\n\
         }\n",
    )]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_INDEX_DOMAIN);
    // `row - row0` translates RowId to ShardLocalRow per the catalog;
    // the raw global subscript is the only finding.
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert_eq!(hits[0].line, 9);
    assert!(
        hits[0].salient.contains("|ShardLocalRow|RowId|"),
        "{}",
        hits[0].salient
    );
}

#[test]
fn index_domain_crosses_call_edges_with_witness_chain() {
    let ws = Workspace::from_sources(&[
        (
            "demo-a",
            "crates/a/src/ids.rs",
            "// DOMAIN(RowId)\n\
             pub fn first_row() -> usize {\n    0\n}\n",
        ),
        (
            "demo-b",
            "crates/b/src/exec.rs",
            "pub fn drive() {\n\
             \x20   let r = demo_a::ids::first_row();\n\
             \x20   stash(r);\n\
             }\n\
             fn stash(r: usize) {\n\
             \x20   // DOMAIN(NnzIdx)\n\
             \x20   let buf = vec![0u32; 4];\n\
             \x20   let x = buf[r];\n\
             \x20   let _ = x;\n\
             }\n",
        ),
    ]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_INDEX_DOMAIN);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    let chain = hits[0].chain.join(" -> ");
    assert!(
        chain.contains("first_row") && chain.contains("drive") && chain.contains("stash"),
        "witness chain should walk producer -> caller -> subscript: {chain}"
    );
}

#[test]
fn index_domain_catalog_api_tags_returns() {
    // No source annotation on the producer: the committed catalog's
    // `layout::row_index -> RowId` suffix entry supplies the domain.
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/layout.rs",
        "pub fn row_index(v: usize, b: usize) -> usize {\n    v * 4 + b\n}\n\
         pub fn use_it() {\n\
         \x20   let r = row_index(1, 2);\n\
         \x20   // DOMAIN(NnzIdx)\n\
         \x20   let stream = vec![0u32; 16];\n\
         \x20   let x = stream[r];\n\
         \x20   let _ = x;\n\
         }\n",
    )]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_INDEX_DOMAIN);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert!(
        hits[0].salient.contains("|NnzIdx|RowId|"),
        "{}",
        hits[0].salient
    );
}

#[test]
fn stale_domain_annotation_is_flagged() {
    let ws = Workspace::from_sources(&[(
        "demo-a",
        "crates/a/src/lib.rs",
        "// DOMAIN(RowId)\n\
         \n\
         pub fn unrelated() {}\n\
         pub fn misnamed() {\n\
         \x20   // DOMAIN(RowIdx)\n\
         \x20   let v = vec![0; 4];\n\
         \x20   let _ = v;\n\
         }\n",
    )]);
    let report = analyze_workspace(&ws);
    let stale: Vec<_> = active(&report, RULE_STALE)
        .into_iter()
        .filter(|f| f.salient.starts_with("domain|"))
        .map(|f| f.salient.clone())
        .collect();
    // One unattached (blank line breaks the comment block), one naming
    // a domain outside the catalog.
    assert_eq!(stale.len(), 2, "{:?}", report.findings);
    assert!(
        stale.iter().any(|s| s.starts_with("domain|unattached|")),
        "{stale:?}"
    );
    assert!(
        stale
            .iter()
            .any(|s| s.starts_with("domain|unknown|RowIdx|")),
        "{stale:?}"
    );
}

// ---------------------------------------------------------------------------
// protocol-conformance.
// ---------------------------------------------------------------------------

/// A minimal spec: coordinator requests Ping from Idle, worker replies
/// Pong back to Idle; Trace may interleave while waiting; Err escapes.
const TOY_SPEC: &str = "pub const SESSION_SPEC: &[&str] = &[\n\
    \x20   \"endpoint coordinator crates/a/src/coord.rs\",\n\
    \x20   \"endpoint worker crates/a/src/serve.rs\",\n\
    \x20   \"msg Ping c2w Idle Waiting\",\n\
    \x20   \"msg Pong w2c Waiting Idle\",\n\
    \x20   \"side Trace w2c Waiting\",\n\
    \x20   \"escape Err w2c\",\n\
    \x20   \"absorber recv_folding\",\n\
    ];\n";

#[test]
fn protocol_unmatched_send_fires_and_protocol_ok_suppresses() {
    let ws = Workspace::from_sources(&[
        ("demo-a", "crates/a/src/protocol.rs", TOY_SPEC),
        (
            "demo-a",
            "crates/a/src/coord.rs",
            "pub fn call(conn: &mut Conn) {\n\
             \x20   Msg::Ping { n: 1 }.send(conn);\n\
             \x20   Msg::Rogue { n: 2 }.send(conn);\n\
             \x20   // AUDIT(protocol-ok): debug-only frame, workers ignore unknown tags.\n\
             \x20   Msg::Probe { n: 3 }.send(conn);\n\
             }\n",
        ),
    ]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_PROTOCOL);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert!(
        hits[0].salient.starts_with("send|Rogue|c2w|"),
        "{}",
        hits[0].salient
    );
    assert_eq!(suppressed(&report, RULE_PROTOCOL).len(), 1);
}

#[test]
fn protocol_worker_direction_is_oriented() {
    // The same frame is fine from the worker (w2c) but a violation from
    // the coordinator — direction comes from the endpoint role.
    let ws = Workspace::from_sources(&[
        ("demo-a", "crates/a/src/protocol.rs", TOY_SPEC),
        (
            "demo-a",
            "crates/a/src/serve.rs",
            "pub fn reply(conn: &mut Conn) {\n\
             \x20   Msg::Pong { n: 1 }.send(conn);\n\
             }\n",
        ),
        (
            "demo-a",
            "crates/a/src/coord.rs",
            "pub fn confused(conn: &mut Conn) {\n\
             \x20   Msg::Pong { n: 1 }.send(conn);\n\
             }\n",
        ),
    ]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_PROTOCOL);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert!(
        hits[0].salient.starts_with("send|Pong|c2w|"),
        "{}",
        hits[0].salient
    );
}

#[test]
fn protocol_direct_recv_must_absorb_trace() {
    let ws = Workspace::from_sources(&[
        ("demo-a", "crates/a/src/protocol.rs", TOY_SPEC),
        (
            "demo-a",
            "crates/a/src/coord.rs",
            "pub fn drain(conn: &mut Conn) -> Msg {\n\
             \x20   let Msg::Pong { n } = Msg::recv(conn) else { panic!() };\n\
             \x20   Msg::Pong { n }\n\
             }\n",
        ),
    ]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_PROTOCOL);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert!(
        hits[0].salient.starts_with("absorb|Trace|Pong|"),
        "{}",
        hits[0].salient
    );
}

#[test]
fn protocol_multiline_let_else_is_seen() {
    // The destructuring pattern opens lines before the `Msg::recv(`
    // call — the checker must look back to find the awaited reply.
    let ws = Workspace::from_sources(&[
        ("demo-a", "crates/a/src/protocol.rs", TOY_SPEC),
        (
            "demo-a",
            "crates/a/src/coord.rs",
            "pub fn drain(conn: &mut Conn) -> u64 {\n\
             \x20   let Msg::Pong {\n\
             \x20       n,\n\
             \x20   } = Msg::recv(conn) else { panic!() };\n\
             \x20   n\n\
             }\n",
        ),
    ]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_PROTOCOL);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert!(
        hits[0].salient.starts_with("absorb|Trace|Pong|"),
        "{}",
        hits[0].salient
    );
}

#[test]
fn protocol_absorber_is_clean_but_must_fold_every_side() {
    let ws = Workspace::from_sources(&[
        ("demo-a", "crates/a/src/protocol.rs", TOY_SPEC),
        (
            "demo-a",
            "crates/a/src/coord.rs",
            "pub fn recv_folding(conn: &mut Conn) -> Msg {\n\
             \x20   loop {\n\
             \x20       match Msg::recv(conn) {\n\
             \x20           Msg::Trace { line } => fold(line),\n\
             \x20           m => return m,\n\
             \x20       }\n\
             \x20   }\n\
             }\n\
             pub fn drain(conn: &mut Conn) -> Msg {\n\
             \x20   let Msg::Pong { n } = recv_folding(conn) else { panic!() };\n\
             \x20   Msg::Pong { n }\n\
             }\n",
        ),
    ]);
    let report = analyze_workspace(&ws);
    assert!(
        active(&report, RULE_PROTOCOL).is_empty(),
        "{:?}",
        report.findings
    );

    // Same shape, but the absorber forgets the Trace arm.
    let ws = Workspace::from_sources(&[
        ("demo-a", "crates/a/src/protocol.rs", TOY_SPEC),
        (
            "demo-a",
            "crates/a/src/coord.rs",
            "pub fn recv_folding(conn: &mut Conn) -> Msg {\n\
             \x20   Msg::recv(conn)\n\
             }\n",
        ),
    ]);
    let report = analyze_workspace(&ws);
    let hits = active(&report, RULE_PROTOCOL);
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert!(
        hits[0].salient.starts_with("absorber|Trace|"),
        "{}",
        hits[0].salient
    );
}

#[test]
fn protocol_tag_spec_coverage_both_ways() {
    let spec_with_tags = format!(
        "pub mod tag {{\n\
         \x20   pub const PING: u8 = 1;\n\
         \x20   pub const PONG: u8 = 2;\n\
         \x20   pub const TRACE: u8 = 16;\n\
         \x20   pub const ERR: u8 = 255;\n\
         \x20   pub const ROGUE: u8 = 9;\n\
         }}\n{TOY_SPEC}"
    );
    let ws = Workspace::from_sources(&[("demo-a", "crates/a/src/protocol.rs", &spec_with_tags)]);
    let report = analyze_workspace(&ws);
    let hits: Vec<String> = active(&report, RULE_PROTOCOL)
        .into_iter()
        .map(|f| f.salient.clone())
        .collect();
    assert!(hits.contains(&"tag|ROGUE".to_string()), "{hits:?}");
    assert!(!hits.iter().any(|s| s.starts_with("tag|PING")), "{hits:?}");

    // And the reverse: a spec frame with no wire tag is drift too.
    let spec_missing_tag = format!(
        "pub mod tag {{\n\
         \x20   pub const PING: u8 = 1;\n\
         \x20   pub const TRACE: u8 = 16;\n\
         \x20   pub const ERR: u8 = 255;\n\
         }}\n{TOY_SPEC}"
    );
    let ws = Workspace::from_sources(&[("demo-a", "crates/a/src/protocol.rs", &spec_missing_tag)]);
    let report = analyze_workspace(&ws);
    let hits: Vec<String> = active(&report, RULE_PROTOCOL)
        .into_iter()
        .map(|f| f.salient.clone())
        .collect();
    assert!(hits.contains(&"spec-frame|Pong".to_string()), "{hits:?}");
}

// ---------------------------------------------------------------------------
// Ratchet contract through the real binary.
// ---------------------------------------------------------------------------

struct FixtureWorkspace {
    root: PathBuf,
}

impl FixtureWorkspace {
    /// Materialize a minimal analyzable workspace in a temp dir: a
    /// virtual root manifest plus one crate with the given lib.rs.
    fn new(tag: &str, lib_rs: &str) -> FixtureWorkspace {
        let root =
            std::env::temp_dir().join(format!("cscv-analyze-fixture-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("crates/demo/src")).unwrap();
        std::fs::write(
            root.join("Cargo.toml"),
            "[workspace]\nmembers = [\"crates/*\"]\n",
        )
        .unwrap();
        std::fs::write(
            root.join("crates/demo/Cargo.toml"),
            "[package]\nname = \"demo\"\nversion = \"0.1.0\"\n",
        )
        .unwrap();
        std::fs::write(root.join("crates/demo/src/lib.rs"), lib_rs).unwrap();
        FixtureWorkspace { root }
    }

    fn analyze(&self, extra: &[&str]) -> std::process::Output {
        let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_cscv-xtask"));
        cmd.arg("analyze")
            .arg("--root")
            .arg(&self.root)
            .arg("--baseline")
            .arg(self.root.join("baseline.json"));
        for a in extra {
            cmd.arg(a);
        }
        cmd.output().unwrap()
    }
}

impl Drop for FixtureWorkspace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

const DIRTY_LIB: &str = "use std::sync::atomic::AtomicUsize;\n\
                         static PENDING: AtomicUsize = AtomicUsize::new(0);\n";

#[test]
fn ratchet_new_finding_exits_1() {
    let fx = FixtureWorkspace::new("new", DIRTY_LIB);
    let out = fx.analyze(&[]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("[new] atomic-role"), "{text}");
}

#[test]
fn ratchet_baselined_finding_exits_0_and_fixed_exits_2() {
    let fx = FixtureWorkspace::new("cycle", DIRTY_LIB);
    // Adopt the finding.
    let out = fx.analyze(&["--write-baseline"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Same workspace, committed baseline: clean.
    let out = fx.analyze(&[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("1 baselined"));
    // Fix the finding but keep the baseline entry: stale, exit 2.
    std::fs::write(
        fx.root.join("crates/demo/src/lib.rs"),
        "use std::sync::atomic::AtomicUsize;\n\
         // ATOMIC(statistic): request tally, aggregation-only reads.\n\
         static PENDING: AtomicUsize = AtomicUsize::new(0);\n",
    )
    .unwrap();
    let out = fx.analyze(&[]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("stale-baseline"));
}

#[test]
fn ratchet_clean_workspace_exits_0() {
    let fx = FixtureWorkspace::new("clean", "pub fn tidy() {}\n");
    let out = fx.analyze(&[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn ndjson_output_carries_fingerprints_and_summary() {
    let fx = FixtureWorkspace::new("ndjson", DIRTY_LIB);
    let out = fx.analyze(&["--format", "ndjson"]);
    let text = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"kind\":\"finding\"") && l.contains("\"fingerprint\":\"")),
        "{text}"
    );
    assert!(
        lines.last().unwrap().contains("\"kind\":\"summary\""),
        "{text}"
    );
    assert!(lines.last().unwrap().contains("\"exit\":1"), "{text}");
}

#[test]
fn ndjson_emits_per_rule_counts() {
    let fx = FixtureWorkspace::new("rulecount", DIRTY_LIB);
    let out = fx.analyze(&["--format", "ndjson"]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.lines().any(|l| l.contains("\"kind\":\"rule-count\"")
            && l.contains("\"rule\":\"atomic-role\"")
            && l.contains("\"active\":1")),
        "{text}"
    );
    // Every rule reports a count line, including silent ones.
    for rule in ["index-domain", "protocol-conformance"] {
        assert!(
            text.lines().any(|l| l.contains("\"kind\":\"rule-count\"")
                && l.contains(&format!("\"rule\":\"{rule}\""))
                && l.contains("\"active\":0")),
            "missing rule-count for {rule}: {text}"
        );
    }
}

// ---------------------------------------------------------------------------
// Incremental cache: warm replays are byte-identical, edits invalidate.
// ---------------------------------------------------------------------------

#[test]
fn cache_warm_run_is_byte_identical_and_edits_invalidate() {
    let fx = FixtureWorkspace::new("cache", "pub fn tidy() {}\n");
    let cold = fx.analyze(&[]);
    assert_eq!(
        cold.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&cold.stdout)
    );
    assert!(
        fx.root.join("target/analyze-cache.json").exists(),
        "cold run must persist the cache"
    );
    let warm = fx.analyze(&[]);
    assert_eq!(warm.status.code(), Some(0));
    assert_eq!(
        cold.stdout, warm.stdout,
        "warm replay must be byte-identical to the cold run"
    );
    // A source edit changes the content hash: the next run re-analyzes
    // instead of replaying the stale result.
    std::fs::write(fx.root.join("crates/demo/src/lib.rs"), DIRTY_LIB).unwrap();
    let edited = fx.analyze(&[]);
    assert_eq!(
        edited.status.code(),
        Some(1),
        "{}",
        String::from_utf8_lossy(&edited.stdout)
    );
    assert!(String::from_utf8_lossy(&edited.stdout).contains("[new] atomic-role"));
    // --no-cache always produces the same report as the cached path.
    let no_cache = fx.analyze(&["--no-cache"]);
    assert_eq!(edited.stdout, no_cache.stdout);
}

// ---------------------------------------------------------------------------
// Session-spec DOT export through the real binary.
// ---------------------------------------------------------------------------

#[test]
fn protocol_dot_export_writes_artifact() {
    let fx = FixtureWorkspace::new(
        "dot",
        "pub const SESSION_SPEC: &[&str] = &[\n\
         \x20   \"endpoint coordinator crates/demo/src/lib.rs\",\n\
         \x20   \"msg Ping c2w Idle Waiting\",\n\
         \x20   \"msg Pong w2c Waiting Idle\",\n\
         \x20   \"side Trace w2c Waiting\",\n\
         ];\n",
    );
    let dot_path = fx.root.join("session.dot");
    let out = fx.analyze(&["--protocol-dot", dot_path.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let dot = std::fs::read_to_string(&dot_path).unwrap();
    assert!(dot.starts_with("// Session spec"), "{dot}");
    assert!(dot.contains("digraph session"), "{dot}");
    assert!(
        dot.contains("\"Idle\" -> \"Waiting\" [label=\"Ping c2w\"]"),
        "{dot}"
    );
    assert!(dot.contains("style=dashed"), "{dot}");
}

// ---------------------------------------------------------------------------
// Workspace acceptance: the real repo is clean under its committed
// baseline.
// ---------------------------------------------------------------------------

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf()
}

#[test]
fn workspace_is_clean_under_committed_baseline() {
    let root = repo_root();
    let report = analyze::analyze_root(&root).unwrap();
    let baseline = Baseline::load(&root.join("crates/xtask/analyze_baseline.json")).unwrap();
    let ratchet = Ratchet::compare(&report, &baseline);
    assert_eq!(
        ratchet.exit_code(),
        0,
        "new: {:?}\nstale: {:?}",
        ratchet.new.iter().map(|f| &f.message).collect::<Vec<_>>(),
        ratchet.stale
    );
    // The engine actually saw the workspace.
    assert!(report.fn_count > 500, "{}", report.fn_count);
    assert!(report.edge_count > 1000, "{}", report.edge_count);
}
