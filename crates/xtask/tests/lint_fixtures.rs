//! End-to-end lint tests over on-disk fixture workspaces, plus the
//! acceptance check that the real workspace is clean and the CLI's exit
//! code / NDJSON contract.

use cscv_xtask::lint::{
    lint_root, RULE_HOT_PATH_PANIC, RULE_SAFETY_COMMENT, RULE_TRACE_FALLBACK, RULE_UNSAFE_WHITELIST,
};
use std::path::{Path, PathBuf};

/// A throwaway `crates/<crate>/src` tree under the target dir, removed on
/// drop. Each test passes a unique name, so tests can run concurrently.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("lintfix-{name}"));
        // Wipe any residue from an interrupted previous run.
        let _ = std::fs::remove_dir_all(&root);
        Fixture { root }
    }

    /// Write `source` at `<root>/<rel>`, creating parents.
    fn file(&self, rel: &str, source: &str) -> &Self {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, source).unwrap();
        self
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn uncommented_unsafe_is_flagged_with_file_and_line() {
    let fx = Fixture::new("uncommented-unsafe");
    fx.file(
        "crates/demo/src/shared.rs",
        "pub fn f(p: *mut u8) {\n    unsafe { *p = 0 };\n}\n",
    );
    let report = lint_root(&fx.root).unwrap();
    assert_eq!(report.files_scanned, 1);
    assert_eq!(report.diagnostics.len(), 1);
    let d = &report.diagnostics[0];
    assert_eq!(d.rule, RULE_SAFETY_COMMENT);
    assert_eq!(d.file, Path::new("crates/demo/src/shared.rs"));
    assert_eq!(d.line, 2);
}

#[test]
fn unsafe_outside_whitelist_is_flagged_even_with_comment() {
    let fx = Fixture::new("outside-whitelist");
    fx.file(
        "crates/demo/src/geometry.rs",
        "pub fn f(p: *mut u8) {\n    // SAFETY: p is valid.\n    unsafe { *p = 0 };\n}\n",
    );
    let report = lint_root(&fx.root).unwrap();
    let rules: Vec<_> = report.diagnostics.iter().map(|d| d.rule).collect();
    assert_eq!(rules, [RULE_UNSAFE_WHITELIST]);
    assert_eq!(report.diagnostics[0].line, 3);
}

#[test]
fn formats_directory_is_whitelisted() {
    let fx = Fixture::new("formats-dir");
    fx.file(
        "crates/demo/src/formats/sellcs.rs",
        "pub fn f(p: *mut u8) {\n    // SAFETY: p is valid.\n    unsafe { *p = 0 };\n}\n",
    );
    assert!(lint_root(&fx.root).unwrap().is_clean());
}

#[test]
fn hot_path_panics_flagged_outside_tests_only() {
    let fx = Fixture::new("hot-panic");
    fx.file(
        "crates/demo/src/kernels.rs",
        concat!(
            "pub fn hot(v: &[u32]) -> u32 {\n",
            "    *v.first().unwrap()\n",
            "}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() {\n",
            "        assert_eq!(super::hot(&[1]), 1);\n",
            "        Some(3).unwrap();\n",
            "    }\n",
            "}\n",
        ),
    );
    let report = lint_root(&fx.root).unwrap();
    let hits: Vec<_> = report
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.line))
        .collect();
    assert_eq!(hits, [(RULE_HOT_PATH_PANIC, 2)]);
}

#[test]
fn hot_path_rule_only_applies_to_kernel_files() {
    let fx = Fixture::new("cold-panic");
    fx.file(
        "crates/demo/src/io.rs",
        "pub fn f(v: &[u32]) -> u32 {\n    *v.first().unwrap()\n}\n",
    );
    assert!(lint_root(&fx.root).unwrap().is_clean());
}

#[test]
fn trace_cfg_without_fallback_is_flagged() {
    let fx = Fixture::new("trace-nofallback");
    fx.file(
        "crates/demo/src/lanes.rs",
        concat!(
            "#[cfg(feature = \"trace\")]\n",
            "pub fn traced() -> u32 {\n",
            "    1\n",
            "}\n",
        ),
    );
    let report = lint_root(&fx.root).unwrap();
    let rules: Vec<_> = report.diagnostics.iter().map(|d| d.rule).collect();
    assert_eq!(rules, [RULE_TRACE_FALLBACK]);
}

#[test]
fn trace_cfg_with_fallback_is_clean() {
    let fx = Fixture::new("trace-fallback");
    fx.file(
        "crates/demo/src/lanes.rs",
        concat!(
            "#[cfg(feature = \"trace\")]\n",
            "pub fn traced() -> u32 {\n",
            "    1\n",
            "}\n",
            "#[cfg(not(feature = \"trace\"))]\n",
            "pub fn traced() -> u32 {\n",
            "    0\n",
            "}\n",
        ),
    );
    assert!(lint_root(&fx.root).unwrap().is_clean());
}

#[test]
fn umbrella_src_is_scanned_too() {
    let fx = Fixture::new("umbrella");
    fx.file(
        "src/lib.rs",
        "pub fn f(p: *mut u8) {\n    unsafe { *p = 0 };\n}\n",
    );
    let report = lint_root(&fx.root).unwrap();
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.rule == RULE_SAFETY_COMMENT));
}

#[test]
fn missing_root_is_an_io_error() {
    let fx = Fixture::new("empty");
    fx.file("README.md", "not a workspace\n");
    assert!(lint_root(&fx.root).is_err());
}

/// The acceptance criterion: the shipped workspace lints clean.
#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_root(&root).unwrap();
    let rendered: Vec<String> = report
        .diagnostics
        .iter()
        .map(|d| format!("{}:{} {} {}", d.file.display(), d.line, d.rule, d.message))
        .collect();
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        rendered.join("\n")
    );
    assert!(report.files_scanned > 50, "{} files", report.files_scanned);
}

mod cli {
    //! Exit-code and output contract of the installed binary.
    use super::Fixture;
    use std::process::Command;

    fn run(args: &[&str]) -> (Option<i32>, String, String) {
        let out = Command::new(env!("CARGO_BIN_EXE_cscv-xtask"))
            .args(args)
            .output()
            .expect("spawn cscv-xtask");
        (
            out.status.code(),
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    }

    #[test]
    fn clean_tree_exits_zero() {
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let (code, stdout, _) = run(&["lint", "--root", root]);
        assert_eq!(code, Some(0), "{stdout}");
        assert!(stdout.contains("OK"), "{stdout}");
    }

    #[test]
    fn violations_exit_one_with_file_line_diagnostics() {
        let fx = Fixture::new("cli-violation");
        fx.file(
            "crates/demo/src/pool.rs",
            "pub fn f(p: *mut u8) {\n    unsafe { *p = 0 };\n}\n",
        );
        let (code, stdout, _) = run(&["lint", "--root", fx.root.to_str().unwrap()]);
        assert_eq!(code, Some(1), "{stdout}");
        let line = format!(
            "{}:2",
            std::path::Path::new("crates/demo/src/pool.rs").display()
        );
        assert!(stdout.contains(&line), "{stdout}");
        assert!(stdout.contains("unsafe-needs-safety-comment"), "{stdout}");
    }

    #[test]
    fn ndjson_output_is_line_per_record() {
        let fx = Fixture::new("cli-ndjson");
        fx.file(
            "crates/demo/src/pool.rs",
            "pub fn f(p: *mut u8) {\n    unsafe { *p = 0 };\n}\n",
        );
        let (code, stdout, _) = run(&["lint", "--ndjson", "--root", fx.root.to_str().unwrap()]);
        assert_eq!(code, Some(1), "{stdout}");
        let lines: Vec<&str> = stdout.lines().collect();
        assert_eq!(lines.len(), 2, "{stdout}");
        assert!(lines[0].starts_with("{\"kind\":\"diagnostic\""), "{stdout}");
        assert!(lines[1].starts_with("{\"kind\":\"summary\""), "{stdout}");
        assert!(lines[1].contains("\"violations\":1"), "{stdout}");
    }

    #[test]
    fn usage_errors_exit_two() {
        assert_eq!(run(&[]).0, Some(2));
        assert_eq!(run(&["frobnicate"]).0, Some(2));
        let fx = Fixture::new("cli-badroot");
        fx.file("README.md", "no crates here\n");
        let (code, _, stderr) = run(&["lint", "--root", fx.root.to_str().unwrap()]);
        assert_eq!(code, Some(2), "{stderr}");
        assert!(stderr.contains("no crates"), "{stderr}");
    }
}
