//! Microbenchmarks: SpMV across all implementations (ct128, single
//! precision, one thread) plus the mask-expansion primitives.
//!
//! Gated behind the off-by-default `criterion` feature so the default
//! build graph stays free of bench targets; the measurement itself uses
//! the suite's own min-time harness (no external crates), reporting the
//! paper's estimator (minimum over N iterations) per kernel.
//!
//! Run: `cargo bench -p cscv-bench --features criterion`

use cscv_ct::datasets;
use cscv_harness::suite::{executor_builders, prepare};
use cscv_harness::timing::measure_spmv;
use cscv_simd::expand::{expand_soft, expand_with, ExpandPath};
use cscv_simd::MaskExpand;
use cscv_sparse::ThreadPool;
use std::time::Instant;

/// Min-time of `iters` runs of `f`, in seconds.
fn min_time<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn report(group: &str, name: &str, secs: f64, elems: Option<usize>) {
    match elems {
        Some(n) => println!(
            "{group:<34} {name:<22} {:>12.3} µs  {:>9.1} Melem/s",
            secs * 1e6,
            n as f64 / secs / 1e6
        ),
        None => println!("{group:<34} {name:<22} {:>12.3} µs", secs * 1e6),
    }
}

fn bench_spmv_field() {
    let ds = datasets::default_suite()[0]; // ct128
    let prep = prepare::<f32>(&ds);
    let pool = ThreadPool::new(1);
    let mut y = vec![0.0f32; prep.csr.n_rows()];
    for (name, builder) in executor_builders::<f32>() {
        let exec = builder(&prep, 1);
        let m = measure_spmv(exec.as_ref(), &prep.x, &mut y, &pool, 3, 20);
        report("spmv_ct128_f32_1t", name, m.secs_min, Some(prep.csr.nnz()));
    }
}

fn bench_expand() {
    let vals: Vec<f32> = (0..16).map(|i| i as f32).collect();
    let masks: Vec<u32> = (0..256).map(|i| (i * 2654435761u32) & 0xFFFF).collect();
    let soft = min_time(200, || {
        let mut acc = 0.0f32;
        for &m in &masks {
            let lanes: [f32; 16] = expand_soft(m, &vals);
            acc += lanes[0] + lanes[15];
        }
        std::hint::black_box(acc);
    });
    report(
        "mask_expand_f32x16",
        "soft-vexpand",
        soft,
        Some(masks.len()),
    );
    if <f32 as MaskExpand>::hw_available::<16>() {
        let hard = min_time(200, || {
            let mut acc = 0.0f32;
            for &m in &masks {
                let lanes: [f32; 16] = expand_with(ExpandPath::Hardware, m, &vals);
                acc += lanes[0] + lanes[15];
            }
            std::hint::black_box(acc);
        });
        report("mask_expand_f32x16", "vexpand", hard, Some(masks.len()));
    }
}

fn bench_transpose() {
    use cscv_core::{build, CscvExec, CscvParams, Variant};
    let ds = datasets::default_suite()[0];
    let prep = prepare::<f32>(&ds);
    let pool = ThreadPool::new(1);
    let y: Vec<f32> = (0..prep.csr.n_rows()).map(|i| (i % 13) as f32).collect();
    let mut x = vec![0.0f32; prep.csr.n_cols()];
    let exec_m = CscvExec::new(build(
        &prep.csc,
        prep.layout,
        prep.img,
        CscvParams::default_m(),
        Variant::M,
    ));
    let t = min_time(20, || exec_m.spmv_transpose(&y, &mut x, &pool));
    report(
        "backprojection_ct128_f32_1t",
        "CSCV-M-T",
        t,
        Some(prep.csr.nnz()),
    );
    let at = cscv_sparse::formats::CsrExec::new(prep.csr.transpose());
    use cscv_sparse::SpmvExecutor;
    let t = min_time(20, || at.spmv(&y, &mut x, &pool));
    report(
        "backprojection_ct128_f32_1t",
        "CSR(At)",
        t,
        Some(prep.csr.nnz()),
    );
}

fn bench_conversion() {
    use cscv_core::{build, CscvParams, Variant};
    let ds = datasets::default_suite()[0];
    let prep = prepare::<f32>(&ds);
    let t = min_time(10, || {
        std::hint::black_box(build(
            &prep.csc,
            prep.layout,
            prep.img,
            CscvParams::default_m(),
            Variant::M,
        ));
    });
    report("format_conversion_ct128_f32", "CSCV-M build", t, None);
    let t = min_time(10, || {
        std::hint::black_box(cscv_sparse::formats::Csr5Exec::new(&prep.csr));
    });
    report("format_conversion_ct128_f32", "CSR5 build", t, None);
    let t = min_time(10, || {
        std::hint::black_box(cscv_sparse::formats::SellCSigmaExec::new(&prep.csr));
    });
    report("format_conversion_ct128_f32", "SELL-C-sigma build", t, None);
    let t = min_time(10, || {
        std::hint::black_box(prep.csc.to_csr());
    });
    report("format_conversion_ct128_f32", "CSC->CSR transpose", t, None);
}

fn main() {
    bench_spmv_field();
    bench_expand();
    bench_transpose();
    bench_conversion();
}
