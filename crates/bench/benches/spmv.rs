//! Criterion microbenchmarks: SpMV across all implementations (ct128,
//! single precision, one thread) plus the mask-expansion primitives.
//!
//! These complement the table/figure drivers: Criterion gives
//! statistically sound per-kernel numbers; the drivers reproduce the
//! paper's exact reporting format.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cscv_ct::datasets;
use cscv_harness::suite::{executor_builders, prepare};
use cscv_simd::expand::{expand_soft, expand_with, ExpandPath};
use cscv_simd::MaskExpand;
use cscv_sparse::ThreadPool;

fn bench_spmv_field(c: &mut Criterion) {
    let ds = datasets::default_suite()[0]; // ct128
    let prep = prepare::<f32>(&ds);
    let pool = ThreadPool::new(1);
    let mut y = vec![0.0f32; prep.csr.n_rows()];
    let mut group = c.benchmark_group("spmv_ct128_f32_1t");
    group.throughput(Throughput::Elements(prep.csr.nnz() as u64));
    group.sample_size(20);
    for (name, builder) in executor_builders::<f32>() {
        let exec = builder(&prep, 1);
        group.bench_function(name, |b| {
            b.iter(|| exec.spmv(&prep.x, &mut y, &pool));
        });
    }
    group.finish();
}

fn bench_expand(c: &mut Criterion) {
    let vals: Vec<f32> = (0..16).map(|i| i as f32).collect();
    let masks: Vec<u32> = (0..256).map(|i| (i * 2654435761u32) & 0xFFFF).collect();
    let mut group = c.benchmark_group("mask_expand_f32x16");
    group.bench_function("soft-vexpand", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for &m in &masks {
                let lanes: [f32; 16] = expand_soft(m, &vals);
                acc += lanes[0] + lanes[15];
            }
            acc
        });
    });
    if <f32 as MaskExpand>::hw_available::<16>() {
        group.bench_function("vexpand", |b| {
            b.iter(|| {
                let mut acc = 0.0f32;
                for &m in &masks {
                    let lanes: [f32; 16] = expand_with(ExpandPath::Hardware, m, &vals);
                    acc += lanes[0] + lanes[15];
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_transpose(c: &mut Criterion) {
    use cscv_core::{build, CscvExec, CscvParams, Variant};
    let ds = datasets::default_suite()[0];
    let prep = prepare::<f32>(&ds);
    let pool = ThreadPool::new(1);
    let y: Vec<f32> = (0..prep.csr.n_rows()).map(|i| (i % 13) as f32).collect();
    let mut x = vec![0.0f32; prep.csr.n_cols()];
    let mut group = c.benchmark_group("backprojection_ct128_f32_1t");
    group.throughput(Throughput::Elements(prep.csr.nnz() as u64));
    group.sample_size(20);
    let exec_m = CscvExec::new(build(
        &prep.csc,
        prep.layout,
        prep.img,
        CscvParams::default_m(),
        Variant::M,
    ));
    group.bench_function("CSCV-M-T", |b| {
        b.iter(|| exec_m.spmv_transpose(&y, &mut x, &pool));
    });
    let at = cscv_sparse::formats::CsrExec::new(prep.csr.transpose());
    use cscv_sparse::SpmvExecutor;
    group.bench_function("CSR(At)", |b| {
        b.iter(|| at.spmv(&y, &mut x, &pool));
    });
    group.finish();
}

fn bench_conversion(c: &mut Criterion) {
    use cscv_core::{build, CscvParams, Variant};
    let ds = datasets::default_suite()[0];
    let prep = prepare::<f32>(&ds);
    let mut group = c.benchmark_group("format_conversion_ct128_f32");
    group.sample_size(10);
    group.bench_function("CSCV-M build", |b| {
        b.iter(|| {
            build(
                &prep.csc,
                prep.layout,
                prep.img,
                CscvParams::default_m(),
                Variant::M,
            )
        });
    });
    group.bench_function("CSR5 build", |b| {
        b.iter(|| cscv_sparse::formats::Csr5Exec::new(&prep.csr));
    });
    group.bench_function("SELL-C-sigma build", |b| {
        b.iter(|| cscv_sparse::formats::SellCSigmaExec::new(&prep.csr));
    });
    group.bench_function("CSC->CSR transpose", |b| {
        b.iter(|| prep.csc.to_csr());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_spmv_field,
    bench_expand,
    bench_transpose,
    bench_conversion
);
criterion_main!(benches);
