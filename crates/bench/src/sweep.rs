//! Parameter-sweep engine shared by the Fig. 9 and Table III drivers.

use cscv_core::{build, CscvExec, CscvParams, Variant};
use cscv_harness::suite::PreparedDataset;
use cscv_harness::timing::measure_spmv;
use cscv_simd::MaskExpand;
use cscv_sparse::{Scalar, ThreadPool};

/// One (S_VVec, S_ImgB) cell: the best S_VxG choice and its performance.
#[derive(Debug, Clone)]
pub struct SweepCell {
    pub s_vvec: usize,
    pub s_imgb: usize,
    pub best_vxg: usize,
    pub gflops: f64,
    pub r_nnze: f64,
}

/// Sweep (S_VVec × S_ImgB × S_VxG) for one variant at one thread count;
/// each cell keeps the best-performing S_VxG (paper Fig. 9's number in
/// parentheses).
#[allow(clippy::too_many_arguments)]
pub fn param_sweep<T: Scalar + MaskExpand>(
    prep: &PreparedDataset<T>,
    variant: Variant,
    vvecs: &[usize],
    imgbs: &[usize],
    vxgs: &[usize],
    pool: &ThreadPool,
    warmup: usize,
    iters: usize,
) -> Vec<SweepCell> {
    let mut out = Vec::new();
    let mut y = vec![T::ZERO; prep.csr.n_rows()];
    for &s_vvec in vvecs {
        for &s_imgb in imgbs {
            let mut best: Option<SweepCell> = None;
            for &s_vxg in vxgs {
                let params = CscvParams::new(s_imgb, s_vvec, s_vxg);
                let m = build(&prep.csc, prep.layout, prep.img, params, variant);
                let r_nnze = m.stats.r_nnze();
                let exec = CscvExec::new(m);
                let meas = measure_spmv(&exec, &prep.x, &mut y, pool, warmup, iters);
                let better = best
                    .as_ref()
                    .map(|b| meas.gflops > b.gflops)
                    .unwrap_or(true);
                if better {
                    best = Some(SweepCell {
                        s_vvec,
                        s_imgb,
                        best_vxg: s_vxg,
                        gflops: meas.gflops,
                        r_nnze,
                    });
                }
            }
            out.push(best.expect("at least one vxg option"));
        }
    }
    out
}

/// Pick the overall best cell of a sweep.
pub fn best_cell(cells: &[SweepCell]) -> &SweepCell {
    cells
        .iter()
        .max_by(|a, b| a.gflops.partial_cmp(&b.gflops).unwrap())
        .expect("non-empty sweep")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscv_ct::datasets;
    use cscv_harness::suite::prepare;

    #[test]
    fn sweep_runs_and_selects() {
        let prep = prepare::<f32>(&datasets::tiny());
        let pool = ThreadPool::new(1);
        let cells = param_sweep(&prep, Variant::Z, &[4, 8], &[8], &[1, 2], &pool, 0, 2);
        assert_eq!(cells.len(), 2);
        for c in &cells {
            assert!(c.gflops > 0.0);
            assert!(c.best_vxg == 1 || c.best_vxg == 2);
            assert!(c.r_nnze >= 0.0);
        }
        let b = best_cell(&cells);
        assert!(cells.iter().all(|c| c.gflops <= b.gflops));
    }
}
