//! Shared command-line plumbing for the experiment drivers.
//!
//! Every driver binary reproduces one table or figure of the paper (see
//! DESIGN.md's per-experiment index). They share a tiny flag parser —
//! no CLI dependency needed:
//!
//! * `--paper-scale` — use the original Table II matrices instead of the
//!   ¼-scale defaults (tens of GB; see DESIGN.md);
//! * `--dataset NAME` — restrict to one dataset;
//! * `--threads a,b,c` — thread counts to sweep (default `1,2,4` capped
//!   by the machine);
//! * `--iters N` — timed iterations per measurement (default 20; the
//!   paper uses ≥ 100 — set `--iters 100` or `CSCV_BENCH_ITERS=100` for
//!   paper-strength numbers);
//! * `--csv PATH` — also write the table as CSV.

use cscv_ct::{datasets, CtDataset};
use cscv_harness::table::Table;
use cscv_sparse::ThreadPool;

/// Parsed common options.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    pub datasets: Vec<CtDataset>,
    pub threads: Vec<usize>,
    pub iters: usize,
    pub warmup: usize,
    pub csv: Option<String>,
}

impl BenchArgs {
    /// Parse `std::env::args`, exiting with usage on errors.
    pub fn parse() -> BenchArgs {
        Self::from_iter(std::env::args().skip(1))
    }

    #[allow(clippy::should_implement_trait)] // CLI flag parser, not an iterator ctor
    pub fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> BenchArgs {
        let mut paper_scale = false;
        let mut dataset: Option<String> = None;
        let mut threads: Option<Vec<usize>> = None;
        let mut iters = 20usize;
        let mut csv = None;
        let mut it = iter.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--paper-scale" => paper_scale = true,
                "--dataset" => dataset = Some(it.next().expect("--dataset NAME")),
                "--threads" => {
                    threads = Some(
                        it.next()
                            .expect("--threads a,b,c")
                            .split(',')
                            .map(|s| s.parse().expect("thread count"))
                            .collect(),
                    )
                }
                "--iters" => iters = it.next().expect("--iters N").parse().expect("N"),
                "--csv" => csv = Some(it.next().expect("--csv PATH")),
                "--help" | "-h" => {
                    eprintln!(
                        "flags: [--paper-scale] [--dataset NAME] [--threads a,b,c] [--iters N] [--csv PATH]"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}"),
            }
        }
        let mut suite = if paper_scale {
            datasets::paper_suite()
        } else {
            datasets::default_suite()
        };
        if let Some(name) = dataset {
            suite.retain(|d| d.name == name);
            assert!(!suite.is_empty(), "no dataset named {name}");
        }
        let hw = ThreadPool::max_parallelism();
        let threads = threads.unwrap_or_else(|| {
            [1usize, 2, 4]
                .into_iter()
                .filter(|&t| t <= hw.max(4))
                .collect()
        });
        BenchArgs {
            datasets: suite,
            threads,
            iters: cscv_harness::timing::bench_iters(iters),
            warmup: 3,
            csv,
        }
    }

    /// Largest requested thread count (pool/CVR sizing).
    pub fn max_threads(&self) -> usize {
        self.threads.iter().copied().max().unwrap_or(1)
    }
}

/// Print a table and optionally write its CSV.
pub fn emit(title: &str, table: &Table, csv: &Option<String>) {
    println!("\n== {title} ==\n");
    print!("{}", table.render());
    if let Some(path) = csv {
        std::fs::write(path, table.to_csv()).expect("write csv");
        println!("(csv written to {path})");
    }
}

/// RAII guard returned by [`trace_report`]; emits the trace report when
/// the driver exits (including on panic-unwind). Now the shared
/// [`cscv_trace::ReportGuard`] so drivers, solvers, and examples all use
/// the same exit hook.
pub use cscv_trace::ReportGuard as TraceReport;

/// Install the end-of-run trace reporter (call first in `main`). With
/// `--features trace` the report goes to `CSCV_TRACE_OUT` as NDJSON if
/// set, else to stderr as a table; untraced builds emit nothing.
pub fn trace_report() -> TraceReport {
    cscv_trace::report_guard()
}

/// Machine/bandwidth banner shared by the perf drivers.
pub fn banner() {
    let feats = cscv_simd::cpu_features();
    println!(
        "machine: {} hw threads, simd: {}",
        ThreadPool::max_parallelism(),
        feats.summary()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BenchArgs {
        BenchArgs::from_iter(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.datasets.len(), 4);
        assert_eq!(a.datasets[0].name, "ct128");
        assert!(!a.threads.is_empty());
        assert_eq!(a.iters, 20);
    }

    #[test]
    fn dataset_filter_and_iters() {
        let a = parse(&["--dataset", "ct256", "--iters", "5"]);
        assert_eq!(a.datasets.len(), 1);
        assert_eq!(a.datasets[0].name, "ct256");
        assert_eq!(a.iters, 5);
    }

    #[test]
    fn paper_scale_switches_suite() {
        let a = parse(&["--paper-scale"]);
        assert_eq!(a.datasets[0].name, "512x512");
    }

    #[test]
    fn threads_list() {
        let a = parse(&["--threads", "1,3,9"]);
        assert_eq!(a.threads, vec![1, 3, 9]);
        assert_eq!(a.max_threads(), 9);
    }

    #[test]
    #[should_panic]
    fn unknown_flag_panics() {
        parse(&["--bogus"]);
    }

    #[test]
    #[should_panic]
    fn missing_dataset_panics() {
        parse(&["--dataset", "nope"]);
    }
}

pub mod sweep;
