//! E-F10: scalability of all implementations — paper Fig. 10.
//!
//! GFLOP/s of every implementation × every dataset × every thread count
//! × both precisions. Executors are built once per (dataset, impl,
//! precision) and re-measured at each thread count, like the paper's
//! per-machine sweeps.
//!
//! Run: `cargo run --release -p cscv-bench --bin fig10_scalability --
//! [--dataset NAME] [--threads 1,2,4] [--iters N] [--csv PATH]`

use cscv_bench::{banner, emit, BenchArgs};
use cscv_harness::suite::{executor_builders, prepare};
use cscv_harness::table::{f, Table};
use cscv_harness::timing::measure_spmv;
use cscv_simd::MaskExpand;
use cscv_sparse::{Scalar, ThreadPool};

fn run_precision<T: Scalar + MaskExpand>(args: &BenchArgs, table: &mut Table) {
    for ds in &args.datasets {
        let prep = prepare::<T>(ds);
        let mut y = vec![T::ZERO; prep.csr.n_rows()];
        for (name, builder) in executor_builders::<T>() {
            let exec = builder(&prep, args.max_threads());
            for &threads in &args.threads {
                let pool = ThreadPool::new(threads);
                let m = measure_spmv(
                    exec.as_ref(),
                    &prep.x,
                    &mut y,
                    &pool,
                    args.warmup,
                    args.iters,
                );
                table.add_row(vec![
                    ds.name.to_string(),
                    T::NAME.to_string(),
                    name.to_string(),
                    threads.to_string(),
                    f(m.gflops, 3),
                    f(m.secs_min * 1e3, 3),
                ]);
            }
        }
    }
}

fn main() {
    let _trace = cscv_bench::trace_report();
    let args = BenchArgs::parse();
    banner();
    let mut table = Table::new(vec![
        "dataset",
        "precision",
        "implementation",
        "threads",
        "GFLOP/s",
        "min time (ms)",
    ]);
    run_precision::<f32>(&args, &mut table);
    run_precision::<f64>(&args, &mut table);
    emit(
        "Fig. 10 analog: scalability of SpMV implementations",
        &table,
        &args.csv,
    );
}
