//! E-F4: SIMD-efficiency of `y` layouts (paper Fig. 4).
//!
//! For the Table I sample block's pixels, computes how many nonzeros an
//! 8-lane SIMD vector covers under bin-major, view-major (BTB) and
//! IOBLR-major orderings of `y`. The paper's reading: bin-major ≈ 3,
//! view-major ≈ 2–6, IOBLR-major ≈ 7–8 of 8 lanes.
//!
//! Run: `cargo run --release -p cscv-bench --bin fig4_simd_efficiency`

use cscv_core::ioblr::{min_bin_per_view, RefCurve};
use cscv_core::layout::{ImageShape, SinoLayout};
use cscv_core::layout_eff::{column_efficiency, summarize, YLayout};
use cscv_ct::datasets::table1_sample;
use cscv_ct::system::SystemMatrix;
use cscv_harness::table::{f, Table};

fn main() {
    let _trace = cscv_bench::trace_report();
    let ds = table1_sample();
    let ct = ds.geometry();
    let csc = SystemMatrix::assemble_csc::<f32>(&ct);
    let layout = SinoLayout {
        n_views: ds.n_views,
        n_bins: ds.n_bins,
    };
    let img = ImageShape { nx: 25, ny: 25 };

    // Aggregate over every complete 8-view group of the half circle —
    // whether a window is "drifting" (trajectory slope steep, where
    // view-major runs break up) or stationary depends on the pixel's
    // angular phase, so single-window numbers are not representative.
    let mut per_layout: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let layouts = [YLayout::BinMajor, YLayout::ViewMajor, YLayout::IoblrMajor];
    let ref_col = img.col_index(7, 7); // tile-center pixel of tile [5,9]²
    for g in 0..(ds.n_views / 8) {
        let views = g * 8..(g + 1) * 8;
        let curve = RefCurve::from_min_bins(&min_bin_per_view(&csc, &layout, ref_col, &views))
            .expect("center pixel projects in all views");
        for iy in 5..=9usize {
            for ix in 5..=9usize {
                let col = img.col_index(ix, iy);
                let (rows, _) = csc.col(col);
                let entries: Vec<(u32, u32)> = rows
                    .iter()
                    .map(|&r| layout.ray_of_row(r as usize))
                    .filter(|&(v, _)| views.contains(&v))
                    .map(|(v, b)| ((v - views.start) as u32, b as u32))
                    .collect();
                for (k, l) in layouts.iter().enumerate() {
                    per_layout[k].extend(column_efficiency(&entries, Some(&curve), *l));
                }
            }
        }
    }

    let mut t = Table::new(vec![
        "y layout",
        "min nnz/vector",
        "max nnz/vector",
        "mean nnz/vector",
        "efficiency (of 8 lanes)",
    ]);
    for (k, l) in layouts.iter().enumerate() {
        let (min, max, mean) = summarize(&per_layout[k]);
        t.add_row(vec![
            l.to_string(),
            min.to_string(),
            max.to_string(),
            f(mean, 2),
            format!("{:.0}%", mean / 8.0 * 100.0),
        ]);
    }
    println!(
        "Fig. 4 analog: SIMD-efficiency of y layouts over the Table I sample tile\n\n{}",
        t.render()
    );
    println!("paper reference (S_VVec = 8): bin-major 3, view-major 2~6, IOBLR-major 7~8");
}
