//! E-F8: R_nnzE and memory requirements vs (S_VVec, S_ImgB, S_VxG) —
//! paper Fig. 8.
//!
//! Structure-only sweep (no timing): one CSCV-M build per combination
//! also yields the CSCV-Z numbers analytically (same layout, padded
//! value stream), halving the sweep cost.
//!
//! Default dataset: ct256 (the scaled analog of the paper's 1024²
//! single-precision study). `cargo run --release -p cscv-bench --bin
//! fig8_param_sweep -- --dataset ct128` for a quick pass.

use cscv_bench::{emit, BenchArgs};
use cscv_core::{build, CscvParams, Variant};
use cscv_harness::suite::prepare;
use cscv_harness::table::{f, mib, Table};
use cscv_sparse::Scalar;

fn main() {
    let _trace = cscv_bench::trace_report();
    let mut args = BenchArgs::parse();
    if args.datasets.len() > 1 {
        // Paper's Fig. 8 is a single-matrix study (1024²) — default to
        // the scaled analog.
        args.datasets.retain(|d| d.name == "ct256");
    }
    let ds = args.datasets[0];
    println!("dataset: {} (single precision)", ds.name);
    let prep = prepare::<f32>(&ds);
    let vec_bytes = (prep.csr.n_rows() + prep.csr.n_cols()) * f32::BYTES;

    let mut table = Table::new(vec![
        "S_VVec",
        "S_ImgB",
        "S_VxG",
        "R_nnzE",
        "ioblr-pad",
        "vxg-pad",
        "M_Rit Z (MiB)",
        "M_Rit M (MiB)",
    ]);
    for params in CscvParams::sweep_grid() {
        let m = build(&prep.csc, prep.layout, prep.img, params, Variant::M);
        let stats = m.stats;
        // CSCV-M bytes: as stored. CSCV-Z bytes: identical index data but
        // a fully padded value stream and no masks.
        let masks: usize = m.blocks.iter().map(|b| b.masks.len()).sum();
        let m_bytes = m.matrix_bytes();
        let z_bytes =
            m_bytes - masks - m.nnz_stored_vals() * f32::BYTES + stats.lane_slots * f32::BYTES;
        table.add_row(vec![
            params.s_vvec.to_string(),
            params.s_imgb.to_string(),
            params.s_vxg.to_string(),
            f(stats.r_nnze(), 3),
            f(stats.ioblr_padding as f64 / stats.nnz_orig as f64, 3),
            f(stats.vxg_padding as f64 / stats.nnz_orig as f64, 3),
            mib(z_bytes + vec_bytes),
            mib(m_bytes + vec_bytes),
        ]);
    }
    emit(
        &format!(
            "Fig. 8 analog: R_nnzE and memory requirements over the parameter grid ({})",
            ds.name
        ),
        &table,
        &args.csv,
    );
}
