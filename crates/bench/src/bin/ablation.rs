//! E-X1: ablation of CSCV's design choices (our addition; see
//! DESIGN.md).
//!
//! On one dataset (default ct256, f32) measures the contribution of:
//!
//! 1. **VxG depth** — S_VxG ∈ {1, 2, 4, 8} at fixed tile/lane sizes
//!    (instruction pipelining + index compression vs padding);
//! 2. **expand path** — CSCV-M with hardware `vexpand` vs forced
//!    `soft-vexpand` (the paper's SKL-vs-Zen2 single-thread story);
//! 3. **parallel strategy** — view-group ownership vs the paper's
//!    private-`y`-copies + reduction.
//!
//! Run: `cargo run --release -p cscv-bench --bin ablation --
//! [--dataset NAME] [--threads 1,4] [--iters N]`

use cscv_bench::{banner, emit, BenchArgs};
use cscv_core::{build, CscvExec, CscvParams, ParallelStrategy, Variant};
use cscv_harness::suite::prepare;
use cscv_harness::table::{f, Table};
use cscv_harness::timing::measure_spmv;
use cscv_simd::expand::ExpandPath;
use cscv_sparse::SpmvExecutor;
use cscv_sparse::ThreadPool;

fn main() {
    let _trace = cscv_bench::trace_report();
    let mut args = BenchArgs::parse();
    if args.datasets.len() > 1 {
        args.datasets.retain(|d| d.name == "ct256");
    }
    let ds = args.datasets[0];
    banner();
    println!("dataset: {} (single precision)", ds.name);
    let prep = prepare::<f32>(&ds);
    let mut y = vec![0.0f32; prep.csr.n_rows()];
    let pool1 = ThreadPool::new(1);
    let pool_n = ThreadPool::new(args.max_threads());

    // 1. VxG depth.
    let mut t1 = Table::new(vec![
        "variant",
        "S_VxG",
        "R_nnzE",
        "GFLOP/s (1T)",
        "index MiB",
    ]);
    for variant in [Variant::Z, Variant::M] {
        for s_vxg in [1usize, 2, 4, 8] {
            let params = CscvParams::new(16, 8, s_vxg);
            let m = build(&prep.csc, prep.layout, prep.img, params, variant);
            let r = m.stats.r_nnze();
            let exec = CscvExec::new(m);
            let value_bytes = exec.matrix().nnz_stored_vals() * 4;
            let idx = exec.matrix_bytes() - value_bytes;
            let meas = measure_spmv(&exec, &prep.x, &mut y, &pool1, args.warmup, args.iters);
            t1.add_row(vec![
                variant.to_string(),
                s_vxg.to_string(),
                f(r, 3),
                f(meas.gflops, 2),
                f(idx as f64 / (1 << 20) as f64, 1),
            ]);
        }
    }
    emit(
        "Ablation 1: VxG depth (S_ImgB=16, S_VVec=8)",
        &t1,
        &args.csv,
    );

    // 2. Expand path (only meaningful where hardware expand exists).
    let mut t2 = Table::new(vec!["expand path", "GFLOP/s (1T)", "GFLOP/s (NT)"]);
    let m = build(
        &prep.csc,
        prep.layout,
        prep.img,
        CscvParams::default_m(),
        Variant::M,
    );
    let mut exec = CscvExec::new(m);
    let hw_available = exec.expand_path() == ExpandPath::Hardware;
    for path in [ExpandPath::Hardware, ExpandPath::Software] {
        if path == ExpandPath::Hardware && !hw_available {
            continue;
        }
        exec.force_expand_path(path);
        let m1 = measure_spmv(&exec, &prep.x, &mut y, &pool1, args.warmup, args.iters);
        let mn = measure_spmv(&exec, &prep.x, &mut y, &pool_n, args.warmup, args.iters);
        t2.add_row(vec![path.to_string(), f(m1.gflops, 2), f(mn.gflops, 2)]);
    }
    emit("Ablation 2: CSCV-M expand path", &t2, &args.csv);

    // 3. Parallel strategy.
    let mut t3 = Table::new(vec!["variant", "strategy", "threads", "GFLOP/s"]);
    for variant in [Variant::Z, Variant::M] {
        let params = match variant {
            Variant::Z => CscvParams::default_z(),
            Variant::M => CscvParams::default_m(),
        };
        let m = build(&prep.csc, prep.layout, prep.img, params, variant);
        for strategy in [ParallelStrategy::ViewGroups, ParallelStrategy::LocalCopies] {
            let exec = CscvExec::with_strategy(m.clone(), strategy);
            for &threads in &args.threads {
                let pool = ThreadPool::new(threads);
                let meas = measure_spmv(&exec, &prep.x, &mut y, &pool, args.warmup, args.iters);
                t3.add_row(vec![
                    variant.to_string(),
                    format!("{strategy:?}"),
                    threads.to_string(),
                    f(meas.gflops, 2),
                ]);
            }
        }
    }
    emit("Ablation 3: thread-level strategy", &t3, &args.csv);
}
