//! E-F5: distribution of zero-padding / CSCVE count / bin offsets over
//! reference-pixel choices (paper Fig. 5).
//!
//! For every candidate reference pixel of the Table I sample tile, uses
//! that pixel's min-bin curve as the IOBLR reference and reports the
//! block's padding profile — showing (as in the paper) that the tile
//! center is a near-optimal reference and the corners are worst.
//!
//! Run: `cargo run --release -p cscv-bench --bin fig5_padding_dist`

use cscv_core::ioblr::{block_stats_for_curve, min_bin_per_view, RefCurve};
use cscv_core::layout::{ImageShape, SinoLayout};
use cscv_ct::datasets::table1_sample;
use cscv_ct::system::SystemMatrix;

fn main() {
    let _trace = cscv_bench::trace_report();
    let ds = table1_sample();
    let ct = ds.geometry();
    let csc = SystemMatrix::assemble_csc::<f32>(&ct);
    let layout = SinoLayout {
        n_views: ds.n_views,
        n_bins: ds.n_bins,
    };
    let img = ImageShape { nx: 25, ny: 25 };
    let views = 8..16usize;
    let w = 8usize;

    // Tile [5,9]² entries, per column.
    let mut cols_entries: Vec<Vec<(u32, u32)>> = Vec::new();
    for iy in 5..=9usize {
        for ix in 5..=9usize {
            let col = img.col_index(ix, iy);
            let (rows, _) = csc.col(col);
            cols_entries.push(
                rows.iter()
                    .map(|&r| layout.ray_of_row(r as usize))
                    .filter(|&(v, _)| views.contains(&v))
                    .map(|(v, b)| ((v - views.start) as u32, b as u32))
                    .collect(),
            );
        }
    }

    println!("Fig. 5 analog: per-reference-pixel padding profile of the sample tile\n");
    let mut grid_pad = vec![vec![0usize; 5]; 5];
    let mut grid_cscve = vec![vec![0usize; 5]; 5];
    let mut grid_off = vec![vec![0i64; 5]; 5];
    for ry in 0..5usize {
        for rx in 0..5usize {
            let ref_col = img.col_index(5 + rx, 5 + ry);
            let curve = RefCurve::from_min_bins(&min_bin_per_view(&csc, &layout, ref_col, &views))
                .expect("sample pixels project in all views");
            let st = block_stats_for_curve(&cols_entries, &curve, w);
            grid_pad[ry][rx] = st.padding();
            grid_cscve[ry][rx] = st.n_cscve;
            grid_off[ry][rx] = st.offset_max - st.offset_min;
        }
    }

    let dump = |title: &str, rows: &dyn Fn(usize, usize) -> String| {
        println!("{title}:");
        for ry in 0..5 {
            let line: Vec<String> = (0..5).map(|rx| format!("{:>5}", rows(ry, rx))).collect();
            println!("  {}", line.join(" "));
        }
        println!();
    };
    dump(
        "zero-padding count per reference pixel (5x5 grid, image rows 5..9)",
        &|ry, rx| grid_pad[ry][rx].to_string(),
    );
    dump("CSCVE count per reference pixel", &|ry, rx| {
        grid_cscve[ry][rx].to_string()
    });
    dump("bin-offset range per reference pixel", &|ry, rx| {
        grid_off[ry][rx].to_string()
    });

    // The paper's takeaway: the center pixel should be at or near the
    // minimum padding.
    let center = grid_pad[2][2];
    let min = grid_pad.iter().flatten().min().unwrap();
    let max = grid_pad.iter().flatten().max().unwrap();
    println!("center-pixel padding {center}, tile min {min}, tile max {max}");
}
