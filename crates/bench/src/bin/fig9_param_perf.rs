//! E-F9: best GFLOP/s and best S_VxG per (S_VVec, S_ImgB) — paper
//! Fig. 9.
//!
//! For each variant and thread count, sweeps the parameter grid and
//! prints a matrix of `GFLOP/s (best S_VxG)` cells like the paper's
//! heatmaps. Default dataset ct256, single precision (the paper's
//! setup).
//!
//! Run: `cargo run --release -p cscv-bench --bin fig9_param_perf --
//! [--dataset ct128] [--threads 1,4] [--iters N]`

use cscv_bench::sweep::param_sweep;
use cscv_bench::{banner, emit, BenchArgs};
use cscv_core::Variant;
use cscv_harness::suite::prepare;
use cscv_harness::table::{f, Table};
use cscv_sparse::ThreadPool;

const VVECS: [usize; 3] = [4, 8, 16];
const IMGBS: [usize; 4] = [8, 16, 32, 64];
const VXGS: [usize; 5] = [1, 2, 4, 8, 16];

fn main() {
    let _trace = cscv_bench::trace_report();
    let mut args = BenchArgs::parse();
    if args.datasets.len() > 1 {
        args.datasets.retain(|d| d.name == "ct256");
    }
    let ds = args.datasets[0];
    banner();
    println!("dataset: {} (single precision)", ds.name);
    let prep = prepare::<f32>(&ds);

    for variant in [Variant::Z, Variant::M] {
        for &threads in &args.threads {
            let pool = ThreadPool::new(threads);
            let cells = param_sweep(
                &prep,
                variant,
                &VVECS,
                &IMGBS,
                &VXGS,
                &pool,
                args.warmup,
                args.iters,
            );
            let mut t = Table::new(vec!["S_VVec \\ S_ImgB", "8", "16", "32", "64"]);
            for (vi, &s_vvec) in VVECS.iter().enumerate() {
                let mut row = vec![s_vvec.to_string()];
                for bi in 0..IMGBS.len() {
                    let c = &cells[vi * IMGBS.len() + bi];
                    row.push(format!("{} ({})", f(c.gflops, 2), c.best_vxg));
                }
                t.add_row(row);
            }
            emit(
                &format!("Fig. 9 analog: {variant} best GFLOP/s (best S_VxG), {threads} thread(s)"),
                &t,
                &args.csv,
            );
        }
    }
}
