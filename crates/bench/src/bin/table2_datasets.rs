//! E-T2: regenerate the paper's Table II (dataset information).
//!
//! Prints, per dataset: geometry parameters, nnz, x/y sizes — plus the
//! structural sanity columns the paper's properties imply (nnz per
//! column per view ≈ 2.6; P3 coefficient of variation of column
//! densities).
//!
//! Run: `cargo run --release -p cscv-bench --bin table2_datasets`
//! (`--paper-scale` regenerates the original sizes — tens of GB).

use cscv_bench::{emit, BenchArgs};
use cscv_harness::suite::prepare;
use cscv_harness::table::{f, Table};
use cscv_sparse::stats::MatrixProfile;

fn main() {
    let _trace = cscv_bench::trace_report();
    let args = BenchArgs::parse();
    let mut table = Table::new(vec![
        "dataset",
        "img size",
        "num bin",
        "num view",
        "delta angle",
        "nnz",
        "x size",
        "y size",
        "nnz/col/view",
        "col-density CV (P3)",
    ]);
    for ds in &args.datasets {
        let prep = prepare::<f32>(ds);
        let profile = MatrixProfile::from_csr(&prep.csr);
        table.add_row(vec![
            ds.name.to_string(),
            format!("{0}x{0}", ds.img),
            ds.n_bins.to_string(),
            ds.n_views.to_string(),
            format!("{}°", ds.delta_angle_deg),
            profile.nnz.to_string(),
            ds.x_size().to_string(),
            ds.y_size().to_string(),
            f(
                profile.nnz as f64 / (ds.x_size() as f64 * ds.n_views as f64),
                2,
            ),
            f(profile.col_stats.cv, 3),
        ]);
    }
    emit("Table II analog: CT matrix datasets", &table, &args.csv);
}
