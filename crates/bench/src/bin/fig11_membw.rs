//! E-F11: memory requirements, best performance and effective-bandwidth
//! usage ratio — paper Fig. 11.
//!
//! Measures the machine's peak read bandwidth (the Intel MLC analog),
//! then reports per implementation on one dataset: `M_Rit`, best
//! GFLOP/s at the top thread count, achieved bandwidth and
//! `R_EM = M_Rit/(T·M_PBw)`. Default dataset ct256 (scaled analog of
//! the paper's 1024² study).
//!
//! Run: `cargo run --release -p cscv-bench --bin fig11_membw --
//! [--dataset NAME] [--iters N] [--csv PATH]`

use cscv_bench::{banner, emit, BenchArgs};
use cscv_harness::membw;
use cscv_harness::suite::{executor_builders, prepare};
use cscv_harness::table::{f, mib, Table};
use cscv_harness::timing::measure_spmv;
use cscv_simd::MaskExpand;
use cscv_sparse::{Scalar, ThreadPool};

fn run_precision<T: Scalar + MaskExpand>(
    args: &BenchArgs,
    pool: &ThreadPool,
    peak: f64,
    table: &mut Table,
) {
    let ds = args.datasets[0];
    let prep = prepare::<T>(&ds);
    let mut y = vec![T::ZERO; prep.csr.n_rows()];
    for (name, builder) in executor_builders::<T>() {
        let exec = builder(&prep, pool.n_threads());
        let m = measure_spmv(
            exec.as_ref(),
            &prep.x,
            &mut y,
            pool,
            args.warmup,
            args.iters,
        );
        table.add_row(vec![
            T::NAME.to_string(),
            name.to_string(),
            mib(m.mem_requirement),
            f(m.gflops, 2),
            f(m.eff_bandwidth_gbs, 2),
            format!("{:.1}%", m.r_em(peak) * 100.0),
            f(m.r_nnze, 3),
        ]);
    }
}

fn main() {
    let _trace = cscv_bench::trace_report();
    let mut args = BenchArgs::parse();
    if args.datasets.len() > 1 {
        args.datasets.retain(|d| d.name == "ct256");
    }
    banner();
    let pool = ThreadPool::new(args.max_threads());
    println!("measuring peak read bandwidth (STREAM-style, MLC analog)…");
    let bw = membw::measure_default(&pool);
    println!(
        "peak read {:.1} GB/s, triad {:.1} GB/s, dataset {}, {} threads",
        bw.read_gbs(),
        bw.triad_gbs(),
        args.datasets[0].name,
        pool.n_threads()
    );

    let mut table = Table::new(vec![
        "precision",
        "implementation",
        "M_Rit (MiB)",
        "GFLOP/s",
        "eff BW (GB/s)",
        "R_EM",
        "R_nnzE",
    ]);
    run_precision::<f32>(&args, &pool, bw.read_bytes_per_sec, &mut table);
    run_precision::<f64>(&args, &pool, bw.read_bytes_per_sec, &mut table);
    emit(
        "Fig. 11 analog: memory requirements, performance and bandwidth usage",
        &table,
        &args.csv,
    );
}
