//! E-X3: the §III trade-off, quantified (our addition).
//!
//! The paper frames vectorized CSC-style SpMV as a tension between
//! *permutation instruction consistency* and *zero element access rate*
//! but never quantifies either. This driver measures both across tile
//! sizes and contrasts CSCV with the naive vectorized CSC of Alg. 2.
//!
//! Run: `cargo run --release -p cscv-bench --bin analysis_metrics --
//! [--dataset NAME]`

use cscv_bench::{emit, BenchArgs};
use cscv_core::analysis::{csc_alg2_permutation_cost, cscv_permutation_cost, zero_access_rate};
use cscv_core::{build, CscvParams, Variant};
use cscv_harness::suite::prepare;
use cscv_harness::table::{f, Table};

fn main() {
    let _trace = cscv_bench::trace_report();
    let mut args = BenchArgs::parse();
    if args.datasets.len() > 1 {
        args.datasets.retain(|d| d.name == "ct256");
    }
    let ds = args.datasets[0];
    println!("dataset: {}", ds.name);
    let prep = prepare::<f32>(&ds);

    let mut t = Table::new(vec![
        "scheme",
        "S_ImgB",
        "permuted elems/nnz",
        "zero access rate",
    ]);
    let alg2 = csc_alg2_permutation_cost(prep.csr.nnz(), 8);
    t.add_row(vec![
        "CSC Alg.2 (model)".to_string(),
        "-".to_string(),
        f(alg2.per_nonzero, 3),
        "0.000".to_string(),
    ]);
    for s_imgb in [8usize, 16, 32, 64] {
        let m = build(
            &prep.csc,
            prep.layout,
            prep.img,
            CscvParams::new(s_imgb, 8, 2),
            Variant::Z,
        );
        let cost = cscv_permutation_cost(&m);
        t.add_row(vec![
            "CSCV".to_string(),
            s_imgb.to_string(),
            f(cost.per_nonzero, 3),
            f(zero_access_rate(&m), 3),
        ]);
    }
    emit(
        "§III metrics: permutation consistency vs zero access rate",
        &t,
        &args.csv,
    );
    println!("reading: CSCV trades a bounded zero-access rate for a ~10-50x");
    println!("reduction in y-permutation traffic; larger tiles amortize further.");
}
