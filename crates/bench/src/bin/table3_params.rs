//! E-T3: parameter combinations for the parallel tests — paper Table
//! III.
//!
//! Applies the paper's selection rule ("best single-threaded
//! performance for CSCV-Z, best multi-threaded performance for CSCV-M")
//! over the Fig. 9 sweep and prints the chosen combination plus its
//! R_nnzE for both precisions.
//!
//! Run: `cargo run --release -p cscv-bench --bin table3_params --
//! [--dataset ct256] [--iters N]`

use cscv_bench::sweep::{best_cell, param_sweep};
use cscv_bench::{banner, emit, BenchArgs};
use cscv_core::Variant;
use cscv_harness::suite::{prepare, PreparedDataset};
use cscv_harness::table::{f, Table};
use cscv_simd::MaskExpand;
use cscv_sparse::{Scalar, ThreadPool};

const VVECS: [usize; 3] = [4, 8, 16];
const IMGBS: [usize; 4] = [8, 16, 32, 64];
const VXGS: [usize; 5] = [1, 2, 4, 8, 16];

fn select<T: Scalar + MaskExpand>(
    prep: &PreparedDataset<T>,
    variant: Variant,
    pool: &ThreadPool,
    warmup: usize,
    iters: usize,
) -> (usize, usize, usize, f64) {
    let cells = param_sweep(prep, variant, &VVECS, &IMGBS, &VXGS, pool, warmup, iters);
    let b = best_cell(&cells);
    (b.s_imgb, b.s_vvec, b.best_vxg, b.r_nnze)
}

fn main() {
    let _trace = cscv_bench::trace_report();
    let mut args = BenchArgs::parse();
    if args.datasets.len() > 1 {
        args.datasets.retain(|d| d.name == "ct256");
    }
    let ds = args.datasets[0];
    banner();
    println!("dataset: {} — selection per paper §V-D", ds.name);
    let single = ThreadPool::new(1);
    let multi = ThreadPool::new(args.max_threads());

    let mut t = Table::new(vec![
        "implementation",
        "precision",
        "S_ImgB",
        "S_VVec",
        "S_VxG",
        "R_nnzE",
    ]);
    {
        let prep = prepare::<f32>(&ds);
        let (ib, vv, vg, r) = select(&prep, Variant::Z, &single, args.warmup, args.iters);
        t.add_row(vec![
            "CSCV-Z".into(),
            "single".into(),
            ib.to_string(),
            vv.to_string(),
            vg.to_string(),
            f(r, 3),
        ]);
        let (ib, vv, vg, r) = select(&prep, Variant::M, &multi, args.warmup, args.iters);
        t.add_row(vec![
            "CSCV-M".into(),
            "single".into(),
            ib.to_string(),
            vv.to_string(),
            vg.to_string(),
            f(r, 3),
        ]);
    }
    {
        let prep = prepare::<f64>(&ds);
        let (ib, vv, vg, r) = select(&prep, Variant::Z, &single, args.warmup, args.iters);
        t.add_row(vec![
            "CSCV-Z".into(),
            "double".into(),
            ib.to_string(),
            vv.to_string(),
            vg.to_string(),
            f(r, 3),
        ]);
        let (ib, vv, vg, r) = select(&prep, Variant::M, &multi, args.warmup, args.iters);
        t.add_row(vec![
            "CSCV-M".into(),
            "double".into(),
            ib.to_string(),
            vv.to_string(),
            vg.to_string(),
            f(r, 3),
        ]);
    }
    emit(
        "Table III analog: selected CSCV parameter combinations",
        &t,
        &args.csv,
    );
    println!(
        "paper (SKL): Z single/double 16/16/2 (R 0.417); M single 32/8/4 (R 0.365), double 16/16/2"
    );
}
