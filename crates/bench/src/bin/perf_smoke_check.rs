//! CI perf-smoke regression gate.
//!
//! Reads the NDJSON manifests the harness writes during a
//! `run_experiments.sh --smoke` pass (one file per driver, see
//! `cscv_harness::manifest`), aggregates the **best** GFLOP/s per
//! `(driver, executor, threads, k)` key, and compares each key against a
//! checked-in baseline. A kernel that regresses more than the tolerance
//! (default 25%) fails the gate; new keys (not in the baseline) and
//! vanished keys are reported but do not fail, so adding or renaming
//! drivers never wedges CI.
//!
//! Smoke iteration counts are tiny, so the threshold is deliberately
//! loose: this catches "kernel fell off a cliff" (lost vectorization,
//! accidental serialization), not percent-level drift.
//!
//! ```text
//! perf_smoke_check --manifests bench_results/smoke/manifests \
//!                  [--baseline bench_results/smoke/baseline.json] \
//!                  [--tolerance 0.25] [--write-baseline]
//! ```

use cscv_trace::json::Json;
use std::collections::BTreeMap;
use std::path::PathBuf;

struct Args {
    manifests: PathBuf,
    baseline: PathBuf,
    tolerance: f64,
    write_baseline: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        manifests: PathBuf::from("bench_results/smoke/manifests"),
        baseline: PathBuf::from("bench_results/smoke/baseline.json"),
        tolerance: 0.25,
        write_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--manifests" => a.manifests = PathBuf::from(it.next().expect("--manifests DIR")),
            "--baseline" => a.baseline = PathBuf::from(it.next().expect("--baseline FILE")),
            "--tolerance" => {
                a.tolerance = it
                    .next()
                    .expect("--tolerance F")
                    .parse()
                    .expect("tolerance is a fraction, e.g. 0.25")
            }
            "--write-baseline" => a.write_baseline = true,
            "--help" | "-h" => {
                eprintln!(
                    "flags: [--manifests DIR] [--baseline FILE] [--tolerance F] [--write-baseline]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    a
}

/// Best measured GFLOP/s per `(driver, executor, threads, k)` key.
fn collect(manifests: &PathBuf) -> BTreeMap<String, f64> {
    let mut best: BTreeMap<String, f64> = BTreeMap::new();
    let entries = std::fs::read_dir(manifests)
        .unwrap_or_else(|e| panic!("cannot read manifest dir {}: {e}", manifests.display()));
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("ndjson") {
            continue;
        }
        let body = std::fs::read_to_string(&path).expect("read manifest");
        for (lineno, line) in body.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = Json::parse(line)
                .unwrap_or_else(|e| panic!("{}:{}: bad JSON: {e}", path.display(), lineno + 1));
            let (Some(driver), Some(name), Some(threads), Some(k), Some(gflops)) = (
                v.get("driver").and_then(Json::as_str),
                v.get("name").and_then(Json::as_str),
                v.get("threads").and_then(Json::as_f64),
                v.get("k").and_then(Json::as_f64),
                v.get("gflops").and_then(Json::as_f64),
            ) else {
                continue;
            };
            if !gflops.is_finite() || gflops <= 0.0 {
                continue;
            }
            let key = format!("{driver}/{name}/t{threads}/k{k}");
            let slot = best.entry(key).or_insert(0.0);
            if gflops > *slot {
                *slot = gflops;
            }
        }
    }
    best
}

fn load_baseline(path: &PathBuf) -> BTreeMap<String, f64> {
    let body = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", path.display()));
    let v = Json::parse(&body).expect("baseline parses");
    v.get("kernels")
        .and_then(Json::as_obj)
        .expect("baseline has a \"kernels\" object")
        .iter()
        .filter_map(|(k, v)| v.as_f64().map(|g| (k.clone(), g)))
        .collect()
}

fn write_baseline(path: &PathBuf, current: &BTreeMap<String, f64>, tolerance: f64) {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create baseline dir");
    }
    // Hand-formatted with one kernel per line so baseline diffs review
    // cleanly; keys go through the Json writer for correct escaping.
    let comment = "Perf-smoke baseline: best GFLOP/s per driver/executor/threads/k from \
                   `run_experiments.sh --smoke`. Regenerate with `ci.sh --update-perf-baseline`.";
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n \"comment\": {},\n",
        Json::from(comment).to_string()
    ));
    out.push_str(&format!(" \"tolerance\": {tolerance},\n"));
    out.push_str(" \"kernels\": {\n");
    for (i, (k, &g)) in current.iter().enumerate() {
        let sep = if i + 1 < current.len() { "," } else { "" };
        out.push_str(&format!(
            "  {}: {:.4}{sep}\n",
            Json::from(k.as_str()).to_string(),
            g
        ));
    }
    out.push_str(" }\n}\n");
    std::fs::write(path, out).expect("write baseline");
    println!(
        "baseline written to {} ({} kernels)",
        path.display(),
        current.len()
    );
}

fn main() {
    let args = parse_args();
    let current = collect(&args.manifests);
    assert!(
        !current.is_empty(),
        "no measurements found under {} — did the smoke run export CSCV_MANIFEST_DIR?",
        args.manifests.display()
    );

    if args.write_baseline {
        write_baseline(&args.baseline, &current, args.tolerance);
        return;
    }

    let baseline = load_baseline(&args.baseline);
    let mut regressions = Vec::new();
    let mut checked = 0usize;
    for (key, &base) in &baseline {
        match current.get(key) {
            Some(&cur) => {
                checked += 1;
                let floor = base * (1.0 - args.tolerance);
                let delta = (cur / base - 1.0) * 100.0;
                if cur < floor {
                    regressions.push(format!(
                        "  {key}: {cur:.4} GFLOP/s vs baseline {base:.4} ({delta:+.1}%)"
                    ));
                } else if delta < 0.0 {
                    println!("  ok   {key}: {cur:.4} vs {base:.4} ({delta:+.1}%)");
                } else {
                    println!("  ok   {key}: {cur:.4} vs {base:.4} (+{delta:.1}%)");
                }
            }
            None => println!("  warn {key}: in baseline but not measured this run"),
        }
    }
    for key in current.keys() {
        if !baseline.contains_key(key) {
            println!("  new  {key}: not in baseline (run --write-baseline to adopt)");
        }
    }

    println!(
        "perf-smoke: {checked}/{} baseline kernels checked, tolerance {:.0}%",
        baseline.len(),
        args.tolerance * 100.0
    );
    if !regressions.is_empty() {
        eprintln!(
            "perf-smoke REGRESSIONS (> {:.0}% below baseline):",
            args.tolerance * 100.0
        );
        for r in &regressions {
            eprintln!("{r}");
        }
        std::process::exit(1);
    }
    println!("PERF_SMOKE_OK");
}
