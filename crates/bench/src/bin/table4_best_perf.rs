//! E-T4: best performance of each implementation over all matrices —
//! paper Table IV.
//!
//! For each precision and implementation, runs every dataset at the top
//! thread count and reports average and maximum GFLOP/s (the paper's
//! avg./max. columns), plus the speedup of the best implementation over
//! the MKL-CSR analog (the headline claim).
//!
//! Run: `cargo run --release -p cscv-bench --bin table4_best_perf --
//! [--threads 1,4] [--iters N] [--csv PATH]`

use cscv_bench::{banner, emit, BenchArgs};
use cscv_harness::suite::{executor_builders, prepare};
use cscv_harness::table::{f, Table};
use cscv_harness::timing::measure_spmv;
use cscv_simd::MaskExpand;
use cscv_sparse::{Scalar, ThreadPool};

fn run_precision<T: Scalar + MaskExpand>(
    args: &BenchArgs,
    pool: &ThreadPool,
    table: &mut Table,
) -> Vec<(String, f64, f64)> {
    // Collect per-impl GFLOP/s across datasets.
    let names: Vec<&'static str> = executor_builders::<T>().iter().map(|(n, _)| *n).collect();
    let mut perf: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
    for ds in &args.datasets {
        let prep = prepare::<T>(ds);
        let mut y = vec![T::ZERO; prep.csr.n_rows()];
        for (k, (_, builder)) in executor_builders::<T>().into_iter().enumerate() {
            let exec = builder(&prep, pool.n_threads());
            let m = measure_spmv(
                exec.as_ref(),
                &prep.x,
                &mut y,
                pool,
                args.warmup,
                args.iters,
            );
            perf[k].push(m.gflops);
        }
    }
    let mut rows = Vec::new();
    for (k, name) in names.iter().enumerate() {
        let avg = perf[k].iter().sum::<f64>() / perf[k].len() as f64;
        let max = perf[k].iter().cloned().fold(0.0f64, f64::max);
        rows.push((name.to_string(), avg, max));
    }
    // Mark best (**) and second (*) per the paper's bold/italic.
    let mut order: Vec<usize> = (0..rows.len()).collect();
    order.sort_by(|&a, &b| rows[b].1.partial_cmp(&rows[a].1).unwrap());
    for (rank, &k) in order.iter().enumerate() {
        let mark = match rank {
            0 => " **",
            1 => " *",
            _ => "",
        };
        table.add_row(vec![
            T::NAME.to_string(),
            format!("{}{}", rows[k].0, mark),
            f(rows[k].1, 2),
            f(rows[k].2, 2),
        ]);
    }
    rows
}

fn speedup_summary(rows: &[(String, f64, f64)], precision: &str) {
    let get = |name: &str| rows.iter().find(|r| r.0 == name);
    let (Some(m), Some(csr)) = (get("CSCV-M"), get("MKL-CSR(analog)")) else {
        return;
    };
    let mut others: Vec<&(String, f64, f64)> =
        rows.iter().filter(|r| !r.0.starts_with("CSCV")).collect();
    others.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    if let Some(second) = others.first() {
        println!(
            "{precision}: CSCV-M avg speedup vs MKL-CSR(analog) = {:.2}x, vs best non-CSCV ({}) = {:.2}x",
            m.1 / csr.1,
            second.0,
            m.1 / second.1
        );
    }
}

fn main() {
    let _trace = cscv_bench::trace_report();
    let args = BenchArgs::parse();
    banner();
    let pool = ThreadPool::new(args.max_threads());
    println!(
        "datasets: {:?}, {} threads, {} iters",
        args.datasets.iter().map(|d| d.name).collect::<Vec<_>>(),
        pool.n_threads(),
        args.iters
    );

    let mut table = Table::new(vec![
        "precision",
        "implementation",
        "avg GFLOP/s",
        "max GFLOP/s",
    ]);
    let rows32 = run_precision::<f32>(&args, &pool, &mut table);
    let rows64 = run_precision::<f64>(&args, &pool, &mut table);
    emit(
        "Table IV analog: best performance per implementation (** best, * second)",
        &table,
        &args.csv,
    );
    speedup_summary(&rows32, "single");
    speedup_summary(&rows64, "double");
    println!(
        "paper (SKL single): CSCV-M 85.5 avg / 88.0 max; second SPC5 61.5 avg; MKL-CSR 31.2 avg"
    );
}
