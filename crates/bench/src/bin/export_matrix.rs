//! Tooling: export a CT system matrix as MatrixMarket (`.mtx`).
//!
//! Lets external SpMV implementations (MKL examples, SciPy, SuiteSparse
//! tooling) run on exactly the matrices this suite benchmarks — and the
//! reverse path (`cscv_sparse::io::read_matrix_market`) feeds foreign
//! matrices to the CSCV builder.
//!
//! Run: `cargo run --release -p cscv-bench --bin export_matrix --
//! --dataset ct128 [--out ct128.mtx]`

use cscv_ct::datasets;
use cscv_ct::system::SystemMatrix;
use cscv_sparse::io::write_matrix_market;

fn main() {
    let _trace = cscv_bench::trace_report();
    let mut dataset = "ct128".to_string();
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--dataset" => dataset = args.next().expect("--dataset NAME"),
            "--out" => out = Some(args.next().expect("--out PATH")),
            other => panic!("unknown flag {other}"),
        }
    }
    let ds = datasets::default_suite()
        .into_iter()
        .chain(datasets::paper_suite())
        .chain([datasets::tiny(), datasets::recon_dataset()])
        .find(|d| d.name == dataset)
        .unwrap_or_else(|| panic!("no dataset named {dataset}"));
    let out = out.unwrap_or_else(|| format!("{dataset}.mtx"));

    eprintln!("assembling {} ({}x{} image)…", ds.name, ds.img, ds.img);
    let ct = ds.geometry();
    let csc = SystemMatrix::assemble_csc::<f64>(&ct);
    eprintln!(
        "matrix {} x {}, {} nnz → {}",
        csc.n_rows(),
        csc.n_cols(),
        csc.nnz(),
        out
    );
    write_matrix_market(&out, &csc.to_coo()).expect("write mtx");
    eprintln!("done");
}
