//! E-X3: batched multi-RHS SpMM — amortizing matrix traffic across
//! right-hand sides.
//!
//! Multi-slice reconstruction applies one system matrix to a stack of
//! sinograms/images; `spmv_multi` streams the matrix once per
//! register-tile chunk instead of once per RHS. This driver sweeps the
//! batch width `k` for the batched implementations (CSCV-Z, CSCV-M and
//! the tuned CSR/CSC baselines) and reports, per `(dataset, precision,
//! executor, k)`:
//!
//! * GFLOP/s of the batched product (`2·k·nnz/T`);
//! * measured speedup over `k` independent single-RHS SpMVs;
//! * the memory-model prediction `k·M_Rit(1)/M_Rit(k)` — the
//!   bandwidth-bound ceiling of the amortization.
//!
//! Run: `cargo run --release -p cscv-bench --bin batched_spmm --
//! [--dataset NAME] [--threads a,b,c] [--iters N] [--k a,b,c] [--csv PATH]`

use cscv_bench::{banner, emit, BenchArgs};
use cscv_harness::suite::{executor_builders, prepare, PreparedDataset};
use cscv_harness::table::{f, Table};
use cscv_harness::timing::{measure_spmm, measure_spmv, modeled_batch_speedup};
use cscv_simd::MaskExpand;
use cscv_sparse::{Scalar, SpmvExecutor, ThreadPool};

/// Implementations with a tuned `spmv_multi` (the rest fall back to the
/// loop-of-singles default and would only measure noise).
const BATCHED: &[&str] = &["CSCV-Z", "CSCV-M", "MKL-CSR(analog)", "MKL-CSC(analog)"];

fn batch_input<T: Scalar>(prep: &PreparedDataset<T>, k: usize) -> Vec<T> {
    // RHS 0 is the phantom; the rest are deterministic reshuffles of it
    // so every slice has the same value distribution but distinct data.
    let n = prep.x.len();
    let mut x = vec![T::ZERO; k * n];
    for kk in 0..k {
        for j in 0..n {
            x[kk * n + j] = prep.x[(j + kk * 257) % n];
        }
    }
    x
}

fn run_precision<T: Scalar + MaskExpand>(args: &BenchArgs, ks: &[usize], table: &mut Table) {
    for ds in &args.datasets {
        let prep = prepare::<T>(ds);
        for &threads in &args.threads {
            let pool = ThreadPool::new(threads);
            for (name, builder) in executor_builders::<T>() {
                if !BATCHED.contains(&name) {
                    continue;
                }
                let exec = builder(&prep, threads);
                let exec: &dyn SpmvExecutor<T> = exec.as_ref();
                let mut y1 = vec![T::ZERO; exec.n_rows()];
                let mut single = f64::INFINITY;
                // Interleave the k sweep over several rounds, keeping the
                // per-k minimum across rounds: slow drift on a shared
                // machine (CPU steal) then hits every batch width alike
                // instead of whichever k was being timed at that moment.
                let rounds = 4usize;
                let iters = args.iters.div_ceil(rounds).max(5);
                let mut best: Vec<f64> = vec![f64::INFINITY; ks.len()];
                let xs_packed: Vec<Vec<T>> = ks.iter().map(|&k| batch_input(&prep, k)).collect();
                let mut ys: Vec<Vec<T>> = ks
                    .iter()
                    .map(|&k| vec![T::ZERO; k * exec.n_rows()])
                    .collect();
                for round in 0..rounds {
                    let warmup = if round == 0 { args.warmup } else { 0 };
                    let s = measure_spmv(exec, &prep.x, &mut y1, &pool, warmup, iters);
                    single = single.min(s.secs_min);
                    for (ki, &k) in ks.iter().enumerate() {
                        let m = measure_spmm(
                            exec,
                            &xs_packed[ki],
                            k,
                            &mut ys[ki],
                            &pool,
                            warmup,
                            iters,
                        );
                        best[ki] = best[ki].min(m.secs_min);
                    }
                }
                for (ki, &k) in ks.iter().enumerate() {
                    let gflops = k as f64 * exec.flops() / best[ki] / 1e9;
                    table.add_row(vec![
                        ds.name.to_string(),
                        T::NAME.to_string(),
                        name.to_string(),
                        threads.to_string(),
                        k.to_string(),
                        f(gflops, 3),
                        f(k as f64 * single / best[ki], 2),
                        f(modeled_batch_speedup(exec, k), 2),
                    ]);
                }
            }
        }
    }
}

fn main() {
    let _trace = cscv_bench::trace_report();
    let mut args_iter: Vec<String> = std::env::args().skip(1).collect();
    // Local flag: --k a,b,c (batch widths), default 1,2,4,8,16.
    let mut ks: Vec<usize> = vec![1, 2, 4, 8, 16];
    if let Some(pos) = args_iter.iter().position(|a| a == "--k") {
        let spec = args_iter.get(pos + 1).expect("--k a,b,c").clone();
        ks = spec
            .split(',')
            .map(|s| s.parse().expect("batch width"))
            .collect();
        args_iter.drain(pos..pos + 2);
    }
    let mut args = BenchArgs::from_iter(args_iter);
    args.datasets
        .retain(|d| d.name == "ct128" || d.name == "ct256");
    banner();
    println!("batch widths: {ks:?}");

    let mut table = Table::new(vec![
        "dataset",
        "precision",
        "implementation",
        "threads",
        "k",
        "GFLOP/s",
        "speedup vs k singles",
        "modeled (mem model)",
    ]);
    run_precision::<f32>(&args, &ks, &mut table);
    run_precision::<f64>(&args, &ks, &mut table);
    emit(
        "E-X3: batched multi-RHS SpMM — measured vs memory-model speedup",
        &table,
        &args.csv,
    );
}
