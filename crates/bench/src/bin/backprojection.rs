//! E-X2: back-projection `x = Aᵀy` — the paper's **future work**,
//! implemented and measured.
//!
//! The conclusion of the paper promises "we will implement CSCV on
//! x = Aᵀy in CT backward projection". This driver benchmarks exactly
//! that: the CSCV transpose kernels (same block structure, gather +
//! lane-dot + per-column horizontal sum) against the standard options —
//! a tuned CSR executor built on an explicitly transposed matrix, and
//! the gather-form CSC transpose.
//!
//! Run: `cargo run --release -p cscv-bench --bin backprojection --
//! [--dataset NAME] [--threads 1,4] [--iters N]`

use cscv_bench::{banner, emit, BenchArgs};
use cscv_core::{build, CscvExec, CscvParams, Variant};
use cscv_harness::suite::prepare;
use cscv_harness::table::{f, Table};
use cscv_sparse::formats::CsrExec;
use cscv_sparse::{SpmvExecutor, ThreadPool};
use std::time::Instant;

/// Measure a transpose-product closure: min time over `iters`.
fn measure(mut run: impl FnMut(), warmup: usize, iters: usize, nnz: usize) -> (f64, f64) {
    for _ in 0..warmup {
        run();
    }
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, 2.0 * nnz as f64 / best / 1e9)
}

fn main() {
    let _trace = cscv_bench::trace_report();
    let args = BenchArgs::parse();
    banner();
    let mut table = Table::new(vec![
        "dataset",
        "implementation",
        "threads",
        "GFLOP/s",
        "min time (ms)",
    ]);
    for ds in &args.datasets {
        let prep = prepare::<f32>(ds);
        let nnz = prep.csr.nnz();
        let y: Vec<f32> = (0..prep.csr.n_rows())
            .map(|i| ((i % 17) as f32) * 0.25)
            .collect();
        let mut x = vec![0.0f32; prep.csr.n_cols()];
        // Reference for correctness.
        let mut x_ref = vec![0.0f32; prep.csr.n_cols()];
        prep.csc.spmv_transpose_serial(&y, &mut x_ref);

        let cscv_z = CscvExec::new(build(
            &prep.csc,
            prep.layout,
            prep.img,
            CscvParams::default_z(),
            Variant::Z,
        ));
        let cscv_m = CscvExec::new(build(
            &prep.csc,
            prep.layout,
            prep.img,
            CscvParams::default_m(),
            Variant::M,
        ));
        let at_csr = CsrExec::new(prep.csr.transpose());

        for &threads in &args.threads {
            let pool = ThreadPool::new(threads);
            // Correctness gate per thread count.
            cscv_m.spmv_transpose(&y, &mut x, &pool);
            let err = cscv_sparse::dense::max_rel_err(&x, &x_ref);
            assert!(err < 1e-3, "transpose err {err}");

            let mut record = |name: &str, secs: f64, gflops: f64| {
                table.add_row(vec![
                    ds.name.to_string(),
                    name.to_string(),
                    threads.to_string(),
                    f(gflops, 2),
                    f(secs * 1e3, 3),
                ]);
            };
            let (s, g) = measure(
                || cscv_z.spmv_transpose(&y, &mut x, &pool),
                args.warmup,
                args.iters,
                nnz,
            );
            record("CSCV-Z-T", s, g);
            let (s, g) = measure(
                || cscv_m.spmv_transpose(&y, &mut x, &pool),
                args.warmup,
                args.iters,
                nnz,
            );
            record("CSCV-M-T", s, g);
            let (s, g) = measure(
                || at_csr.spmv(&y, &mut x, &pool),
                args.warmup,
                args.iters,
                nnz,
            );
            record("CSR(At) MKL-analog", s, g);
            let (s, g) = measure(
                || prep.csc.spmv_transpose_serial(&y, &mut x),
                args.warmup,
                args.iters,
                nnz,
            );
            record("CSC gather (serial)", s, g);
        }
    }
    emit(
        "Future-work experiment: back-projection x = Aᵀy",
        &table,
        &args.csv,
    );
}
