//! E-T1: the paper's Table I sample matrix block, materialized.
//!
//! Builds the 25×25-image / 38-bin / 4°-step geometry, converts it to
//! CSCV with `S_VVec = 8`, `S_VxG = 2`, tile side 5, and prints the
//! structure of the block at image rows/cols \[5,9\] under the view group
//! starting at 32° — the exact object Figs. 3 and 6 illustrate: its
//! reference curve, CSCVE count, padding, and the (offset, count) VxG
//! list before/after ordering.
//!
//! Run: `cargo run --release -p cscv-bench --bin table1_sample_block`

use cscv_core::layout::{tiles, ImageShape};
use cscv_core::{build, CscvParams, SinoLayout, Variant};
use cscv_ct::datasets::table1_sample;
use cscv_ct::system::SystemMatrix;
use cscv_harness::table::Table;

fn main() {
    let _trace = cscv_bench::trace_report();
    let ds = table1_sample();
    let ct = ds.geometry();
    let csc = SystemMatrix::assemble_csc::<f32>(&ct);
    let layout = SinoLayout {
        n_views: ds.n_views,
        n_bins: ds.n_bins,
    };
    let img = ImageShape { nx: 25, ny: 25 };
    let params = CscvParams::new(5, 8, 2);
    let m = build(&csc, layout, img, params, Variant::Z);
    m.validate();

    println!("Table I sample block configuration:");
    println!("  full image size   : 25 x 25");
    println!("  number of bins    : {}", ds.n_bins);
    println!("  delta angle       : {}°", ds.delta_angle_deg);
    println!("  image block range : rows [5,9], cols [5,9]");
    println!("  block start angle : 32° (view group 1: views 8..16)");
    println!("  S_VVec = 8, S_VxG = 2, tile side = 5");

    // Locate the block: view group 1 (views 8..16 = 32°..), tile with
    // x0 = 5, y0 = 5 (tile index 1 + 1*5 within the 5x5 tile grid).
    let tile_list = tiles(&img, 5);
    let tile_idx = tile_list
        .iter()
        .position(|t| t.x0 == 5 && t.y0 == 5)
        .expect("5x5 tiling contains the [5,9] tile");
    let group = 1usize; // views 8..16 start at 8*4° = 32°
    let info = &m.groups[group];
    // Blocks in a group appear in tile order, but empty tiles are
    // skipped; count non-empty tiles before ours.
    // All tiles of this geometry are non-empty, so index directly.
    let found = info.block_range.clone().nth(tile_idx);
    let blk = &m.blocks[found.expect("block exists")];

    println!("\nBlock structure:");
    println!("  nonzeros          : {}", blk.nnz);
    println!("  lane slots        : {}", blk.lane_slots);
    println!(
        "  zero padding      : {} (block R_nnzE = {:.3})",
        blk.lane_slots - blk.nnz,
        blk.lane_slots as f64 / blk.nnz as f64 - 1.0
    );
    println!("  ỹ length          : {}", blk.ytil_len());
    println!("  VxGs              : {}", blk.n_vxgs());

    let mut t = Table::new(vec!["VxG", "offset (q/W)", "count", "cols"]);
    for i in 0..blk.n_vxgs() {
        let cols = &blk.cols[i * 2..(i + 1) * 2];
        t.add_row(vec![
            i.to_string(),
            (blk.vxg_q[i] / 8).to_string(),
            blk.vxg_count[i].to_string(),
            format!("{},{}", cols[0], cols[1]),
        ]);
    }
    println!(
        "\nVxG list (sorted by count, as in Fig. 6b):\n{}",
        t.render()
    );

    println!("whole-matrix stats at these parameters:");
    println!("  R_nnzE            : {:.3}", m.stats.r_nnze());
    println!("  CSCVEs            : {}", m.stats.n_cscve);
    println!("  VxGs              : {}", m.stats.n_vxg);
    println!("  blocks            : {}", m.stats.n_blocks);
}
