#!/bin/bash
# Offline CI gate: formatting, lints, release build, docs, tests (both
# feature modes), and optionally the perf-smoke regression gate.
# Requires no network access — the workspace has zero external crates in
# every feature set (see DESIGN.md "Dependencies"), so a vendored/offline
# toolchain is all CI needs.
#
#   ci.sh                        core gate (fmt, clippy, xtask lint + audit,
#                                  fuzz corpus replay, build, docs, tests)
#   ci.sh --perf-smoke           + run the smoke benches and fail on >25%
#                                  GFLOP/s regressions vs the checked-in
#                                  bench_results/smoke/baseline.json
#   ci.sh --update-perf-baseline + run the smoke benches and rewrite the
#                                  baseline from this machine's numbers
#   ci.sh --miri                 + run the Miri-compatible test subset (the
#                                  unsafe-heavy crates' lib tests) under
#                                  `cargo miri`; skipped with a notice when
#                                  the miri component is not installed
#   ci.sh --fuzz                 + run the structure-aware differential
#                                  fuzzer for 5000 fixed-seed iterations
#                                  (the nightly CI job's workload)
#   ci.sh --shard-smoke          + run the sharded multi-process
#                                  reconstruction gate (`cscv-xtask shard
#                                  --workers 1,2,4`): workers=1 must be
#                                  byte-identical to single-process,
#                                  2 and 4 within 1e-10 per residual entry
#   ci.sh --sanitizers           + run the curated concurrency subset
#                                  (cscv-sparse + cscv-core lib tests)
#                                  under ThreadSanitizer and
#                                  AddressSanitizer with the vetted
#                                  suppressions file; deterministic
#                                  (CSCV_NUMA=0, fixed seeds), needs a
#                                  nightly toolchain with rust-src
set -euo pipefail
cd "$(dirname "$0")"

# Flag contract (covered by crates/xtask/tests/ci_contract.rs): every
# recognized flag sets its stage; anything else prints the offender and
# exits 2 before any toolchain work starts.
PERF_SMOKE=0
UPDATE_BASELINE=0
MIRI=0
FUZZ=0
SHARD_SMOKE=0
SANITIZERS=0
for arg in "$@"; do
    case "$arg" in
        --perf-smoke) PERF_SMOKE=1 ;;
        --update-perf-baseline) PERF_SMOKE=1; UPDATE_BASELINE=1 ;;
        --miri) MIRI=1 ;;
        --fuzz) FUZZ=1 ;;
        --shard-smoke) SHARD_SMOKE=1 ;;
        --sanitizers) SANITIZERS=1 ;;
        *) echo "ci.sh: unknown flag: $arg" >&2; exit 2 ;;
    esac
done

step() { echo; echo "== $* =="; }

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

step "cargo clippy --workspace --features trace -- -D warnings"
cargo clippy --workspace --features trace -- -D warnings

step "cscv-xtask lint (SAFETY comments, unsafe whitelist, hot-path panics, trace fallbacks)"
cargo run -q -p cscv-xtask -- lint

step "cscv-xtask audit (index casts, unchecked indexing, cfg flags, crate layering)"
cargo run -q -p cscv-xtask -- audit

step "cscv-xtask analyze (inter-procedural rules + findings ratchet)"
cargo run -q -p cscv-xtask -- analyze

step "cscv-xtask fuzz (regression corpus replay)"
cargo run -q -p cscv-xtask -- fuzz --iters 0 --corpus crates/xtask/fuzz_corpus

step "cscv-xtask tune (deterministic-model batch tune over the corpus)"
cargo run -q -p cscv-xtask -- tune crates/tune/tune_corpus --model --reps 1 --warmup 0

step "cargo build --release"
cargo build --release --workspace

step "cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

step "cargo test -q"
cargo test -q --workspace

step "cargo test -q --features trace"
cargo test -q --workspace --features trace

if [ "$MIRI" = 1 ]; then
    # Lib tests of the unsafe-heavy crates only: integration suites mix in
    # timing loops and subprocess spawns that Miri cannot model, and the
    # per-file `#[cfg_attr(miri, ignore)]` gates keep the remaining
    # file-IO/timing unit tests out of the run.
    if cargo miri --version >/dev/null 2>&1; then
        step "cargo miri test (unsafe-heavy crate libs)"
        MIRIFLAGS="${MIRIFLAGS:-}" cargo miri test -q \
            -p cscv-sparse -p cscv-simd -p cscv-core -p cscv-trace --lib
    else
        step "miri not installed — skipping (rustup component add miri)"
    fi
fi

if [ "$SANITIZERS" = 1 ]; then
    # Curated concurrency subset: the pool/shared-slice machinery in
    # cscv-sparse and the executors in cscv-core. Deterministic on
    # purpose — CSCV_NUMA=0 removes topology-dependent placement, and
    # the lib tests use fixed seeds throughout — so a red sanitizer run
    # reproduces on any machine. TSan suppressions are the vetted,
    # justified list in crates/xtask/sanitizer_suppressions.txt;
    # halt_on_error=1 makes the first report fatal instead of a warning.
    if rustup run nightly cargo --version >/dev/null 2>&1; then
        step "cargo test under ThreadSanitizer (cscv-sparse, cscv-core libs)"
        CSCV_NUMA=0 \
        TSAN_OPTIONS="suppressions=$PWD/crates/xtask/sanitizer_suppressions.txt halt_on_error=1" \
        RUSTFLAGS="-Zsanitizer=thread" \
            rustup run nightly cargo test -q -Zbuild-std \
            --target x86_64-unknown-linux-gnu \
            -p cscv-sparse -p cscv-core --lib

        step "cargo test under AddressSanitizer (cscv-sparse, cscv-core libs)"
        CSCV_NUMA=0 \
        ASAN_OPTIONS="halt_on_error=1" \
        RUSTFLAGS="-Zsanitizer=address" \
            rustup run nightly cargo test -q -Zbuild-std \
            --target x86_64-unknown-linux-gnu \
            -p cscv-sparse -p cscv-core --lib
    else
        step "nightly toolchain not installed — skipping sanitizers (rustup toolchain install nightly --component rust-src)"
    fi
fi

if [ "$FUZZ" = 1 ]; then
    # Fixed seed so a red run is reproducible on any machine; failures
    # shrink and dump minimized descriptors into the corpus directory.
    step "cscv-xtask fuzz --iters 5000 (structure-aware differential fuzzing)"
    cargo run --release -q -p cscv-xtask -- fuzz \
        --iters 5000 --seed 1 --corpus crates/xtask/fuzz_corpus
fi

if [ "$SHARD_SMOKE" = 1 ]; then
    # Real worker processes over Unix sockets (the default launch mode);
    # the command exits 1 itself on any equivalence failure.
    step "shard smoke: cscv-xtask shard --workers 1,2,4 (process launch)"
    cargo run --release -q -p cscv-xtask -- shard --workers 1,2,4

    # Traced leg: 4 workers with the merged Chrome trace + per-worker
    # telemetry, gated the same way the CI job gates the artifact.
    step "shard smoke: traced 4-worker leg (merged trace + telemetry)"
    SHARD_OUT=$(mktemp -d)
    cargo run --release -q -p cscv-xtask --features trace -- \
        shard --workers 4 --solver sirt \
        --trace-export "$SHARD_OUT/merged.chrome.json" \
        --telemetry "$SHARD_OUT/telemetry/shard.ndjson"
    lanes=$(grep -o '"cscv-worker-[0-9]*' "$SHARD_OUT/merged.chrome.json" | sort -u | wc -l)
    [ "$lanes" -eq 4 ] || { echo "expected 4 worker lanes, got $lanes" >&2; exit 1; }
    grep -q '"parent_span"' "$SHARD_OUT/merged.chrome.json" \
        || { echo "no coordinator-parented worker span in merged trace" >&2; exit 1; }
    rm -rf "$SHARD_OUT"
fi

if [ "$PERF_SMOKE" = 1 ]; then
    step "perf smoke: run_experiments.sh --smoke"
    ./run_experiments.sh --smoke

    if [ "$UPDATE_BASELINE" = 1 ]; then
        step "perf smoke: rewrite baseline"
        cargo run --release -q -p cscv-bench --bin perf_smoke_check -- \
            --manifests bench_results/smoke/manifests \
            --baseline bench_results/smoke/baseline.json \
            --write-baseline
    else
        step "perf smoke: check against baseline"
        cargo run --release -q -p cscv-bench --bin perf_smoke_check -- \
            --manifests bench_results/smoke/manifests \
            --baseline bench_results/smoke/baseline.json \
            --tolerance 0.25
    fi

    step "perf report: roofline attribution over smoke manifests"
    cargo run --release -q -p cscv-xtask -- perf-report bench_results/smoke
fi

echo
echo "CI_OK"
