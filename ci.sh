#!/bin/bash
# Offline CI gate: formatting, lints, release build, tests.
# Requires no network access — the workspace has zero external crates in
# its default feature set (see DESIGN.md "Dependencies").
set -euo pipefail
cd "$(dirname "$0")"

step() { echo; echo "== $* =="; }

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

step "cargo build --release"
cargo build --release --workspace

step "cargo test -q"
cargo test -q --workspace

echo
echo "CI_OK"
