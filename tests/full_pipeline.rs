//! Cross-crate integration: the full pipeline from geometry to
//! reconstructed image, with every SpMV implementation interchangeable.

use cscv_repro::harness::suite::{executor_builders, prepare};
use cscv_repro::prelude::*;
use cscv_repro::recon::metrics::rel_l2;
use cscv_repro::recon::operators::SpmvOperator;
use cscv_repro::recon::{cgls, sirt};

fn tiny_prep() -> cscv_repro::harness::suite::PreparedDataset<f32> {
    prepare::<f32>(&cscv_repro::ct::datasets::tiny())
}

#[test]
fn all_executors_agree_on_phantom_projection() {
    let prep = tiny_prep();
    let mut y_ref = vec![0.0f32; prep.csr.n_rows()];
    prep.csr.spmv_serial(&prep.x, &mut y_ref);
    for threads in [1, 2, 4] {
        let pool = ThreadPool::new(threads);
        for (name, builder) in executor_builders::<f32>() {
            let exec = builder(&prep, threads);
            let mut y = vec![f32::NAN; prep.csr.n_rows()];
            exec.spmv(&prep.x, &mut y, &pool);
            let err = cscv_repro::sparse::dense::max_rel_err(&y, &y_ref);
            assert!(err < 5e-3, "{name} at {threads} threads: err {err}");
        }
    }
}

#[test]
fn reconstruction_through_cscv_recovers_disks() {
    // Small full-angle setup with the disk phantom.
    let ds = CtDataset {
        name: "t",
        img: 48,
        n_bins: 70,
        n_views: 60,
        delta_angle_deg: 3.0,
    };
    let geom = ds.geometry();
    let truth: Vec<f32> = Phantom::disks()
        .rasterize(&geom.grid)
        .into_iter()
        .map(|v| v as f32)
        .collect();
    let a: Csc<f32> = SystemMatrix::assemble_csc(&geom);
    let csr = a.to_csr();
    let mut sino = vec![0.0f32; a.n_rows()];
    csr.spmv_serial(&truth, &mut sino);

    let layout = SinoLayout {
        n_views: ds.n_views,
        n_bins: ds.n_bins,
    };
    let img = ImageShape {
        nx: ds.img,
        ny: ds.img,
    };
    let forward = CscvExec::new(build(&a, layout, img, CscvParams::new(8, 8, 2), Variant::M));
    let back = cscv_repro::sparse::formats::CsrExec::new(csr.transpose());
    let op = SpmvOperator::new(Box::new(forward), Box::new(back), &csr);
    let pool = ThreadPool::new(2);

    let res = cgls(&op, &sino, 30, 1e-10, &pool);
    let err = rel_l2(&res.x, &truth);
    assert!(err < 0.2, "CGLS through CSCV rel err {err}");

    let res2 = sirt(&op, &sino, 40, 1.0, &pool);
    assert!(
        res2.residual_history.last().unwrap() < &(res2.residual_history[0] * 0.2),
        "SIRT reduces residual"
    );
}

#[test]
fn cscv_and_csr_backends_reconstruct_identically() {
    // Swapping the forward SpMV implementation must not change the math.
    let prep = tiny_prep();
    let mut sino = vec![0.0f32; prep.csr.n_rows()];
    prep.csr.spmv_serial(&prep.x, &mut sino);
    let pool = ThreadPool::new(2);

    let op_csr = SpmvOperator::csr_pair(&prep.csr);
    let forward = CscvExec::new(build(
        &prep.csc,
        prep.layout,
        prep.img,
        CscvParams::new(8, 8, 2),
        Variant::Z,
    ));
    let back = cscv_repro::sparse::formats::CsrExec::new(prep.csr.transpose());
    let op_cscv = SpmvOperator::new(Box::new(forward), Box::new(back), &prep.csr);

    let r1 = sirt(&op_csr, &sino, 10, 1.0, &pool);
    let r2 = sirt(&op_cscv, &sino, 10, 1.0, &pool);
    cscv_repro::sparse::dense::assert_vec_close(&r1.x, &r2.x, 1e-3);
}

#[test]
fn measurement_pipeline_works_end_to_end() {
    let prep = tiny_prep();
    let pool = ThreadPool::new(2);
    let mut y = vec![0.0f32; prep.csr.n_rows()];
    for (_, builder) in executor_builders::<f32>().into_iter().take(3) {
        let exec = builder(&prep, 2);
        let m =
            cscv_repro::harness::timing::measure_spmv(exec.as_ref(), &prep.x, &mut y, &pool, 1, 3);
        assert!(m.gflops > 0.0);
        assert!(m.mem_requirement > 0);
    }
}
