//! Property-based tests over the whole suite's core invariants.
//!
//! Random *general* sparse matrices (not just CT ones) exercise the
//! baseline formats; random *trajectory-like* matrices (sinusoid bands
//! with noise) exercise CSCV, whose builder must be correct — if not
//! compact — on any sinogram-shaped operator.

use cscv_repro::prelude::*;
use proptest::prelude::*;

/// Random general sparse matrix via triplets (duplicates get summed).
fn arb_coo(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Coo<f64>> {
    (1..max_rows, 1..max_cols).prop_flat_map(|(n_rows, n_cols)| {
        proptest::collection::vec(
            (0..n_rows as u32, 0..n_cols as u32, -5.0f64..5.0),
            0..200,
        )
        .prop_map(move |entries| {
            let mut coo = Coo::new(n_rows, n_cols);
            for (r, c, v) in entries {
                coo.push(r as usize, c as usize, v);
            }
            coo
        })
    })
}

/// Random CT-like matrix: columns follow noisy sinusoid trajectories.
fn arb_ct_like() -> impl Strategy<Value = (Csc<f64>, SinoLayout, ImageShape)> {
    (2usize..5, 2usize..5, 1usize..3, 8usize..20, 0u64..1000).prop_map(
        |(nx, ny, groups, n_bins, seed)| {
            let n_views = groups * 8;
            let layout = SinoLayout { n_views, n_bins };
            let img = ImageShape { nx, ny };
            let mut coo = Coo::new(layout.n_rows(), img.n_pixels());
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1) | 1;
            let mut rnd = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for col in 0..img.n_pixels() {
                for v in 0..n_views {
                    // Noisy sinusoid trajectory; occasional missing views.
                    if rnd() % 7 == 0 {
                        continue;
                    }
                    let phase = (v as f64 * 0.3 + col as f64).sin();
                    let base =
                        ((phase + 1.1) / 2.2 * (n_bins as f64 - 2.0)) as usize % (n_bins - 1);
                    coo.push(
                        layout.row_index(v, base),
                        col,
                        1.0 + (rnd() % 100) as f64 * 0.01,
                    );
                    if rnd() % 3 == 0 {
                        coo.push(layout.row_index(v, base + 1), col, 0.5);
                    }
                }
            }
            (coo.to_csc(), layout, img)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn coo_csr_csc_roundtrips(coo in arb_coo(40, 40)) {
        let csr = coo.to_csr();
        let csc = coo.to_csc();
        // All three representations produce the same dense image.
        let mut dedup = coo.clone();
        dedup.sum_duplicates();
        prop_assert_eq!(csr.to_coo().to_dense(), dedup.to_dense());
        prop_assert_eq!(csc.to_coo().to_dense(), dedup.to_dense());
        // Round-trips are lossless.
        prop_assert_eq!(csr.to_csc().to_csr(), csr.clone());
        // Transpose is an involution.
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn baseline_executors_match_reference(coo in arb_coo(60, 40), threads in 1usize..5) {
        let csr = coo.to_csr();
        let x: Vec<f64> = (0..csr.n_cols()).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let mut y_ref = vec![0.0; csr.n_rows()];
        coo.spmv_reference(&x, &mut y_ref);
        let pool = ThreadPool::new(threads);
        for exec in cscv_repro::sparse::formats::baseline_field(&csr, threads) {
            let mut y = vec![f64::NAN; csr.n_rows()];
            exec.spmv(&x, &mut y, &pool);
            let err = cscv_repro::sparse::dense::max_rel_err(&y, &y_ref);
            prop_assert!(err < 1e-10, "{} err {}", exec.name(), err);
        }
    }

    #[test]
    fn cscv_matches_reference_on_trajectory_matrices(
        (csc, layout, img) in arb_ct_like(),
        s_imgb in 1usize..4,
        s_vxg in 1usize..5,
        wi in 0usize..3,
        threads in 1usize..4,
    ) {
        let w = [4usize, 8, 16][wi];
        let params = CscvParams::new(s_imgb, w, s_vxg);
        let x: Vec<f64> = (0..csc.n_cols()).map(|i| (i as f64 * 0.37).cos()).collect();
        let mut y_ref = vec![0.0; csc.n_rows()];
        csc.spmv_serial(&x, &mut y_ref);
        let pool = ThreadPool::new(threads);
        for variant in [Variant::Z, Variant::M] {
            let m = build(&csc, layout, img, params, variant);
            m.validate();
            // Stored padding accounting is exact.
            prop_assert_eq!(
                m.stats.lane_slots,
                m.stats.nnz_orig + m.stats.ioblr_padding + m.stats.vxg_padding
            );
            let exec = CscvExec::new(m);
            let mut y = vec![f64::NAN; csc.n_rows()];
            exec.spmv(&x, &mut y, &pool);
            let err = cscv_repro::sparse::dense::max_rel_err(&y, &y_ref);
            prop_assert!(err < 1e-10, "{variant} {params} err {err}");
        }
    }

    #[test]
    fn mask_expand_roundtrip(lanes in proptest::collection::vec(-10.0f32..10.0, 16)) {
        use cscv_repro::simd::expand::{compress_into, expand_soft};
        let block: [f32; 16] = lanes.clone().try_into().unwrap();
        let mut packed = Vec::new();
        let mask = compress_into(&block, &mut packed);
        prop_assert_eq!(mask.count_ones() as usize, packed.len());
        let out: [f32; 16] = expand_soft(mask, &packed);
        // Round-trip exact for nonzero lanes; zeros stay zero.
        for l in 0..16 {
            if block[l] != 0.0 {
                prop_assert_eq!(out[l], block[l]);
            } else {
                prop_assert_eq!(out[l], 0.0);
            }
        }
    }

    #[test]
    fn partitions_cover_and_balance(
        weights in proptest::collection::vec(0usize..50, 0..100),
        k in 1usize..9,
    ) {
        let ranges = cscv_repro::sparse::partition::split_by_weights(&weights, k);
        prop_assert_eq!(ranges.len(), k);
        let mut next = 0usize;
        for r in &ranges {
            prop_assert_eq!(r.start, next);
            next = r.end;
        }
        prop_assert_eq!(next, weights.len());
        // No range exceeds total/k + max single weight (balance bound).
        let total: usize = weights.iter().sum();
        let wmax = weights.iter().copied().max().unwrap_or(0);
        for r in &ranges {
            let w: usize = weights[r.start..r.end].iter().sum();
            prop_assert!(w <= total / k + wmax + 1);
        }
    }
}
