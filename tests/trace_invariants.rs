//! End-to-end observability invariants (trace-enabled builds only).
//!
//! The counters wired through `cscv-core`/`cscv-sparse` are only useful
//! if they agree exactly with the paper's analytic models — a counter
//! that is "roughly" right is worse than none. These tests pin the
//! identities:
//!
//! * counted useful flops == `2·nnz(A)` per SpMV (the paper's `F`
//!   numerator), exactly, for both variants, any thread count;
//! * counted bytes == `M_Rit = M(A)+M(x)+M(y)` for single-RHS SpMV
//!   (the batched path revisits the matrix once per register-tile
//!   chunk, so it is bounded below instead);
//! * issued FMA lanes == useful lanes + padding lanes;
//! * per-thread counter shards fold without losing a single increment
//!   under pool hammering;
//! * solver timelines (iteration events, swap-compaction events) match
//!   the returned histories.

#![cfg(feature = "trace")]

use cscv_repro::harness::suite::prepare;
use cscv_repro::prelude::*;
use cscv_repro::recon::{sirt, sirt_batch, SpmvOperator};
use cscv_repro::trace::counters::{self, Counter};
use cscv_repro::trace::json::Json;
use cscv_repro::trace::{emit, export, span};
use std::sync::{Mutex, MutexGuard};

/// The trace registry is process-global; tests asserting on totals must
/// not interleave.
static LOCK: Mutex<()> = Mutex::new(());
fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn cscv_exec(variant: Variant) -> (CscvExec<f32>, usize, Vec<f32>) {
    let prep = prepare::<f32>(&cscv_repro::ct::datasets::tiny());
    let exec = CscvExec::new(build(
        &prep.csc,
        prep.layout,
        prep.img,
        CscvParams::new(8, 8, 2),
        variant,
    ));
    (exec, prep.csr.nnz(), prep.x)
}

#[test]
fn counted_flops_are_exactly_two_nnz() {
    let _g = lock();
    for variant in [Variant::Z, Variant::M] {
        let (exec, nnz, x) = cscv_exec(variant);
        let mut y = vec![0.0f32; exec.n_rows()];
        for threads in [1usize, 3] {
            let pool = ThreadPool::new(threads);
            counters::reset();
            exec.spmv(&x, &mut y, &pool);
            let t = counters::totals();
            assert_eq!(
                t.get(Counter::UsefulFlops),
                2 * nnz as u64,
                "{variant} at {threads} threads"
            );
            // Every issued lane is either a useful nonzero or counted
            // padding — no third category.
            assert_eq!(
                t.get(Counter::FmaLanes),
                t.get(Counter::UsefulFlops) / 2 + t.get(Counter::PaddingLanes),
                "{variant} lane taxonomy"
            );
        }
    }
}

#[test]
fn counted_bytes_match_memory_model() {
    let _g = lock();
    for variant in [Variant::Z, Variant::M] {
        let (exec, _, x) = cscv_exec(variant);
        let mut y = vec![0.0f32; exec.n_rows()];
        let pool = ThreadPool::new(2);
        counters::reset();
        exec.spmv(&x, &mut y, &pool);
        let t = counters::totals();
        // Loaded (matrix + x) plus stored (y) is exactly the paper's
        // M_Rit — Block::matrix_bytes is the shared definition.
        assert_eq!(
            t.get(Counter::BytesLoaded) + t.get(Counter::BytesStored),
            exec.memory_requirement() as u64,
            "{variant} byte model"
        );
        match variant {
            Variant::Z => {
                assert_eq!(t.get(Counter::DispatchZ), 1);
                assert_eq!(t.get(Counter::MaskExpands), 0);
                assert!(t.get(Counter::BlocksZ) > 0);
            }
            Variant::M => {
                assert_eq!(t.get(Counter::DispatchM), 1);
                assert!(t.get(Counter::MaskExpands) > 0);
                assert!(t.get(Counter::BlocksM) > 0);
            }
        }
        assert!(t.get(Counter::VxgGroups) > 0);
    }
}

#[test]
fn batched_flops_scale_with_k_and_bytes_amortize() {
    let _g = lock();
    let k = 3usize;
    for variant in [Variant::Z, Variant::M] {
        let (exec, nnz, x1) = cscv_exec(variant);
        let mut x = Vec::with_capacity(k * exec.n_cols());
        for _ in 0..k {
            x.extend_from_slice(&x1);
        }
        let mut y = vec![0.0f32; k * exec.n_rows()];
        let pool = ThreadPool::new(2);
        counters::reset();
        exec.spmv_multi(&x, k, &mut y, &pool);
        let t = counters::totals();
        assert_eq!(t.get(Counter::UsefulFlops), 2 * k as u64 * nnz as u64);
        // The batched kernel revisits matrix bytes once per register-tile
        // chunk — at least one full pass, at most ceil(k/1) passes — so
        // counted traffic brackets the amortized model.
        let bytes = t.get(Counter::BytesLoaded) + t.get(Counter::BytesStored);
        assert!(bytes >= exec.memory_requirement_multi(k) as u64);
        assert!(bytes <= (k * exec.memory_requirement()) as u64);
    }
}

#[test]
fn pool_hammering_loses_no_increment() {
    let _g = lock();
    counters::reset();
    let pool = ThreadPool::new(4);
    for _ in 0..10 {
        pool.run(|_| {
            for _ in 0..1_000 {
                counters::add(Counter::VxgGroups, 1);
            }
        });
    }
    let t = counters::totals();
    assert_eq!(t.get(Counter::VxgGroups), 40_000, "exact shard fold");
    assert_eq!(t.get(Counter::PoolDispatches), 10);
    assert_eq!(t.get(Counter::PoolTasks), 40);
    assert!(t.get(Counter::PoolBusyNs) > 0);

    let spans = span::events();
    assert_eq!(
        spans
            .iter()
            .filter(|(_, e)| e.is_span && e.name == "pool.run")
            .count(),
        10
    );
    let ps = emit::pool_stats();
    assert_eq!(ps.busy_threads, 4);
    assert!(ps.imbalance >= 1.0);
}

#[test]
fn solver_timeline_matches_history() {
    let _g = lock();
    let prep = prepare::<f32>(&cscv_repro::ct::datasets::tiny());
    let mut b = vec![0.0f32; prep.csr.n_rows()];
    prep.csr.spmv_serial(&prep.x, &mut b);
    let op = SpmvOperator::csr_pair(&prep.csr);
    let pool = ThreadPool::new(2);

    counters::reset();
    let res = sirt(&op, &b, 12, 1.0, &pool);
    let t = counters::totals();
    assert_eq!(t.get(Counter::SolverIters), 12);

    let events = span::events();
    let iters: Vec<_> = events
        .iter()
        .filter(|(_, e)| !e.is_span && e.name == "sirt.iter")
        .collect();
    assert_eq!(iters.len(), 12);
    // Event residuals replay the returned history, in order.
    for (i, (_, e)) in iters.iter().enumerate() {
        let iter = e.fields.iter().find(|(k, _)| *k == "iter").unwrap().1;
        let resid = e.fields.iter().find(|(k, _)| *k == "residual").unwrap().1;
        assert_eq!(iter as usize, i);
        assert!(
            (resid - res.residual_history[i]).abs() <= 1e-12 * res.residual_history[i].max(1.0)
        );
    }
    // The whole run sits inside one solver span.
    assert!(events
        .iter()
        .any(|(_, e)| e.is_span && e.name == "solver.sirt"));
}

#[test]
fn batch_retirement_emits_swap_compaction_events() {
    let _g = lock();
    let prep = prepare::<f32>(&cscv_repro::ct::datasets::tiny());
    let m = prep.csr.n_rows();
    let k = 3usize;
    let mut b = vec![0.0f32; k * m];
    for kk in 0..k {
        let mut one = vec![0.0f32; m];
        let scaled: Vec<f32> = prep.x.iter().map(|v| v * (1.0 + kk as f32)).collect();
        prep.csr.spmv_serial(&scaled, &mut one);
        b[kk * m..(kk + 1) * m].copy_from_slice(&one);
    }
    let op = SpmvOperator::csr_pair(&prep.csr);
    let pool = ThreadPool::new(2);

    counters::reset();
    let res = sirt_batch(&op, &b, k, 500, 1.0, 1e-2, &pool);
    let t = counters::totals();
    let retired = res.iterations.iter().filter(|&&it| it < 500).count() as u64;
    assert!(retired > 0, "tolerance should retire at least one slice");
    assert_eq!(t.get(Counter::SwapCompactions), retired);

    let events = span::events();
    let retire_events = events
        .iter()
        .filter(|(_, e)| !e.is_span && e.name == "batch.retire")
        .count() as u64;
    assert_eq!(retire_events, retired);
    // Per-slice iteration events exist for every recorded residual.
    let iter_events = events
        .iter()
        .filter(|(_, e)| !e.is_span && e.name == "batch.iter")
        .count();
    let history_len: usize = res.residual_histories.iter().map(Vec::len).sum();
    assert_eq!(iter_events, history_len);
    // Every executed sweep logs its width and wall time.
    let sweeps: Vec<_> = events
        .iter()
        .filter(|(_, e)| !e.is_span && e.name == "batch.sweep")
        .collect();
    assert_eq!(
        sweeps.len(),
        *res.iterations.iter().max().unwrap(),
        "one sweep event per executed outer iteration"
    );
    for (_, e) in &sweeps {
        let field = |k: &str| e.fields.iter().find(|(n, _)| *n == k).unwrap().1;
        assert!(field("k_active") <= k as f64);
        assert!(field("sweep_ms") >= 0.0);
    }
}

#[test]
fn chrome_trace_of_a_sirt_run_round_trips() {
    let _g = lock();
    let prep = prepare::<f32>(&cscv_repro::ct::datasets::tiny());
    let mut b = vec![0.0f32; prep.csr.n_rows()];
    prep.csr.spmv_serial(&prep.x, &mut b);
    let op = SpmvOperator::csr_pair(&prep.csr);
    let pool = ThreadPool::new(2);

    counters::reset();
    sirt(&op, &b, 5, 1.0, &pool);

    let doc = export::chrome_trace(&export::snapshot());
    // Schema round-trip: serialize, re-parse, and validate the
    // trace-event invariants Perfetto relies on.
    let back = Json::parse(&doc.to_string()).expect("chrome trace must be valid JSON");
    let events = back
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut saw_sirt_span = false;
    let mut saw_iter_instant = false;
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("ph");
        assert!(["X", "i", "M"].contains(&ph), "unexpected phase {ph}");
        assert!(e.get("pid").and_then(Json::as_f64).is_some());
        assert!(e.get("tid").and_then(Json::as_f64).is_some());
        match ph {
            "X" => {
                assert!(e.get("ts").and_then(Json::as_f64).is_some());
                assert!(e.get("dur").and_then(Json::as_f64).unwrap_or(-1.0) >= 0.0);
                if e.get("name").and_then(Json::as_str) == Some("solver.sirt") {
                    saw_sirt_span = true;
                }
            }
            "i" => {
                assert_eq!(e.get("s").and_then(Json::as_str), Some("t"));
                if e.get("name").and_then(Json::as_str) == Some("sirt.iter") {
                    saw_iter_instant = true;
                    let args = e.get("args").expect("iter args");
                    assert!(args.get("iter_ms").and_then(Json::as_f64).unwrap() >= 0.0);
                    assert!(args.get("residual").and_then(Json::as_f64).is_some());
                }
            }
            _ => {}
        }
    }
    assert!(saw_sirt_span, "solver.sirt must appear as a complete event");
    assert!(saw_iter_instant, "sirt.iter must appear as an instant");

    // The flamegraph view of the same snapshot attributes self time to
    // the solver stack.
    let collapsed = export::collapsed_stacks(&export::snapshot());
    assert!(collapsed.contains("solver.sirt"), "{collapsed}");
}

#[test]
fn pool_stats_split_busy_and_idle_per_thread() {
    let _g = lock();
    counters::reset();
    let pool = ThreadPool::new(3);
    for _ in 0..5 {
        pool.run(|_| {
            std::hint::black_box((0..20_000).sum::<u64>());
        });
    }
    let ps = emit::pool_stats();
    assert_eq!(ps.busy_threads, 3);
    assert!(ps.wall_ns > 0);
    assert_eq!(ps.per_thread.len(), 3);
    let sum: u64 = ps.per_thread.iter().map(|(_, ns)| *ns).sum();
    assert_eq!(sum, ps.busy_ns_total, "per-thread split is exhaustive");
    for (name, busy) in &ps.per_thread {
        let frac = ps.busy_fraction(*busy);
        assert!((0.0..=1.0).contains(&frac), "{name}: {frac}");
    }
    // The rendered table carries the busy/idle percentages.
    let table = emit::table();
    assert!(table.contains("% busy"), "{table}");
    assert!(table.contains("% idle"), "{table}");
}
