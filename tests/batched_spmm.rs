//! Batched multi-RHS equivalence: `spmv_multi(X, k)` must agree with
//! `k` independent `spmv` calls for EVERY executor in the field — the
//! tuned multi-RHS implementations (CSCV-Z/M, CSR, CSC) and the
//! loop-of-singles default the remaining baselines inherit — plus the
//! batched transpose adjoint identity, column by column.

use cscv_repro::harness::suite::{cscv_exec, executor_builders, prepare, PreparedDataset};
use cscv_repro::prelude::*;
use cscv_repro::sparse::dense::max_rel_err;

/// Column-major batch input: deterministic reshuffles of the phantom so
/// every RHS has the same value distribution but distinct data.
fn batch_input<T: Scalar>(x1: &[T], k: usize) -> Vec<T> {
    let n = x1.len();
    let mut x = vec![T::ZERO; k * n];
    for kk in 0..k {
        for j in 0..n {
            x[kk * n + j] = x1[(j + kk * 131) % n];
        }
    }
    x
}

fn check_all_executors<T: Scalar + cscv_repro::simd::MaskExpand>(tol: f64) {
    let prep: PreparedDataset<T> = prepare(&cscv_repro::ct::datasets::tiny());
    let (nr, nc) = (prep.csr.n_rows(), prep.csr.n_cols());
    // k = 3 and 8 exercise the {8,4,2,1} register-tile decomposition
    // including a non-power-of-two tail; k = 1 the passthrough.
    for k in [1usize, 3, 8] {
        let x = batch_input(&prep.x, k);
        for threads in [1, 3] {
            let pool = ThreadPool::new(threads);
            for (name, builder) in executor_builders::<T>() {
                let exec = builder(&prep, threads);
                let mut y_multi = vec![T::ZERO; k * nr];
                exec.spmv_multi(&x, k, &mut y_multi, &pool);
                for kk in 0..k {
                    let mut y_one = vec![T::ZERO; nr];
                    exec.spmv(&x[kk * nc..(kk + 1) * nc], &mut y_one, &pool);
                    let err = max_rel_err(&y_multi[kk * nr..(kk + 1) * nr], &y_one);
                    assert!(
                        err < tol,
                        "{name} k={k} rhs={kk} threads={threads}: err {err}"
                    );
                }
            }
        }
    }
}

#[test]
fn every_executor_spmv_multi_matches_k_singles_f32() {
    check_all_executors::<f32>(1e-5);
}

#[test]
fn every_executor_spmv_multi_matches_k_singles_f64() {
    check_all_executors::<f64>(1e-12);
}

#[test]
fn cscv_batched_transpose_matches_k_single_transposes() {
    let prep: PreparedDataset<f64> = prepare(&cscv_repro::ct::datasets::tiny());
    let (nr, nc) = (prep.csr.n_rows(), prep.csr.n_cols());
    for (params, variant) in [
        (CscvParams::default_z(), Variant::Z),
        (CscvParams::default_m(), Variant::M),
    ] {
        let exec = cscv_exec(&prep, params, variant);
        for k in [1usize, 3, 8] {
            let y: Vec<f64> = (0..k * nr).map(|i| (i as f64 * 0.23).sin()).collect();
            for threads in [1, 4] {
                let pool = ThreadPool::new(threads);
                let mut x_multi = vec![f64::NAN; k * nc];
                exec.spmv_transpose_multi(&y, k, &mut x_multi, &pool);
                for kk in 0..k {
                    let mut x_one = vec![f64::NAN; nc];
                    exec.spmv_transpose(&y[kk * nr..(kk + 1) * nr], &mut x_one, &pool);
                    let err = max_rel_err(&x_multi[kk * nc..(kk + 1) * nc], &x_one);
                    assert!(err < 1e-12, "{variant:?} k={k} rhs={kk}: err {err}");
                }
            }
        }
    }
}

#[test]
fn batched_adjoint_identity_holds_per_column() {
    // ⟨A·X, Y⟩ = ⟨X, Aᵀ·Y⟩ for every column of the batch.
    let prep: PreparedDataset<f64> = prepare(&cscv_repro::ct::datasets::tiny());
    let (nr, nc) = (prep.csr.n_rows(), prep.csr.n_cols());
    let exec = cscv_exec(&prep, CscvParams::default_m(), Variant::M);
    let pool = ThreadPool::new(2);
    let k = 5;
    let x = batch_input(&prep.x, k);
    let y: Vec<f64> = (0..k * nr)
        .map(|i| ((i % 97) as f64 - 48.0) / 48.0)
        .collect();
    let mut ax = vec![0.0; k * nr];
    let mut aty = vec![0.0; k * nc];
    exec.spmv_multi(&x, k, &mut ax, &pool);
    exec.spmv_transpose_multi(&y, k, &mut aty, &pool);
    for kk in 0..k {
        let lhs: f64 = ax[kk * nr..(kk + 1) * nr]
            .iter()
            .zip(&y[kk * nr..(kk + 1) * nr])
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f64 = x[kk * nc..(kk + 1) * nc]
            .iter()
            .zip(&aty[kk * nc..(kk + 1) * nc])
            .map(|(a, b)| a * b)
            .sum();
        let scale = lhs.abs().max(rhs.abs()).max(1.0);
        assert!(
            ((lhs - rhs) / scale).abs() < 1e-12,
            "column {kk}: ⟨AX,Y⟩={lhs} vs ⟨X,AᵀY⟩={rhs}"
        );
    }
}

#[test]
fn batched_memory_model_amortizes_matrix_bytes() {
    let prep: PreparedDataset<f32> = prepare(&cscv_repro::ct::datasets::tiny());
    let exec = cscv_exec(&prep, CscvParams::default_m(), Variant::M);
    let m1 = exec.memory_requirement_multi(1);
    let m8 = exec.memory_requirement_multi(8);
    assert_eq!(m1, exec.memory_requirement());
    // Matrix bytes appear once; only the vector term scales with k.
    let vec_bytes = (exec.n_rows() + exec.n_cols()) * std::mem::size_of::<f32>();
    assert_eq!(m8 - m1, 7 * vec_bytes);
    // The modeled amortization is therefore strictly between 1× and 8×.
    let modeled = 8.0 * m1 as f64 / m8 as f64;
    assert!(modeled > 1.0 && modeled < 8.0);
}
