//! The aliasing detector run over every shipped executor path.
//!
//! With `check-aliasing` on (the default under `cargo test`, via the
//! workspace's self-dev-dependency trick), every `slice_mut`/`get_raw`
//! on a shared output registers its range and cross-thread overlaps
//! panic. These tests drive the full executor field — every baseline
//! plus CSCV-Z/M, single and batched, forward and transpose, f32 and
//! f64, serial and pooled — and assert the opposite: the shipped
//! partitioning protocols never make a conflicting claim, so everything
//! runs to completion with finite results.
#![cfg(feature = "check-aliasing")]

use cscv_repro::harness::suite::{cscv_exec, executor_builders, prepare, PreparedDataset};
use cscv_repro::prelude::*;

fn assert_finite<T: Scalar>(what: &str, v: &[T]) {
    assert!(
        v.iter().all(|x| x.to_f64().is_finite()),
        "{what}: non-finite output"
    );
}

/// Forward SpMV and the batched variant, across the whole executor field.
fn forward_paths_run_clean<T: Scalar + cscv_repro::simd::MaskExpand>() {
    let prep: PreparedDataset<T> = prepare(&cscv_repro::ct::datasets::tiny());
    let (nr, nc) = (prep.csr.n_rows(), prep.csr.n_cols());
    let k = 3;
    let x_multi: Vec<T> = (0..k * nc)
        .map(|i| T::from_f64(((i % 23) as f64 - 11.0) / 11.0))
        .collect();
    for threads in [1, 4] {
        let pool = ThreadPool::new(threads);
        for (name, builder) in executor_builders::<T>() {
            let exec = builder(&prep, threads);
            let mut y = vec![T::ZERO; nr];
            exec.spmv(&prep.x, &mut y, &pool);
            assert_finite(name, &y);
            let mut y_multi = vec![T::ZERO; k * nr];
            exec.spmv_multi(&x_multi, k, &mut y_multi, &pool);
            assert_finite(name, &y_multi);
        }
    }
}

#[test]
fn every_executor_forward_path_is_claim_clean_f32() {
    forward_paths_run_clean::<f32>();
}

#[test]
fn every_executor_forward_path_is_claim_clean_f64() {
    forward_paths_run_clean::<f64>();
}

/// The CSCV transpose paths claim the output twice per call (zeroing
/// dispatch, then tile-owned scatters) — exactly the pattern the
/// `claims_barrier` epoch exists for. Both variants, both strategies.
fn transpose_paths_run_clean<T: Scalar + cscv_repro::simd::MaskExpand>() {
    let prep: PreparedDataset<T> = prepare(&cscv_repro::ct::datasets::tiny());
    let (nr, nc) = (prep.csr.n_rows(), prep.csr.n_cols());
    let k = 3;
    let y1: Vec<T> = (0..nr)
        .map(|i| T::from_f64((i as f64 * 0.37).cos()))
        .collect();
    let yk: Vec<T> = (0..k * nr)
        .map(|i| T::from_f64((i as f64 * 0.11).sin()))
        .collect();
    for (params, variant) in [
        (CscvParams::default_z(), Variant::Z),
        (CscvParams::default_m(), Variant::M),
    ] {
        let exec = cscv_exec(&prep, params, variant);
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let mut x1 = vec![T::ZERO; nc];
            exec.spmv_transpose(&y1, &mut x1, &pool);
            assert_finite("transpose", &x1);
            let mut xk = vec![T::ZERO; k * nc];
            exec.spmv_transpose_multi(&yk, k, &mut xk, &pool);
            assert_finite("transpose_multi", &xk);
        }
    }
}

#[test]
fn cscv_transpose_paths_are_claim_clean_f32() {
    transpose_paths_run_clean::<f32>();
}

#[test]
fn cscv_transpose_paths_are_claim_clean_f64() {
    transpose_paths_run_clean::<f64>();
}

/// End to end: a short SIRT reconstruction through the CSCV operator
/// (forward `A·x` plus the transpose back projection `Aᵀ·r`) runs with
/// the detector live on every iteration.
#[test]
fn reconstruction_loop_is_claim_clean() {
    use cscv_repro::recon::operators::CscvOperator;
    use cscv_repro::recon::sirt;
    let prep: PreparedDataset<f32> = prepare(&cscv_repro::ct::datasets::tiny());
    let exec = cscv_exec(&prep, CscvParams::default_m(), Variant::M);
    let pool = ThreadPool::new(3);
    let mut sino = vec![0.0f32; prep.csr.n_rows()];
    exec.spmv(&prep.x, &mut sino, &pool);
    let op = CscvOperator::new(exec, &prep.csr);
    let res = sirt(&op, &sino, 3, 1.0, &pool);
    assert_finite("sirt", &res.x);
}
