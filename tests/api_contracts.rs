//! API contract tests: dimension checks, misuse panics, and cross-type
//! consistency — the failure-injection side of the suite.

use cscv_repro::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn tiny_cscv() -> (Csc<f32>, CscvExec<f32>) {
    let ds = cscv_repro::ct::datasets::tiny();
    let geom = ds.geometry();
    let csc: Csc<f32> = SystemMatrix::assemble_csc(&geom);
    let exec = CscvExec::new(build(
        &csc,
        SinoLayout {
            n_views: ds.n_views,
            n_bins: ds.n_bins,
        },
        ImageShape {
            nx: ds.img,
            ny: ds.img,
        },
        CscvParams::new(8, 8, 2),
        Variant::Z,
    ));
    (csc, exec)
}

#[test]
fn spmv_rejects_wrong_dimensions() {
    let (csc, exec) = tiny_cscv();
    let pool = ThreadPool::new(1);
    let mut y = vec![0.0f32; csc.n_rows()];
    let bad_x = vec![0.0f32; csc.n_cols() + 1];
    assert!(catch_unwind(AssertUnwindSafe(|| exec.spmv(&bad_x, &mut y, &pool))).is_err());
    let x = vec![0.0f32; csc.n_cols()];
    let mut bad_y = vec![0.0f32; csc.n_rows() - 1];
    assert!(catch_unwind(AssertUnwindSafe(|| exec.spmv(&x, &mut bad_y, &pool))).is_err());
    // Transpose direction too.
    let mut xt = vec![0.0f32; csc.n_cols()];
    let bad_yt = vec![0.0f32; csc.n_rows() + 5];
    assert!(catch_unwind(AssertUnwindSafe(
        || exec.spmv_transpose(&bad_yt, &mut xt, &pool)
    ))
    .is_err());
}

#[test]
fn builder_rejects_shape_mismatches() {
    let (csc, _) = tiny_cscv();
    let bad_layout = SinoLayout {
        n_views: 3,
        n_bins: 7,
    };
    let img = ImageShape { nx: 32, ny: 32 };
    assert!(catch_unwind(AssertUnwindSafe(|| {
        build(&csc, bad_layout, img, CscvParams::new(8, 8, 2), Variant::Z)
    }))
    .is_err());
    let good_layout = SinoLayout {
        n_views: 24,
        n_bins: 46,
    };
    let bad_img = ImageShape { nx: 16, ny: 16 };
    assert!(catch_unwind(AssertUnwindSafe(|| {
        build(
            &csc,
            good_layout,
            bad_img,
            CscvParams::new(8, 8, 2),
            Variant::Z,
        )
    }))
    .is_err());
}

#[test]
fn nan_inputs_propagate_not_corrupt() {
    // A NaN in x must surface as NaN in the touched outputs, not panic
    // or poison unrelated rows.
    let (csc, exec) = tiny_cscv();
    let pool = ThreadPool::new(2);
    let mut x = vec![1.0f32; csc.n_cols()];
    x[10] = f32::NAN;
    let mut y = vec![0.0f32; csc.n_rows()];
    exec.spmv(&x, &mut y, &pool);
    let nan_rows = y.iter().filter(|v| v.is_nan()).count();
    assert!(nan_rows > 0, "NaN must propagate to touched rows");
    assert!(
        nan_rows < csc.n_rows() / 2,
        "NaN must not smear across unrelated rows ({nan_rows})"
    );
}

#[test]
fn f32_and_f64_agree_within_precision() {
    let ds = cscv_repro::ct::datasets::tiny();
    let geom = ds.geometry();
    let a32: Csc<f32> = SystemMatrix::assemble_csc(&geom);
    let a64: Csc<f64> = SystemMatrix::assemble_csc(&geom);
    let layout = SinoLayout {
        n_views: ds.n_views,
        n_bins: ds.n_bins,
    };
    let img = ImageShape {
        nx: ds.img,
        ny: ds.img,
    };
    let e32 = CscvExec::new(build(
        &a32,
        layout,
        img,
        CscvParams::new(8, 8, 2),
        Variant::M,
    ));
    let e64 = CscvExec::new(build(
        &a64,
        layout,
        img,
        CscvParams::new(8, 8, 2),
        Variant::M,
    ));
    let pool = ThreadPool::new(1);
    let x32: Vec<f32> = (0..a32.n_cols()).map(|i| (i % 11) as f32 * 0.3).collect();
    let x64: Vec<f64> = x32.iter().map(|&v| v as f64).collect();
    let mut y32 = vec![0.0f32; a32.n_rows()];
    let mut y64 = vec![0.0f64; a64.n_rows()];
    e32.spmv(&x32, &mut y32, &pool);
    e64.spmv(&x64, &mut y64, &pool);
    for (a, b) in y32.iter().zip(&y64) {
        let err = (*a as f64 - b).abs() / b.abs().max(1.0);
        assert!(err < 1e-4, "{a} vs {b}");
    }
}

#[test]
fn executors_overwrite_stale_output() {
    // The SpmvExecutor contract: y is overwritten, never accumulated.
    let prep = cscv_repro::harness::suite::prepare::<f32>(&cscv_repro::ct::datasets::tiny());
    let pool = ThreadPool::new(2);
    for (name, builder) in cscv_repro::harness::suite::executor_builders::<f32>() {
        let exec = builder(&prep, 2);
        let mut y1 = vec![0.0f32; prep.csr.n_rows()];
        exec.spmv(&prep.x, &mut y1, &pool);
        let mut y2 = vec![1e9f32; prep.csr.n_rows()];
        exec.spmv(&prep.x, &mut y2, &pool);
        cscv_repro::sparse::dense::assert_vec_close(&y2, &y1, 1e-6);
        let _ = name;
    }
}
