//! Integration: the CSCV machinery on the fan-beam geometry — the
//! paper's generality claim (§IV-C: IOBLR "theoretically supports
//! different CT imaging geometries") exercised end to end.

use cscv_repro::ct::{FanBeamGeometry, ImageGrid, Phantom};
use cscv_repro::prelude::*;
use cscv_repro::recon::metrics::rel_l2;
use cscv_repro::recon::operators::SpmvOperator;
use cscv_repro::recon::{cgls, CscvOperator};

fn setup() -> (FanBeamGeometry, ImageGrid, Csc<f32>) {
    let fan = FanBeamGeometry::standard(32, 46, 90, 4.0);
    let grid = ImageGrid::square(32, 1.0);
    let csc = fan.assemble_csc::<f32>(&grid);
    (fan, grid, csc)
}

#[test]
fn fan_beam_cscv_spmv_matches_reference_all_variants() {
    let (fan, _, csc) = setup();
    let layout = SinoLayout {
        n_views: fan.n_views,
        n_bins: fan.n_bins,
    };
    let img = ImageShape { nx: 32, ny: 32 };
    let x: Vec<f32> = (0..csc.n_cols())
        .map(|i| ((i * 7) % 13) as f32 * 0.2)
        .collect();
    let mut y_ref = vec![0.0f32; csc.n_rows()];
    csc.spmv_serial(&x, &mut y_ref);
    for variant in [Variant::Z, Variant::M] {
        for params in [CscvParams::new(8, 8, 2), CscvParams::new(4, 16, 4)] {
            let m = build(&csc, layout, img, params, variant);
            m.validate();
            let exec = CscvExec::new(m);
            for threads in [1, 3] {
                let pool = ThreadPool::new(threads);
                let mut y = vec![f32::NAN; csc.n_rows()];
                exec.spmv(&x, &mut y, &pool);
                cscv_repro::sparse::dense::assert_vec_close(&y, &y_ref, 2e-4);
            }
        }
    }
}

#[test]
fn fan_beam_reconstruction_through_full_cscv_operator() {
    let (fan, grid, csc) = setup();
    let truth: Vec<f32> = Phantom::disks()
        .rasterize(&grid)
        .into_iter()
        .map(|v| v as f32)
        .collect();
    let csr = csc.to_csr();
    let mut sino = vec![0.0f32; csc.n_rows()];
    csr.spmv_serial(&truth, &mut sino);

    let layout = SinoLayout {
        n_views: fan.n_views,
        n_bins: fan.n_bins,
    };
    let img = ImageShape { nx: 32, ny: 32 };
    let exec = CscvExec::new(build(
        &csc,
        layout,
        img,
        CscvParams::new(8, 8, 2),
        Variant::M,
    ));
    let op = CscvOperator::new(exec, &csr);
    let pool = ThreadPool::new(2);
    let res = cgls(&op, &sino, 40, 1e-10, &pool);
    let err = rel_l2(&res.x, &truth);
    assert!(err < 0.2, "fan-beam CGLS rel err {err}");

    // Cross-backend agreement: the same reconstruction through CSR.
    let res_csr = cgls(&SpmvOperator::csr_pair(&csr), &sino, 40, 1e-10, &pool);
    cscv_repro::sparse::dense::assert_vec_close(&res.x, &res_csr.x, 5e-2);
}

#[test]
fn fan_beam_baselines_agree_too() {
    // Every baseline executor also handles the fan-beam matrix (they are
    // general-purpose formats, but this pins the integration).
    let (_, _, csc) = setup();
    let csr = csc.to_csr();
    let x: Vec<f32> = (0..csr.n_cols()).map(|i| (i as f32 * 0.11).cos()).collect();
    let mut y_ref = vec![0.0f32; csr.n_rows()];
    csr.spmv_serial(&x, &mut y_ref);
    let pool = ThreadPool::new(2);
    for exec in cscv_repro::sparse::formats::baseline_field(&csr, 2) {
        let mut y = vec![f32::NAN; csr.n_rows()];
        exec.spmv(&x, &mut y, &pool);
        let err = cscv_repro::sparse::dense::max_rel_err(&y, &y_ref);
        assert!(err < 5e-3, "{}: {err}", exec.name());
    }
}
