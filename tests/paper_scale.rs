//! Paper-scale smoke tests — ignored by default (gigabytes of matrix,
//! minutes of build). Run explicitly with:
//!
//! ```text
//! cargo test --release --test paper_scale -- --ignored
//! ```

use cscv_repro::harness::timing::measure_spmv;
use cscv_repro::prelude::*;

#[test]
#[ignore = "builds the original Table II 512x512 matrix (~166M nnz, ~2 GiB)"]
fn paper_512_matrix_builds_and_cscv_matches() {
    let ds = cscv_repro::ct::datasets::paper_suite()[0]; // 512², 730×240
    let geom = ds.geometry();
    let a: Csc<f32> = SystemMatrix::assemble_csc(&geom);
    // Structural agreement with Table II: 166,148,730 nnz in the paper's
    // generator; ours uses the same geometry family, so the count lands
    // within a few percent of the paper's.
    let paper_nnz = 166_148_730f64;
    let ratio = a.nnz() as f64 / paper_nnz;
    assert!(
        (0.6..1.4).contains(&ratio),
        "nnz {} vs paper {paper_nnz}",
        a.nnz()
    );

    let layout = SinoLayout {
        n_views: ds.n_views,
        n_bins: ds.n_bins,
    };
    let img = ImageShape {
        nx: ds.img,
        ny: ds.img,
    };
    let exec = CscvExec::new(build(&a, layout, img, CscvParams::default_m(), Variant::M));
    // Paper-scale padding band (Table III: 0.365–0.417 on 1024²).
    let r = exec.matrix().stats.r_nnze();
    assert!(r > 0.1 && r < 0.8, "R_nnzE {r}");

    // Spot-check correctness on the big matrix.
    let x: Vec<f32> = (0..a.n_cols()).map(|i| ((i % 97) as f32) * 0.01).collect();
    let mut y_ref = vec![0.0f32; a.n_rows()];
    a.spmv_serial(&x, &mut y_ref);
    let pool = ThreadPool::new(ThreadPool::max_parallelism());
    let mut y = vec![f32::NAN; a.n_rows()];
    exec.spmv(&x, &mut y, &pool);
    cscv_repro::sparse::dense::assert_vec_close(&y, &y_ref, 1e-3);

    // And it performs (smoke number, recorded to stderr).
    let m = measure_spmv(&exec, &x, &mut y, &pool, 1, 5);
    eprintln!(
        "paper-scale 512²: {} nnz, R_nnzE {r:.3}, {:.2} GFLOP/s",
        a.nnz(),
        m.gflops
    );
}
