//! Format explorer: inspect how CSCV lays out a matrix block-by-block.
//!
//! Prints, for a small CT matrix, the anatomy the paper's Figs. 3 and 6
//! describe: per-block reference curves, CSCVE spans, VxG composition,
//! and where the padding comes from — then contrasts the storage bills
//! of CSC, CSCV-Z and CSCV-M.
//!
//! Run: `cargo run --release --example format_explorer`

use cscv_repro::core::ioblr::{min_bin_per_view, RefCurve};
use cscv_repro::prelude::*;

fn main() {
    // Traced builds report at exit (NDJSON to CSCV_TRACE_OUT if set).
    let _trace = cscv_repro::trace::report_guard();
    let ds = cscv_repro::ct::datasets::tiny();
    let geom = ds.geometry();
    let a: Csc<f32> = SystemMatrix::assemble_csc(&geom);
    let layout = SinoLayout {
        n_views: ds.n_views,
        n_bins: ds.n_bins,
    };
    let img = ImageShape {
        nx: ds.img,
        ny: ds.img,
    };

    println!(
        "matrix: {}×{}, nnz {} ({} views × {} bins, {}² pixels)\n",
        a.n_rows(),
        a.n_cols(),
        a.nnz(),
        ds.n_views,
        ds.n_bins,
        ds.img
    );

    // One pixel's trajectory: the raw material of a CSCV column.
    let col = img.col_index(10, 20);
    println!("trajectory of pixel (10,20) — (view, bin, weight), first 12 entries:");
    for (v, b, w) in SystemMatrix::col_entries(&geom, col).into_iter().take(12) {
        println!("  view {v:>2}  bin {b:>2}  weight {w:.3}");
    }

    // Its reference-relative offsets in view group 0.
    let views = 0..8usize;
    let ref_col = img.col_index(ds.img / 2, ds.img / 2);
    let curve = RefCurve::from_min_bins(&min_bin_per_view(&a, &layout, ref_col, &views))
        .expect("center pixel projects");
    println!("\nreference curve r(v) of the image-center pixel, views 0..8:");
    let bins: Vec<i64> = (0..8).map(|v| curve.bin(v)).collect();
    println!("  {bins:?}");

    // Build both variants at a couple of parameter choices and compare.
    println!("\nstorage comparison (matrix bytes only):");
    println!("  CSC                      : {:>9} B", a.matrix_bytes());
    for (label, params, variant) in [
        (
            "CSCV-Z (ImgB=8, W=8, G=2)",
            CscvParams::new(8, 8, 2),
            Variant::Z,
        ),
        (
            "CSCV-M (ImgB=8, W=8, G=2)",
            CscvParams::new(8, 8, 2),
            Variant::M,
        ),
        (
            "CSCV-Z (ImgB=16, W=16, G=4)",
            CscvParams::new(16, 16, 4),
            Variant::Z,
        ),
        (
            "CSCV-M (ImgB=16, W=16, G=4)",
            CscvParams::new(16, 16, 4),
            Variant::M,
        ),
    ] {
        let m = build(&a, layout, img, params, variant);
        m.validate();
        let stats = m.stats;
        let exec = CscvExec::new(m);
        println!(
            "  {label:<25}: {:>9} B  (R_nnzE {:.3} = IOBLR {:.3} + VxG {:.3}; {} blocks, {} VxGs)",
            exec.matrix_bytes(),
            stats.r_nnze(),
            stats.ioblr_padding as f64 / stats.nnz_orig as f64,
            stats.vxg_padding as f64 / stats.nnz_orig as f64,
            stats.n_blocks,
            stats.n_vxg,
        );
    }

    // Detail of one block's VxGs.
    let m = build(&a, layout, img, CscvParams::new(8, 8, 2), Variant::Z);
    let blk = &m.blocks[0];
    println!(
        "\nfirst block: {} nnz, ỹ length {}, {} VxGs; first 8 VxGs (q, count, cols):",
        blk.nnz,
        blk.ytil_len(),
        blk.n_vxgs()
    );
    for i in 0..blk.n_vxgs().min(8) {
        println!(
            "  VxG {i}: q={:>3} count={} cols={:?}",
            blk.vxg_q[i],
            blk.vxg_count[i],
            &blk.cols[i * 2..(i + 1) * 2]
        );
    }
}
