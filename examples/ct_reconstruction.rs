//! CT image reconstruction — the paper's end application.
//!
//! Simulates a full pipeline: rasterize the Shepp-Logan phantom, forward
//! project it into a sinogram, then reconstruct the image with SIRT and
//! CGLS using a **CSCV-M forward projector** (and a CSR transpose for
//! back projection), reporting image quality per iteration block and the
//! SpMV share of the runtime. Writes the phantom and the reconstruction
//! as PGM images next to the binary.
//!
//! Run: `cargo run --release --example ct_reconstruction`

use cscv_repro::prelude::*;
use cscv_repro::recon::metrics::{psnr, rel_l2};
use cscv_repro::recon::operators::SpmvOperator;
use cscv_repro::recon::{cgls, sirt};
use std::time::Instant;

/// Write a grayscale image as binary PGM (min/max normalized).
fn write_pgm(path: &str, img: &[f32], nx: usize, ny: usize) {
    let lo = img.iter().cloned().fold(f32::INFINITY, f32::min);
    let hi = img.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let scale = if hi > lo { 255.0 / (hi - lo) } else { 0.0 };
    let mut data = format!("P5\n{nx} {ny}\n255\n").into_bytes();
    // PGM rows top-to-bottom; our iy grows upward — flip.
    for iy in (0..ny).rev() {
        for ix in 0..nx {
            let v = (img[iy * nx + ix] - lo) * scale;
            data.push(v.clamp(0.0, 255.0) as u8);
        }
    }
    std::fs::write(path, data).expect("write pgm");
    println!("wrote {path}");
}

fn main() {
    // Traced builds report at exit (NDJSON to CSCV_TRACE_OUT if set).
    let _trace = cscv_repro::trace::report_guard();
    // Full 180° coverage for a well-posed reconstruction.
    let ds = cscv_repro::ct::datasets::recon_dataset();
    let geom = ds.geometry();
    println!(
        "reconstructing {}² image from {} views × {} bins",
        ds.img, ds.n_views, ds.n_bins
    );

    // Ground truth and simulated measurement.
    let phantom: Vec<f32> = Phantom::shepp_logan()
        .rasterize(&geom.grid)
        .into_iter()
        .map(|v| v as f32)
        .collect();
    let a: Csc<f32> = SystemMatrix::assemble_csc(&geom);
    let csr = a.to_csr();
    let pool = ThreadPool::new(ThreadPool::max_parallelism());
    let mut sino = vec![0.0f32; a.n_rows()];
    csr.spmv_serial(&phantom, &mut sino);

    // Operator: CSCV-M forward + tuned CSR on Aᵀ for back projection.
    let layout = SinoLayout {
        n_views: ds.n_views,
        n_bins: ds.n_bins,
    };
    let img = ImageShape {
        nx: ds.img,
        ny: ds.img,
    };
    let forward = CscvExec::new(build(&a, layout, img, CscvParams::default_m(), Variant::M));
    let back = cscv_repro::sparse::formats::CsrExec::new(csr.transpose());
    let op = SpmvOperator::new(Box::new(forward), Box::new(back), &csr);

    // SIRT.
    let t0 = Instant::now();
    let res_sirt = sirt(&op, &sino, 50, 1.0, &pool);
    let t_sirt = t0.elapsed().as_secs_f64();
    println!(
        "SIRT  50 iters: rel-L2 {:.4}, PSNR {:.1} dB, residual {:.3e} → {:.3e}, {:.2}s",
        rel_l2(&res_sirt.x, &phantom),
        psnr(&res_sirt.x, &phantom),
        res_sirt.residual_history.first().unwrap(),
        res_sirt.residual_history.last().unwrap(),
        t_sirt
    );

    // CGLS (fewer iterations for comparable quality).
    let t0 = Instant::now();
    let res_cgls = cgls(&op, &sino, 20, 1e-9, &pool);
    let t_cgls = t0.elapsed().as_secs_f64();
    println!(
        "CGLS  {} iters: rel-L2 {:.4}, PSNR {:.1} dB, {:.2}s",
        res_cgls.iterations,
        rel_l2(&res_cgls.x, &phantom),
        psnr(&res_cgls.x, &phantom),
        t_cgls
    );

    write_pgm("phantom.pgm", &phantom, ds.img, ds.img);
    write_pgm("recon_sirt.pgm", &res_sirt.x, ds.img, ds.img);
    write_pgm("recon_cgls.pgm", &res_cgls.x, ds.img, ds.img);

    // Simple quality gates so the example doubles as an e2e check.
    assert!(
        rel_l2(&res_cgls.x, &phantom) < 0.25,
        "CGLS should roughly recover the phantom"
    );
    assert!(
        res_sirt.residual_history.last().unwrap() < &(res_sirt.residual_history[0] * 0.1),
        "SIRT should reduce the residual by 10x"
    );
    println!("reconstruction sanity checks passed");
}
