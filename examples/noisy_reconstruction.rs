//! Realistic pipeline: noisy measurements + ordered-subset SART with a
//! fully-CSCV operator (forward *and* transpose — the paper's future
//! work in action).
//!
//! Simulates a low-dose acquisition: Shepp-Logan phantom, forward
//! projection, Poisson photon noise, then OS-SART reconstruction. Also
//! shows the fan-beam geometry generating a CSCV-compatible operator.
//!
//! Run: `cargo run --release --example noisy_reconstruction`

use cscv_repro::ct::Sinogram;
use cscv_repro::prelude::*;
use cscv_repro::recon::metrics::{psnr, rel_l2};
use cscv_repro::recon::os_sart::{interleaved_views, os_sart};
use cscv_repro::recon::CscvOperator;

fn main() {
    // Traced builds report at exit (NDJSON to CSCV_TRACE_OUT if set).
    let _trace = cscv_repro::trace::report_guard();
    let ds = cscv_repro::ct::datasets::recon_dataset();
    let geom = ds.geometry();
    println!(
        "low-dose scan: {}² image, {} views × {} bins",
        ds.img, ds.n_views, ds.n_bins
    );

    // Ground truth and clean sinogram.
    let truth: Vec<f32> = Phantom::shepp_logan()
        .rasterize(&geom.grid)
        .into_iter()
        .map(|v| v as f32)
        .collect();
    let a: Csc<f32> = SystemMatrix::assemble_csc(&geom);
    let csr = a.to_csr();
    let mut clean = vec![0.0f32; a.n_rows()];
    csr.spmv_serial(&truth, &mut clean);

    // Photon noise at two dose levels. The line integrals here are in
    // pixel-length units; scale into a plausible attenuation range.
    let scale = 0.02f64;
    let run_at = |i0: f64| -> Vec<f32> {
        let mut sino = Sinogram::from_vec(
            ds.n_views,
            ds.n_bins,
            clean.iter().map(|&v| v as f64 * scale).collect(),
        );
        sino.add_poisson_noise(i0, 2026);
        sino.as_slice()
            .iter()
            .map(|&v| (v / scale) as f32)
            .collect()
    };

    // Fully-CSCV operator: one matrix serves y = Ax and x = Aᵀy.
    let exec = CscvExec::new(build(
        &a,
        SinoLayout {
            n_views: ds.n_views,
            n_bins: ds.n_bins,
        },
        ImageShape {
            nx: ds.img,
            ny: ds.img,
        },
        CscvParams::default_m(),
        Variant::M,
    ));
    let op = CscvOperator::new(exec, &csr);
    let pool = ThreadPool::new(ThreadPool::max_parallelism());

    for (label, i0) in [("high dose (10^6 photons)", 1e6), ("low dose (10^4)", 1e4)] {
        let noisy = run_at(i0);
        let res = os_sart(
            &op,
            &noisy,
            10,
            8,
            0.6,
            &interleaved_views(ds.n_bins, 10),
            &pool,
        );
        println!(
            "{label:<26} OS-SART(10 subsets, 8 passes): rel-L2 {:.4}, PSNR {:.1} dB",
            rel_l2(&res.x, &truth),
            psnr(&res.x, &truth)
        );
        if i0 > 1e5 {
            assert!(rel_l2(&res.x, &truth) < 0.35, "high-dose recon quality");
        }
    }

    // Fan-beam: the same CSCV machinery on a different geometry.
    let fan = cscv_repro::ct::FanBeamGeometry::standard(128, 184, 180, 2.0);
    let grid = cscv_repro::ct::ImageGrid::square(128, 1.0);
    let a_fan: Csc<f32> = fan.assemble_csc(&grid);
    let m = build(
        &a_fan,
        SinoLayout {
            n_views: fan.n_views,
            n_bins: fan.n_bins,
        },
        ImageShape { nx: 128, ny: 128 },
        CscvParams::new(16, 8, 2),
        Variant::M,
    );
    println!(
        "\nfan-beam 128²: nnz {}, CSCV R_nnzE {:.3} — same builder, different geometry",
        a_fan.nnz(),
        m.stats.r_nnze()
    );
}
