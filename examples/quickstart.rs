//! Quickstart: build a CT system matrix, convert it to CSCV, run SpMV,
//! and compare against the CSR baseline.
//!
//! Run: `cargo run --release --example quickstart`

use cscv_repro::prelude::*;

fn main() {
    // Traced builds report at exit (NDJSON to CSCV_TRACE_OUT if set).
    let _trace = cscv_repro::trace::report_guard();
    // 1. A CT acquisition: 128×128 image, 184 detector bins, 60 views.
    let ds = cscv_repro::ct::datasets::default_suite()[0];
    let geom = ds.geometry();
    println!(
        "dataset {}: image {}², {} bins × {} views",
        ds.name, ds.img, ds.n_bins, ds.n_views
    );

    // 2. Assemble the system matrix column-by-column (each column is one
    //    pixel's projection trajectory).
    let a: Csc<f32> = SystemMatrix::assemble_csc(&geom);
    println!(
        "system matrix: {} x {}, {} nonzeros",
        a.n_rows(),
        a.n_cols(),
        a.nnz()
    );

    // 3. Convert to CSCV (both variants) with the paper's parameters.
    let layout = SinoLayout {
        n_views: ds.n_views,
        n_bins: ds.n_bins,
    };
    let img = ImageShape {
        nx: ds.img,
        ny: ds.img,
    };
    let z = CscvExec::new(build(&a, layout, img, CscvParams::default_z(), Variant::Z));
    let m = CscvExec::new(build(&a, layout, img, CscvParams::default_m(), Variant::M));
    println!(
        "CSCV-Z: R_nnzE {:.3}; CSCV-M expand path: {}",
        z.matrix().stats.r_nnze(),
        m.expand_path()
    );

    // 4. Forward-project the Shepp-Logan phantom with each executor.
    let x: Vec<f32> = Phantom::shepp_logan()
        .rasterize(&geom.grid)
        .into_iter()
        .map(|v| v as f32)
        .collect();
    let pool = ThreadPool::new(ThreadPool::max_parallelism());
    let csr = a.to_csr();
    let baseline = cscv_repro::sparse::formats::CsrExec::new(csr);

    let mut y_ref = vec![0.0f32; a.n_rows()];
    baseline.spmv(&x, &mut y_ref, &pool);
    for exec in [&z as &dyn SpmvExecutor<f32>, &m] {
        let mut y = vec![0.0f32; a.n_rows()];
        exec.spmv(&x, &mut y, &pool);
        let err = cscv_repro::sparse::dense::max_rel_err(&y, &y_ref);
        println!(
            "{:<8} matches CSR baseline, max rel err {err:.2e}",
            exec.name()
        );
        assert!(err < 1e-3);
    }

    // 5. Time a few iterations.
    let iters = 25;
    for exec in [
        &baseline as &dyn SpmvExecutor<f32>,
        &z as &dyn SpmvExecutor<f32>,
        &m,
    ] {
        let mut y = vec![0.0f32; a.n_rows()];
        let meas = cscv_repro::harness::timing::measure_spmv(exec, &x, &mut y, &pool, 3, iters);
        println!(
            "{:<18} {:>7.2} GFLOP/s  ({:.3} ms/iter)",
            meas.name,
            meas.gflops,
            meas.secs_min * 1e3
        );
    }
}
