//! Parameter tuning walkthrough: how S_ImgB / S_VVec / S_VxG trade
//! padding against locality and pipelining (the paper's §V-D analysis,
//! interactively).
//!
//! Run: `cargo run --release --example parameter_tuning`

use cscv_repro::harness::timing::measure_spmv;
use cscv_repro::prelude::*;

fn main() {
    // Traced builds report at exit (NDJSON to CSCV_TRACE_OUT if set).
    let _trace = cscv_repro::trace::report_guard();
    let ds = cscv_repro::ct::datasets::default_suite()[0]; // ct128
    let geom = ds.geometry();
    let a: Csc<f32> = SystemMatrix::assemble_csc(&geom);
    let layout = SinoLayout {
        n_views: ds.n_views,
        n_bins: ds.n_bins,
    };
    let img = ImageShape {
        nx: ds.img,
        ny: ds.img,
    };
    let x: Vec<f32> = Phantom::shepp_logan()
        .rasterize(&geom.grid)
        .into_iter()
        .map(|v| v as f32)
        .collect();
    let pool = ThreadPool::new(1);
    let mut y = vec![0.0f32; a.n_rows()];

    println!("dataset {}: {} nnz\n", ds.name, a.nnz());
    println!("effect of each parameter on CSCV-M (single thread):\n");
    println!(
        "{:<26} {:>8} {:>10} {:>12}",
        "parameters", "R_nnzE", "GFLOP/s", "matrix MiB"
    );

    let mut show = |imgb: usize, vvec: usize, vxg: usize| {
        let params = CscvParams::new(imgb, vvec, vxg);
        let m = build(&a, layout, img, params, Variant::M);
        let r = m.stats.r_nnze();
        let exec = CscvExec::new(m);
        let meas = measure_spmv(&exec, &x, &mut y, &pool, 2, 10);
        println!(
            "{:<26} {:>8.3} {:>10.2} {:>12.1}",
            params.to_string(),
            r,
            meas.gflops,
            exec.matrix_bytes() as f64 / (1 << 20) as f64
        );
    };

    println!("-- tile size (S_ImgB): larger tiles amortize x/ỹ but pad more");
    for imgb in [8, 16, 32, 64] {
        show(imgb, 8, 2);
    }
    println!("\n-- lane count (S_VVec): wider SIMD vs more padding");
    for vvec in [4, 8, 16] {
        show(16, vvec, 2);
    }
    println!("\n-- VxG depth (S_VxG): deeper inner loop + fewer indices vs alignment padding");
    for vxg in [1, 2, 4, 8] {
        show(16, 8, vxg);
    }
    println!(
        "\npaper defaults: Z = (16,16,2), M = (32,8,4); the best cell above should be nearby."
    );
}
