//! # cscv-repro — CSCV vectorized SpMV, reproduced in Rust
//!
//! Umbrella crate for the reproduction of *"An Integral-equation-oriented
//! Vectorized SpMV Algorithm and its Application on CT Imaging
//! Reconstruction"* (Ye et al., IPDPS 2022). It re-exports the suite's
//! crates under one roof and hosts the runnable examples and cross-crate
//! integration tests.
//!
//! ## Crate map
//!
//! * [`sparse`] — sparse substrate: COO/CSR/CSC, thread pool, the seven
//!   reproduced baseline SpMV implementations;
//! * [`simd`] — lane kernels and the `vexpand`/`soft-vexpand` pair;
//! * [`ct`] — 2-D parallel-beam CT system-matrix generator and phantoms;
//! * [`core`] — **CSCV** itself: IOBLR, CSCVEs, VxGs, the Z/M kernels;
//! * [`recon`] — SIRT/ART/CGLS/Landweber iterative reconstruction;
//! * [`harness`] — minimum-time measurement, bandwidth meter, tables;
//! * [`tune`] — runtime autotuner: structural fingerprints, candidate
//!   search, persisted tuning cache, tuned executors.
//!
//! ## Quickstart
//!
//! ```
//! use cscv_repro::prelude::*;
//!
//! // A small CT geometry and its system matrix.
//! let ds = cscv_repro::ct::datasets::tiny();
//! let geom = ds.geometry();
//! let a = SystemMatrix::assemble_csc::<f32>(&geom);
//!
//! // Convert to CSCV-M and run SpMV.
//! let layout = SinoLayout { n_views: ds.n_views, n_bins: ds.n_bins };
//! let img = ImageShape { nx: ds.img, ny: ds.img };
//! let m = build(&a, layout, img, CscvParams::default_m(), Variant::M);
//! let exec = CscvExec::new(m);
//!
//! let pool = ThreadPool::new(2);
//! let x = vec![1.0f32; exec.n_cols()];
//! let mut y = vec![0.0f32; exec.n_rows()];
//! exec.spmv(&x, &mut y, &pool);
//! assert!(y.iter().any(|&v| v > 0.0));
//! ```

pub use cscv_core as core;
pub use cscv_ct as ct;
pub use cscv_harness as harness;
pub use cscv_recon as recon;
pub use cscv_simd as simd;
pub use cscv_sparse as sparse;
pub use cscv_trace as trace;
pub use cscv_tune as tune;

/// The commonly used names in one import.
pub mod prelude {
    pub use cscv_core::layout::ImageShape;
    pub use cscv_core::{build, CscvExec, CscvParams, SinoLayout, Variant};
    pub use cscv_ct::system::SystemMatrix;
    pub use cscv_ct::{CtDataset, CtGeometry, Phantom};
    pub use cscv_sparse::{Coo, Csc, Csr, Scalar, SpmvExecutor, ThreadPool};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_reexports() {
        use crate::prelude::*;
        let pool = ThreadPool::new(1);
        assert_eq!(pool.n_threads(), 1);
        let p = CscvParams::default_z();
        assert_eq!(p.s_vvec, 16);
    }
}
